#!/usr/bin/env python
"""Size a distance prefetcher for a workload (the Figure 9 workflow).

Sweeps DP's table rows, associativity, slots and the prefetch buffer on
one application and prints accuracy per point — the sensitivity study a
designer would run before committing silicon, reproducing the paper's
conclusion that a small direct-mapped table suffices.

Run:  python examples/tuning_sweep.py [app]
"""

import sys

from repro import TLBConfig, create_prefetcher, filter_tlb, get_trace, replay_prefetcher


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "vpr"
    trace = get_trace(app, scale=0.25)
    miss_trace = filter_tlb(trace, TLBConfig())
    print(f"{app}: {miss_trace.num_misses} misses over "
          f"{miss_trace.total_references} references "
          f"(miss rate {miss_trace.miss_rate:.4f})\n")

    print("Table rows x associativity (s=2, b=16):")
    for rows in (32, 64, 128, 256, 512, 1024):
        row = f"  r={rows:<5}"
        for assoc, ways in (("D", 1), ("2", 2), ("4", 4), ("F", 0)):
            stats = replay_prefetcher(
                miss_trace, create_prefetcher("DP", rows=rows, ways=ways)
            )
            row += f"  {assoc}:{stats.prediction_accuracy:.3f}"
        print(row)

    print("\nPrediction slots s (r=256, direct mapped):")
    for slots in (1, 2, 4, 6):
        stats = replay_prefetcher(
            miss_trace, create_prefetcher("DP", rows=256, slots=slots)
        )
        print(f"  s={slots}: accuracy {stats.prediction_accuracy:.3f}, "
              f"prefetches {stats.prefetches_issued}")

    print("\nPrefetch buffer size b (r=256, s=2):")
    for buffer_entries in (8, 16, 32, 64):
        stats = replay_prefetcher(
            miss_trace,
            create_prefetcher("DP", rows=256),
            buffer_entries=buffer_entries,
        )
        print(f"  b={buffer_entries:<3}: accuracy {stats.prediction_accuracy:.3f}, "
              f"evicted unused {stats.buffer_evicted_unused}")

    print(
        "\nTakeaway (matches the paper's Section 3.3): accuracy is nearly "
        "flat in\nassociativity, grows mildly with r and s, and a 16-entry "
        "buffer already\ncaptures most of the benefit."
    )


if __name__ == "__main__":
    main()
