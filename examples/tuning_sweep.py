#!/usr/bin/env python
"""Size a distance prefetcher for a workload (the Figure 9 workflow).

Sweeps DP's table rows, associativity, slots and the prefetch buffer on
one application and prints accuracy per point — the sensitivity study a
designer would run before committing silicon, reproducing the paper's
conclusion that a small direct-mapped table suffices.

All three sweeps share one TLB configuration, so every RunSpec maps to
the same miss stream: the Runner filters the workload's TLB once for
the entire 32-point study and replays each DP configuration over the
cached stream.

Run:  python examples/tuning_sweep.py [app]
"""

import sys

from repro import MissStreamCache, Runner, RunSpec

ASSOCIATIVITIES = (("D", 1), ("2", 2), ("4", 4), ("F", 0))


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "vpr"
    scale = 0.25
    cache = MissStreamCache()  # private cache so the filter count below is exact
    runner = Runner(cache=cache)
    points_run = 0

    miss_trace = runner.miss_stream(app, scale=scale)
    print(f"{app}: {miss_trace.num_misses} misses over "
          f"{miss_trace.total_references} references "
          f"(miss rate {miss_trace.miss_rate:.4f})\n")

    print("Table rows x associativity (s=2, b=16):")
    for rows in (32, 64, 128, 256, 512, 1024):
        specs = [
            RunSpec.of(app, "DP", scale=scale, rows=rows, ways=ways)
            for _, ways in ASSOCIATIVITIES
        ]
        results = runner.run(specs)
        points_run += len(specs)
        row = f"  r={rows:<5}"
        for (assoc, _), stats in zip(ASSOCIATIVITIES, results):
            row += f"  {assoc}:{stats.prediction_accuracy:.3f}"
        print(row)

    print("\nPrediction slots s (r=256, direct mapped):")
    slot_specs = [
        RunSpec.of(app, "DP", scale=scale, rows=256, slots=s) for s in (1, 2, 4, 6)
    ]
    points_run += len(slot_specs)
    for stats, slots in zip(runner.run(slot_specs), (1, 2, 4, 6)):
        print(f"  s={slots}: accuracy {stats.prediction_accuracy:.3f}, "
              f"prefetches {stats.prefetches_issued}")

    print("\nPrefetch buffer size b (r=256, s=2):")
    buffer_specs = [
        RunSpec.of(app, "DP", scale=scale, rows=256, buffer_entries=b)
        for b in (8, 16, 32, 64)
    ]
    points_run += len(buffer_specs)
    for stats, buffer_entries in zip(runner.run(buffer_specs), (8, 16, 32, 64)):
        print(f"  b={buffer_entries:<3}: accuracy {stats.prediction_accuracy:.3f}, "
              f"evicted unused {stats.buffer_evicted_unused}")

    print(
        f"\n(The runner filtered the TLB {cache.misses} time(s) for "
        f"{points_run} simulation points.)"
    )
    print(
        "\nTakeaway (matches the paper's Section 3.3): accuracy is nearly "
        "flat in\nassociativity, grows mildly with r and s, and a 16-entry "
        "buffer already\ncaptures most of the benefit."
    )


if __name__ == "__main__":
    main()
