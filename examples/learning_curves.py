#!/usr/bin/env python
"""Watch each mechanism learn (or fail to learn) a workload.

Replays galgel's miss stream in windows and prints each mechanism's
accuracy trajectory: DP locks onto the stride within its first handful
of misses, RP needs one full sweep before its recency stack carries any
information, and a 256-row MP table never stabilizes at all on this
footprint.

Run:  python examples/learning_curves.py [app] [window]
"""

import sys

from repro import create_prefetcher, filter_tlb, get_trace
from repro.analysis.learning import (
    accuracy_timeline,
    final_accuracy,
    misses_to_reach,
    render_timeline,
)


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "galgel"
    window = int(sys.argv[2]) if len(sys.argv) > 2 else 700

    miss_trace = filter_tlb(get_trace(app, scale=0.15))
    print(f"{app}: {miss_trace.num_misses} misses; window = {window}\n")

    for mechanism in ("DP", "RP", "MP"):
        prefetcher = create_prefetcher(mechanism, rows=256)
        points = accuracy_timeline(miss_trace, prefetcher, window=window)
        shown = points[:8]
        print(render_timeline(shown, label=prefetcher.label))
        warm = misses_to_reach(points)
        warm_text = f"{warm} misses" if warm is not None else "never"
        print(
            f"  -> reaches half of its final accuracy "
            f"({final_accuracy(points):.3f}) after {warm_text}\n"
        )


if __name__ == "__main__":
    main()
