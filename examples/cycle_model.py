#!/usr/bin/env python
"""Execution-cycle comparison: accuracy is not performance (Table 3).

RP out-predicts DP on the five applications below, yet loses the
execution-cycle comparison, because every RP miss spends up to six
memory operations maintaining its LRU stack in the page table while DP
only fetches its (two) predicted entries. This example reruns that
experiment and separates the stall components so the mechanism of the
upset is visible.

Run:  python examples/cycle_model.py
"""

from repro import (
    CycleSimConfig,
    NullPrefetcher,
    TABLE3_APPS,
    create_prefetcher,
    filter_tlb,
    get_trace,
    normalized_cycles,
    simulate_cycles,
)


def main() -> None:
    config = CycleSimConfig()
    header = (
        f"{'app':<8} {'mech':<6} {'norm.cycles':>11} {'accuracy':>9} "
        f"{'demand-stall':>13} {'in-flight':>10} {'mem ops':>9}"
    )
    print(header)
    print("-" * len(header))

    for app in TABLE3_APPS:
        miss_trace = filter_tlb(get_trace(app, scale=0.4))
        baseline = simulate_cycles(miss_trace, NullPrefetcher(), config)
        for name in ("RP", "DP"):
            stats = simulate_cycles(
                miss_trace, create_prefetcher(name, rows=256), config
            )
            print(
                f"{app:<8} {name:<6} {normalized_cycles(stats, baseline):>11.3f} "
                f"{stats.prediction_accuracy:>9.3f} "
                f"{stats.demand_stall_cycles:>13.0f} "
                f"{stats.in_flight_stall_cycles:>10.0f} "
                f"{stats.memory_ops:>9}"
            )

    print(
        "\nHow to read this: in the timed run RP's prediction accuracy "
        "collapses\n(prefetches are skipped whenever its pointer traffic "
        "is still outstanding,\nper the paper's rule), and on mcf the "
        "leftover in-flight waits push RP\nabove 1.0 — slower than no "
        "prefetching — while DP keeps most of its\naccuracy at a third "
        "of the memory operations."
    )


if __name__ == "__main__":
    main()
