#!/usr/bin/env python
"""Compare all prefetching mechanisms across reference-behaviour classes.

The paper's Section 1 taxonomy predicts which mechanism wins for each
kind of reference behaviour; this example runs one representative
application model per class through every mechanism and prints the
resulting accuracy matrix — the story of Figures 7 and 8 in one screen.

Run:  python examples/compare_prefetchers.py
"""

from repro import create_prefetcher, evaluate, get_app, get_trace

#: One representative app per behaviour class (see the registry for
#: the full 56).
REPRESENTATIVES = [
    ("gzip", "(a) strided, one-touch"),
    ("galgel", "(b) strided, repeated"),
    ("ammp", "(d) irregular, repeating (pointer walk)"),
    ("parser", "(d) irregular, repeating (alternation)"),
    ("swim", "(d) irregular, repeating (stream interleave)"),
    ("fma3d", "(e) no regularity"),
]

MECHANISMS = ["SP", "ASP", "MP", "RP", "DP"]


def main() -> None:
    print(f"{'application':<12} {'behaviour class':<42}"
          + "".join(f"{m:>8}" for m in MECHANISMS))
    print("-" * (12 + 42 + 8 * len(MECHANISMS) + 2))

    for app, label in REPRESENTATIVES:
        trace = get_trace(app, scale=0.2)
        row = f"{app:<12} {label:<42}"
        for mechanism in MECHANISMS:
            stats = evaluate(trace, create_prefetcher(mechanism, rows=256))
            row += f"{stats.prediction_accuracy:8.3f}"
        print(row)

    print(
        "\nReading the matrix against the paper's claims:\n"
        "  - one-touch strided data: only ASP and DP predict (no history to use)\n"
        "  - repeated strided data: everything works, DP at minimal table cost\n"
        "  - pointer walks: RP's in-memory history leads; DP trails but stays useful\n"
        "  - alternation: MP's multiple slots beat RP's single neighbourhood\n"
        "  - interleaved streams: DP alone sees the repeating distance cycle\n"
        "  - noise: nobody predicts, as it should be\n"
    )
    for app, _ in REPRESENTATIVES[:1]:
        spec = get_app(app)
        print(f"Paper's note on {app}: {spec.paper_note}")


if __name__ == "__main__":
    main()
