#!/usr/bin/env python
"""Compare all prefetching mechanisms across reference-behaviour classes.

The paper's Section 1 taxonomy predicts which mechanism wins for each
kind of reference behaviour; this example runs one representative
application model per class through every mechanism and prints the
resulting accuracy matrix — the story of Figures 7 and 8 in one screen.

The whole matrix is a single declarative batch: the Runner filters each
application's TLB once and replays all five mechanisms over the shared
miss stream, then ``ResultSet.pivot`` reshapes the rows for printing.

Run:  python examples/compare_prefetchers.py
"""

from repro import Runner, RunSpec, get_app

#: One representative app per behaviour class (see the registry for
#: the full 56).
REPRESENTATIVES = [
    ("gzip", "(a) strided, one-touch"),
    ("galgel", "(b) strided, repeated"),
    ("ammp", "(d) irregular, repeating (pointer walk)"),
    ("parser", "(d) irregular, repeating (alternation)"),
    ("swim", "(d) irregular, repeating (stream interleave)"),
    ("fma3d", "(e) no regularity"),
]

MECHANISMS = ["SP", "ASP", "MP", "RP", "DP"]


def main() -> None:
    specs = [
        RunSpec.of(app, mechanism, scale=0.2, rows=256)
        for app, _ in REPRESENTATIVES
        for mechanism in MECHANISMS
    ]
    accuracy = Runner().run(specs).pivot(
        index="workload", columns="mechanism_name", values="prediction_accuracy"
    )

    print(f"{'application':<12} {'behaviour class':<42}"
          + "".join(f"{m:>8}" for m in MECHANISMS))
    print("-" * (12 + 42 + 8 * len(MECHANISMS) + 2))
    for app, label in REPRESENTATIVES:
        row = f"{app:<12} {label:<42}"
        for mechanism in MECHANISMS:
            row += f"{accuracy[app][mechanism]:8.3f}"
        print(row)

    print(
        "\nReading the matrix against the paper's claims:\n"
        "  - one-touch strided data: only ASP and DP predict (no history to use)\n"
        "  - repeated strided data: everything works, DP at minimal table cost\n"
        "  - pointer walks: RP's in-memory history leads; DP trails but stays useful\n"
        "  - alternation: MP's multiple slots beat RP's single neighbourhood\n"
        "  - interleaved streams: DP alone sees the repeating distance cycle\n"
        "  - noise: nobody predicts, as it should be\n"
    )
    for app, _ in REPRESENTATIVES[:1]:
        spec = get_app(app)
        print(f"Paper's note on {app}: {spec.paper_note}")


if __name__ == "__main__":
    main()
