#!/usr/bin/env python
"""Quickstart: evaluate Distance Prefetching on one application model.

Runs the paper's representative configuration — a 128-entry fully
associative data TLB with a 16-entry prefetch buffer and a 256-row
direct-mapped distance table — over the galgel model (the highest
TLB-miss-rate application in the study) and prints what the prefetcher
achieved.

Simulations are described declaratively as :class:`repro.RunSpec`
records and executed in one batch by :class:`repro.Runner`, which
filters galgel's TLB once and replays both mechanisms over the shared
miss stream.

Run:  python examples/quickstart.py
"""

from repro import Runner, RunSpec


def main() -> None:
    # Workload models are deterministic; scale trades volume for speed.
    # Paper defaults otherwise: 128e-FA TLB, b=16, 4 KiB pages.
    specs = [
        RunSpec.of("galgel", "DP", scale=0.25, rows=256),
        RunSpec.of("galgel", "RP", scale=0.25),
    ]
    results = Runner().run(specs)

    dp_stats = results[0]
    print(f"Workload: galgel ({dp_stats.total_references} references, "
          f"scale 0.25)")
    print(f"\nTLB miss rate: {dp_stats.miss_rate:.4f} "
          f"({dp_stats.tlb_misses} misses / {dp_stats.total_references} refs)")
    print("\n  mechanism     accuracy   prefetches   mem-ops/miss")
    for stats in results:
        print(
            f"  {stats.mechanism:<12}  {stats.prediction_accuracy:7.3f}  "
            f"{stats.prefetches_issued:>10}   {stats.memory_ops_per_miss:6.2f}"
        )

    print(
        "\nDP covers nearly every miss of this strided workload from a "
        "256-row\ntable with zero overhead memory traffic; RP needs four "
        "page-table pointer\nwrites per miss to do the same job."
    )


if __name__ == "__main__":
    main()
