#!/usr/bin/env python
"""Model your own application and see which prefetcher suits it.

Builds a synthetic workload from pattern primitives — here, a stencil
kernel (three lock-step streams) interleaved with a pointer-chased
symbol table and diluted with hot stack traffic — then evaluates every
mechanism on it, the same way the built-in 56 models were designed.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import ReferenceTrace, create_prefetcher, evaluate, filter_tlb
from repro.workloads.patterns import (
    InterleavedStreams,
    PermutationWalk,
    RoundRobinMix,
    WithHotTraffic,
)


def build_my_workload() -> ReferenceTrace:
    """A stencil sweep plus a re-walked pointer structure."""
    stencil = InterleavedStreams(
        pc=0x1000,
        streams=[(0, 1), (2_000_000, 1), (4_000_000, 1)],  # a[i], b[i], c[i]
        length=4_000,
        refs_per_page=2.0,
        shared_pcs=True,
    )
    symbol_table = PermutationWalk(
        pc=0x2000,
        base=8_000_000,
        count=150,
        refs_per_page=1.5,
        sweeps=40,
    )
    mix = RoundRobinMix([stencil, symbol_table], burst_runs=12)
    workload = WithHotTraffic(
        mix, hot_pc=0xF000, hot_base=9_000_000, hot_pages=24,
        hot_refs_per_run=60.0,
    )
    rng = np.random.default_rng(2026)
    pcs, pages, counts = workload.emit(rng)
    return ReferenceTrace(pcs, pages, counts, name="my-stencil-app")


def main() -> None:
    trace = build_my_workload()
    miss_trace = filter_tlb(trace)
    print(f"Workload: {trace}")
    print(f"Miss stream: {miss_trace}\n")

    print(f"{'mechanism':<12} {'accuracy':>9} {'prefetches':>11} {'wasted':>8}")
    print("-" * 44)
    for mechanism in ("SP", "ASP", "MP", "RP", "DP", "DP-PC", "DP-2"):
        stats = evaluate(trace, create_prefetcher(mechanism, rows=256))
        print(
            f"{stats.mechanism:<12} {stats.prediction_accuracy:9.3f} "
            f"{stats.prefetches_issued:>11} {stats.buffer_waste_fraction:8.2%}"
        )

    print(
        "\nThe stencil's interleaved page crossings defeat the PC-indexed "
        "stride table\nbut form a three-distance cycle DP resolves; the "
        "symbol-table walk is where\nRP earns its keep. A mixed app rewards "
        "the mechanism that handles both."
    )


if __name__ == "__main__":
    main()
