#!/usr/bin/env python
"""Prefetching across context switches (the paper's §4 open question).

Two processes — a strided numeric kernel and a pointer-walking job —
share one MMU under round-robin scheduling. The TLB and prefetch buffer
flush on every switch; the policy question is what happens to the
on-chip *prediction* tables. This example compares flushing, sharing
(pollution), and per-process save/restore for DP, MP and RP.

Run:  python examples/multiprogramming.py [quantum]
"""

import sys

from repro import create_prefetcher, get_trace
from repro.sim.multiprog import FLUSH_POLICIES, compare_policies


def main() -> None:
    quantum = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    traces = [get_trace("galgel", 0.1), get_trace("ammp", 0.1)]
    print(
        f"mix: {traces[0].name} + {traces[1].name}, "
        f"quantum = {quantum} references\n"
    )

    header = f"{'mechanism':<10}" + "".join(f"{p:>14}" for p in FLUSH_POLICIES)
    print(header)
    print("-" * len(header))
    for mechanism in ("DP", "MP", "RP"):
        results = compare_policies(
            traces,
            lambda mechanism=mechanism: create_prefetcher(mechanism, rows=256),
            quantum=quantum,
        )
        row = f"{mechanism:<10}"
        for policy in FLUSH_POLICIES:
            row += f"{results[policy].prediction_accuracy:14.3f}"
        print(row)
    switches = results["flush"].context_switches
    print(
        f"\n({switches} context switches observed.)\n"
        "Reading the table: DP re-learns its few distance rows within a\n"
        "handful of misses, so even 'flush' barely dents it; MP's per-page\n"
        "history is the most switch-sensitive; RP is identical under flush\n"
        "and shared because its state lives in each process's page table —\n"
        "the structural advantage the paper's Section 4 hints at."
    )


if __name__ == "__main__":
    main()
