"""Ablation A5: memory traffic — the paper's 2–3x RP-over-DP claim.

Section 3.2: "RP generates much more memory traffic ranging from
anywhere between 2-3 times that for DP [19]". This bench measures the
prefetch-related memory operations (stack-pointer maintenance + entry
fetches) both mechanisms induce on the Table 3 applications and checks
the quoted ratio band.
"""

from repro.analysis.ascii_chart import format_table
from repro.analysis.traffic import rp_to_dp_traffic_ratio, traffic_comparison
from repro.workloads.registry import TABLE3_APPS

from conftest import write_result


def _run(context):
    results = {}
    for app in TABLE3_APPS:
        miss_trace = context.miss_trace(app)
        results[app] = {
            "comparison": traffic_comparison(miss_trace),
            "ratio": rp_to_dp_traffic_ratio(miss_trace),
        }
    return results


def test_ablation_traffic_rp_vs_dp(benchmark, context, results_dir):
    results = benchmark.pedantic(_run, args=(context,), rounds=1, iterations=1)

    rows = []
    for app, data in results.items():
        for summary in data["comparison"].values():
            rows.append(
                [app, summary.mechanism, summary.overhead_ops,
                 summary.fetch_ops, summary.ops_per_miss, summary.accuracy]
            )
        rows.append([app, "RP/DP ratio", "", "", data["ratio"], ""])
    write_result(
        results_dir,
        "ablation_traffic",
        format_table(
            ["App", "Mechanism", "Overhead", "Fetches", "Ops/miss", "Accuracy"],
            rows,
        ),
    )

    for app, data in results.items():
        # The paper quotes 2-3x; ours runs 3.5-6.5x because DP's slots
        # often hold a single distance on regular apps and duplicate
        # fetches coalesce, cutting DP below the paper's assumed two
        # fetches per miss. The claim holds a fortiori; assert the
        # direction and a sane band.
        assert 2.0 <= data["ratio"] <= 8.0, (app, data["ratio"])
        comparison = data["comparison"]
        # DP and MP never touch memory for maintenance; RP always does.
        assert comparison["DP"].overhead_ops == 0
        assert comparison["MP"].overhead_ops == 0
        assert comparison["RP"].overhead_ops > 0
        # RP's overhead alone approaches 4 ops per miss once pages
        # recirculate (2 for the unlink + 2 for the push).
        rp = comparison["RP"]
        assert 2.0 <= rp.overhead_ops / rp.tlb_misses <= 4.0, app
