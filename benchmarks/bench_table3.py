"""Regenerate Table 3: normalized execution cycles, RP vs DP.

The five applications are those where RP's *prediction accuracy* beats
DP's (ammp, mcf, vpr, twolf, lucas); the paper's point is that DP still
wins in execution cycles because RP's LRU-stack maintenance costs up to
six memory operations per miss. Paper values (RP / DP): ammp 0.97/0.86,
mcf 1.09/0.95, vpr 0.99/0.98, twolf 0.98/0.98, lucas 1.00/0.99.

Checked shape: DP at least ties RP on every app, and RP is an outright
slowdown (>= 1.0) on mcf.
"""

from repro.analysis.tables import check_table3_shape, compare_table3
from repro.prefetch.factory import create_prefetcher
from repro.sim.two_phase import replay_prefetcher

from conftest import write_result


def test_table3_normalized_cycles(benchmark, context, results_dir):
    results = benchmark.pedantic(context.run_table3, rounds=1, iterations=1)

    write_result(results_dir, "table3", compare_table3(results))

    failures = check_table3_shape(results)
    assert failures == [], failures

    # Sanity: these runs model real savings, not no-ops.
    assert results["ammp"]["DP"] < 0.97
    assert results["mcf"]["RP"] > 1.0

    # The accuracy premise of the table: RP predicts better than DP on
    # each of these apps, yet loses the cycle comparison above.
    for app in results:
        rp_acc = replay_prefetcher(
            context.miss_trace(app), create_prefetcher("RP")
        ).prediction_accuracy
        dp_acc = replay_prefetcher(
            context.miss_trace(app), create_prefetcher("DP", rows=256)
        ).prediction_accuracy
        assert rp_acc > dp_acc, (app, rp_acc, dp_acc)
