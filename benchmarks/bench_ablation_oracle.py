"""Ablation A7: oracle headroom — learnability vs coverability.

For each behaviour class, compare the best real mechanism against an
oracle that knows the next two misses. Where the oracle is near 1.0 but
every mechanism is near 0 (fma3d, gsm), the pattern is *coverable but
unlearnable* — motivating the paper's closing call for "further work on
prefetching mechanisms" for irregular applications. Where DP already
sits at the oracle's level (galgel, swim), the problem is solved.
"""

from repro.analysis.ascii_chart import format_table
from repro.prefetch.factory import create_prefetcher
from repro.sim.oracle import replay_oracle
from repro.sim.two_phase import replay_prefetcher

from conftest import write_result

APPS = ("galgel", "swim", "ammp", "parser", "gsm-enc", "fma3d", "gzip")
MECHANISMS = ("DP", "RP", "MP", "ASP")


def _run(context):
    results = {}
    for app in APPS:
        miss_trace = context.miss_trace(app)
        per_app = {
            mechanism: replay_prefetcher(
                miss_trace,
                create_prefetcher(mechanism, rows=256),
                max_prefetches_per_miss=2,
            ).prediction_accuracy
            for mechanism in MECHANISMS
        }
        per_app["oracle"] = replay_oracle(
            miss_trace, lookahead=2
        ).prediction_accuracy
        results[app] = per_app
    return results


def test_ablation_oracle_headroom(benchmark, context, results_dir):
    results = benchmark.pedantic(_run, args=(context,), rounds=1, iterations=1)

    rows = []
    for app, accuracies in results.items():
        best_real = max(accuracies[m] for m in MECHANISMS)
        rows.append(
            [app, accuracies["oracle"], best_real,
             accuracies["oracle"] - best_real]
        )
    write_result(
        results_dir,
        "ablation_oracle",
        format_table(["App", "Oracle (k=2)", "Best mechanism", "Headroom"], rows),
    )

    for app, accuracies in results.items():
        # The oracle bounds every mechanism (same buffer, same issue cap).
        ceiling = accuracies["oracle"]
        for mechanism in MECHANISMS:
            assert accuracies[mechanism] <= ceiling + 0.02, (app, mechanism)
        # And the oracle is near-perfect everywhere: the buffer is
        # never the binding constraint at this lookahead.
        assert ceiling > 0.9, (app, ceiling)

    # fma3d: coverable (oracle ~1) yet unlearnable (mechanisms ~0) —
    # the "motivates further work" case.
    assert max(results["fma3d"][m] for m in MECHANISMS) < 0.1
    # galgel: DP already at the ceiling.
    assert results["galgel"]["oracle"] - results["galgel"]["DP"] < 0.02
