"""Regenerate Figure 9: DP sensitivity on the 8 highest-miss apps.

Four panels: (a) prediction-table size x associativity, (b) prediction
slots s in {2,4,6}, (c) prefetch buffer size b in {16,32,64}, (d) TLB
size in {64,128,256}. The paper's conclusion — checked here — is that
DP is "fairly insensitive to many of these parameters, and even a small
direct-mapped 32-256 entry table suffices".
"""

import pytest

from conftest import write_result


def test_figure9a_table_configuration(benchmark, context, results_dir):
    results = benchmark.pedantic(context.run_figure9_tables, rounds=1, iterations=1)
    write_result(
        results_dir,
        "figure9a_tables",
        context.render_figure(results, "Figure 9a: DP table size x associativity"),
    )
    # "The indexing mechanism (F, 2 or 4 way) has very little influence
    # on the prediction accuracy in most cases" — checked as: strided
    # apps are insensitive, and the D-vs-F gap averaged over all eight
    # apps stays small (history-walk apps like lucas, whose hundreds of
    # distinct distances conflict in a direct-mapped table, are the
    # exception that associativity genuinely helps).
    gaps = []
    for app, accuracies in results.items():
        for rows in (256, 64, 32):
            gaps.append(abs(accuracies[f"DP,{rows},D"] - accuracies[f"DP,{rows},F"]))
    assert sum(gaps) / len(gaps) < 0.15, gaps
    for app in ("galgel", "adpcm-enc"):
        accuracies = results[app]
        for rows in (256, 64, 32):
            direct = accuracies[f"DP,{rows},D"]
            fully = accuracies[f"DP,{rows},F"]
            assert abs(direct - fully) < 0.1, (app, rows, direct, fully)
    # A 256-row direct-mapped table is within a whisker of 1024 rows
    # for the strided high-miss apps.
    assert results["galgel"]["DP,256,D"] > results["galgel"]["DP,1024,D"] - 0.05
    assert results["adpcm-enc"]["DP,32,D"] > 0.9  # small table suffices


def test_figure9b_prediction_slots(benchmark, context, results_dir):
    results = benchmark.pedantic(context.run_figure9_slots, rounds=1, iterations=1)
    write_result(
        results_dir,
        "figure9b_slots",
        context.render_figure(results, "Figure 9b: DP prediction slots s"),
    )
    for app, accuracies in results.items():
        # More slots never collapse accuracy, and gains are modest.
        assert accuracies["s = 4"] >= accuracies["s = 2"] - 0.1, (app, accuracies)
        assert accuracies["s = 6"] >= accuracies["s = 2"] - 0.1, (app, accuracies)


def test_figure9c_buffer_size(benchmark, context, results_dir):
    results = benchmark.pedantic(context.run_figure9_buffers, rounds=1, iterations=1)
    write_result(
        results_dir,
        "figure9c_buffers",
        context.render_figure(results, "Figure 9c: prefetch buffer size b"),
    )
    for app, accuracies in results.items():
        assert accuracies["b = 32"] >= accuracies["b = 16"] - 1e-9, (app, accuracies)
        assert accuracies["b = 64"] >= accuracies["b = 32"] - 1e-9, (app, accuracies)
        # ... but 16 entries already deliver most of the value.
        assert accuracies["b = 16"] > accuracies["b = 64"] - 0.25, (app, accuracies)


def test_figure9d_tlb_size(benchmark, context, results_dir):
    results = benchmark.pedantic(context.run_figure9_tlbs, rounds=1, iterations=1)
    write_result(
        results_dir,
        "figure9d_tlbs",
        context.render_figure(results, "Figure 9d: TLB size"),
    )
    # DP keeps predicting well across TLB sizes on the strided apps.
    for app in ("galgel", "adpcm-enc"):
        accuracies = results[app]
        assert min(accuracies.values()) > 0.85, (app, accuracies)
