"""Regenerate Figure 8: MediaBench, Etch and Pointer-Intensive suites.

Same bar set as Figure 7 over the 30 non-SPEC applications. The
assertions track the paper's suite-specific observations: cold misses
make ASP/DP shine on MediaBench; DP is the only scheme with noticeable
predictions on gsm/jpeg/msvc/ks/bc; adpcm shows RP/ASP/DP good with MP
very poor.
"""

from conftest import write_result


def test_figure8_other_suites(benchmark, context, results_dir):
    results = benchmark.pedantic(context.run_figure8, rounds=1, iterations=1)

    write_result(
        results_dir,
        "figure8",
        context.render_figure(
            results, "Figure 8: MediaBench / Etch / PtrDist prediction accuracy"
        ),
    )

    assert len(results) == 30

    # adpcm: RP/ASP/DP good; MP very poor even at r=1024 (footprint).
    adpcm = results["adpcm-enc"]
    assert adpcm["RP"] > 0.8
    assert adpcm["ASP,256"] > 0.9
    assert adpcm["DP,256,D"] > 0.9
    assert adpcm["MP,1024,D"] < 0.2

    # First-touch media codecs: ASP/DP good, history near zero.
    for app in ("epic", "unepic", "mipmap-mesa", "pgp-enc"):
        acc = results[app]
        assert acc["ASP,256"] > 0.5, (app, acc)
        assert acc["DP,256,D"] > 0.5, (app, acc)
        assert acc["RP"] < 0.1, (app, acc)

    # DP-only group: noticeable (but sub-35%) DP, others near zero.
    for app in ("gsm-enc", "gsm-dec", "jpeg-enc", "jpeg-dec", "msvc", "ks", "bc"):
        acc = results[app]
        assert 0.08 < acc["DP,256,D"] < 0.35, (app, acc)
        assert acc["RP"] < 0.08, (app, acc)
        assert acc["MP,1024,D"] < 0.08, (app, acc)
        assert acc["ASP,1024"] < 0.08, (app, acc)

    # Etch distance-class apps: DP far ahead.
    for app in ("mpegply", "perl4"):
        acc = results[app]
        others = max(acc["RP"], acc["MP,1024,D"], acc["ASP,1024"])
        assert acc["DP,256,D"] > others + 0.3, (app, acc)

    # Low-miss apps: nobody predicts (and it doesn't matter).
    for app in ("g721-enc", "g721-dec", "pgp-dec"):
        assert max(results[app].values()) < 0.1, app
