"""Ablation A2: prediction-table flushing under multiprogramming.

The paper's Section 4 raises "prefetching issues in a multiprogrammed
environment (flushing/switching the prefetch tables)". This bench
round-robins two application models through one MMU and compares the
three policies for on-chip prediction state across context switches:
flush every switch, share (pollute), or save/restore per process.
"""

from repro.analysis.ascii_chart import format_table
from repro.prefetch.factory import create_prefetcher
from repro.sim.multiprog import compare_policies
from repro.workloads.registry import get_trace

from conftest import BENCH_SCALE, write_result

#: A strided app and a pointer-walking app — state survives switches
#: differently for each.
MIX = ("galgel", "ammp")
QUANTUM = 20_000


def _run():
    traces = [get_trace(name, BENCH_SCALE) for name in MIX]
    outcome = {}
    for mechanism in ("DP", "MP", "RP"):
        outcome[mechanism] = compare_policies(
            traces,
            lambda mechanism=mechanism: create_prefetcher(mechanism, rows=256),
            quantum=QUANTUM,
        )
    return outcome


def test_ablation_multiprogramming_flush_policies(benchmark, context, results_dir):
    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for mechanism, by_policy in outcome.items():
        for policy, stats in by_policy.items():
            rows.append(
                [mechanism, policy, stats.prediction_accuracy,
                 stats.context_switches, stats.tlb_misses]
            )
    write_result(
        results_dir,
        "ablation_multiprog",
        format_table(
            ["Mechanism", "Policy", "Accuracy", "Switches", "Misses"],
            rows,
            float_format="{:.3f}",
        ),
    )

    for mechanism, by_policy in outcome.items():
        accuracies = {p: s.prediction_accuracy for p, s in by_policy.items()}
        # Keeping state never loses badly to flushing it...
        assert accuracies["per_process"] >= accuracies["flush"] - 0.02, (
            mechanism, accuracies,
        )
        # ...and the miss stream itself is policy-invariant.
        misses = {s.tlb_misses for s in by_policy.values()}
        assert len(misses) == 1, (mechanism, misses)

    # RP is structurally immune to the flush knob: flush() is a no-op
    # because its state lives in the page table, so "flush" and
    # "shared" are bit-identical runs. ("per_process" differs slightly
    # — separate page tables mean separate recency stacks, so switch-
    # boundary neighbourhoods change.)
    rp_accuracies = {
        p: s.prediction_accuracy for p, s in outcome["RP"].items()
    }
    assert rp_accuracies["flush"] == rp_accuracies["shared"]
    assert abs(rp_accuracies["per_process"] - rp_accuracies["flush"]) < 0.05
