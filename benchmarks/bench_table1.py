"""Regenerate Table 1: hardware comparison of the schemes at a glance.

Table 1 is a static property table (rows, contents, indexing, memory
operations and prefetches per miss for ASP/MP/RP/DP); the benchmark
verifies it is generated from the mechanisms' own hardware
descriptions, not hand-written text.
"""

from conftest import write_result


def test_table1_hardware_comparison(benchmark, context, results_dir):
    table = benchmark.pedantic(context.run_table1, rounds=1, iterations=1)

    write_result(results_dir, "table1", table)
    # The paper's distinguishing entries must be present.
    assert "No. of PTEs" in table        # RP rows
    assert "In Memory" in table          # RP table location
    assert "Distance" in table           # DP index source
    assert "PC" in table                 # ASP index source
    lines = [line for line in table.splitlines() if "Memory ops per miss" in line]
    assert lines and "4" in lines[0]     # RP's four pointer operations
