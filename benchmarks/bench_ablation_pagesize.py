"""Ablation A3: page-size (superpage) sensitivity.

The paper's Section 3.3 reports that DP "is able to make good
predictions across different TLB configurations and page sizes as
well" (details in TR [19]); superpaging is also one of its Section 4
future-work directions. This bench rescales the 4 KiB-page traces to 8,
16 and 64 KiB pages and re-evaluates DP and RP on the high-miss apps.
"""

from repro.analysis.ascii_chart import format_table
from repro.prefetch.factory import create_prefetcher
from repro.sim.sweep import page_size_sweep
from repro.workloads.registry import get_trace

from conftest import BENCH_SCALE, write_result

APPS = ("galgel", "adpcm-enc", "mcf", "ammp")
PAGE_SIZES = (4096, 8192, 16384, 65536)


def _run():
    results = {}
    for app in APPS:
        trace = get_trace(app, BENCH_SCALE)
        results[app] = {
            "DP": page_size_sweep(
                trace, lambda: create_prefetcher("DP", rows=256),
                page_sizes=PAGE_SIZES,
            ),
            "RP": page_size_sweep(
                trace, lambda: create_prefetcher("RP"), page_sizes=PAGE_SIZES
            ),
        }
    return results


def test_ablation_page_size_sensitivity(benchmark, context, results_dir):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for app, by_mechanism in results.items():
        for mechanism, by_size in by_mechanism.items():
            for size, stats in by_size.items():
                rows.append(
                    [app, mechanism, f"{size // 1024}K",
                     stats.prediction_accuracy, stats.miss_rate]
                )
    write_result(
        results_dir,
        "ablation_pagesize",
        format_table(
            ["App", "Mechanism", "Page", "Accuracy", "Miss rate"],
            rows,
            float_format="{:.4f}",
        ),
    )

    for app, by_mechanism in results.items():
        dp = by_mechanism["DP"]
        # Bigger pages shrink the page-level footprint: fewer misses.
        assert dp[65536].tlb_misses < dp[4096].tlb_misses, app
    # DP's accuracy holds up across page sizes on the strided apps.
    for app in ("galgel", "adpcm-enc"):
        accuracies = [
            s.prediction_accuracy for s in results[app]["DP"].values()
        ]
        assert min(accuracies) > 0.85, (app, accuracies)
