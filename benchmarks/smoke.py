#!/usr/bin/env python
"""Runner-based smoke benchmark: one small Figure-7-shaped batch.

Times a representative batch (a handful of workloads x the full
Figure 7 mechanism legend) through the unified :class:`repro.Runner`
on *both* replay engines — the authoritative reference engine and the
vectorized fast path (:mod:`repro.sim.fastpath`) — verifies their rows
are bit-identical, and emits a machine-readable JSON record with the
wall-clock speedup. CI tracks this record (``BENCH_smoke.json``) to
watch the execution path's performance trajectory over time.

Run:  PYTHONPATH=src python benchmarks/smoke.py --out BENCH_smoke.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro import ENGINES, MissStreamCache, Runner, RunSpec
from repro.analysis.figures import figure7_configs

#: Small but behaviour-diverse: strided, pointer-walk, interleaved, noise.
SMOKE_APPS = ("galgel", "swim", "ammp", "eon")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_smoke.json", help="output JSON path")
    parser.add_argument("--scale", type=float, default=0.1, help="workload scale")
    parser.add_argument("--workers", type=int, default=0, help="process-pool size")
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="fast",
        help="engine for the timed primary batch (compared against reference)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions per engine; the fastest is recorded "
        "(noise-robust: scheduler interference only ever slows a run down)",
    )
    args = parser.parse_args(argv)

    specs = [
        RunSpec.of(
            app,
            config.mechanism,
            scale=args.scale,
            engine=args.engine,
            **config.factory_params(),
        )
        for app in SMOKE_APPS
        for config in figure7_configs()
    ]
    cache = MissStreamCache()
    runner = Runner(cache=cache)

    # Phase 1 (TLB filtering) is shared by every engine and cached;
    # time it separately so the engine comparison is replay-only.
    started = time.perf_counter()
    for spec in specs:
        runner.miss_stream_for(spec)
    filter_elapsed = time.perf_counter() - started
    filters = cache.misses

    # Interleave the repetitions so slow drifts in machine load hit
    # both engines alike; keep each engine's fastest wall-clock.
    reference_specs = [spec.derive(engine="reference") for spec in specs]
    reference_elapsed = elapsed = float("inf")
    reference = results = None
    for _ in range(max(1, args.repeats)):
        started = time.perf_counter()
        reference = runner.run(reference_specs)
        reference_elapsed = min(reference_elapsed, time.perf_counter() - started)

        started = time.perf_counter()
        results = runner.run(specs)
        elapsed = min(elapsed, time.perf_counter() - started)

    engines_identical = results.to_json() == reference.to_json()
    speedup = reference_elapsed / elapsed if elapsed else 0.0

    # The parallel run is a Runner check, not an engine comparison: it
    # filters inside the worker processes, so its wall-clock includes
    # TLB filtering and is NOT comparable to the replay-only timings.
    parallel_elapsed = None
    parallel_identical = None
    if args.workers > 1:
        started = time.perf_counter()
        parallel = Runner(workers=args.workers, cache=MissStreamCache()).run(specs)
        parallel_elapsed = round(time.perf_counter() - started, 4)
        parallel_identical = parallel.to_json() == reference.to_json()

    # Track the paper's representative DP configuration explicitly
    # (r=256, direct-mapped) — pivot would silently keep whichever DP
    # bar comes last in the legend.
    dp_repr = results.filter(mechanism="DP,256,D")
    record = {
        "benchmark": "smoke",
        "python": platform.python_version(),
        "scale": args.scale,
        "workers": args.workers,
        "engine": args.engine,
        "specs": len(specs),
        "workloads": len(SMOKE_APPS),
        "tlb_filters": filters,
        "tlb_filter_seconds": round(filter_elapsed, 4),
        "elapsed_seconds": round(elapsed, 4),
        "elapsed_reference_seconds": round(reference_elapsed, 4),
        "elapsed_parallel_total_seconds": parallel_elapsed,
        "speedup_vs_reference": round(speedup, 2),
        "engines_identical": engines_identical,
        "parallel_identical": parallel_identical,
        "specs_per_second": round(len(specs) / elapsed, 2) if elapsed else 0.0,
        "stream_cache_hits": cache.hits,
        "mean_dp256_accuracy": round(
            sum(run.prediction_accuracy for run in dp_repr) / len(dp_repr), 4
        ),
        "rows": [
            {
                "workload": run.workload,
                "mechanism": run.mechanism,
                "prediction_accuracy": round(run.prediction_accuracy, 4),
            }
            for run in results
        ],
    }
    out = Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"[smoke] {len(specs)} specs: engine={args.engine} {elapsed:.2f}s vs "
        f"reference {reference_elapsed:.2f}s -> {speedup:.2f}x speedup, "
        f"bit-identical={engines_identical} "
        f"({record['specs_per_second']} specs/s, {filters} TLB filters) -> {out}"
    )
    if not engines_identical:
        print("[smoke] ERROR: engines diverged — fast path is not bit-identical")
        return 1
    if parallel_identical is False:
        print("[smoke] ERROR: parallel batch diverged from serial (Runner bug)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
