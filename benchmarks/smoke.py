#!/usr/bin/env python
"""Runner-based smoke benchmark: one small Figure-7-shaped batch.

Times a representative batch (a handful of workloads x the full
Figure 7 mechanism legend) through the unified :class:`repro.Runner`
on *all three* replay engines — the authoritative reference engine,
the vectorized per-spec fast path (:mod:`repro.sim.fastpath`), and
the one-pass multi-mechanism batch engine (:mod:`repro.sim.batchpath`)
— verifies their rows are bit-identical, and emits a machine-readable
JSON record with the wall-clock speedups (``specs_per_second``,
``batch_specs_per_second``, ``batch_identical``). CI tracks this
record (``BENCH_smoke.json``) to watch the execution path's
performance trajectory over time.

Run:  PYTHONPATH=src python benchmarks/smoke.py --out BENCH_smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import repro
from repro import ENGINES, ExperimentStore, MissStreamCache, Runner, RunSpec
from repro.analysis.figures import figure7_configs
from repro.obs import REGISTRY, PhaseProfiler, set_enabled

#: Small but behaviour-diverse: strided, pointer-walk, interleaved, noise.
SMOKE_APPS = ("galgel", "swim", "ammp", "eon")

#: Budget for the store's cold write-back overhead, as a fraction of
#: the bare replay wall-clock. Both sides are fastest-of-N within the
#: same window, so machine noise largely cancels; exceeding this fails
#: the benchmark (the docs promise the cold sweep costs <5%).
STORE_COLD_BUDGET = 0.05


def distributed_phase(
    specs: list[RunSpec], reference_json: str, max_workers: int
) -> dict:
    """Time the smoke sweep through the scheduler at 1..N workers.

    Each worker-count run gets a fresh store and an in-process server;
    the workers are real ``repro-tlb worker`` subprocesses, and the
    timer starts only after every worker has announced itself (their
    cold-start imports are not the scheduler's throughput).
    """
    from repro.sched import SchedulerClient
    from repro.service import make_server

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    scaling: dict[str, float] = {}
    identical = True
    with tempfile.TemporaryDirectory(prefix="repro-dist-smoke-") as root:
        for count in sorted({1, max_workers}):
            server = make_server(Path(root) / f"store{count}", port=0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            client = SchedulerClient(server.url)
            client.wait_ready()
            workers = [
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro.cli", "worker",
                        "--url", server.url, "--poll", "0.02", "--batch", "8",
                    ],
                    env=env,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    text=True,
                )
                for _ in range(count)
            ]
            try:
                for worker in workers:
                    worker.stdout.readline()  # "... polling ..." = ready
                started = time.perf_counter()
                results = client.submit_sweep(specs, poll_interval=0.05, timeout=600)
                scaling[str(count)] = round(time.perf_counter() - started, 4)
            finally:
                for worker in workers:
                    worker.terminate()
                for worker in workers:
                    worker.wait(timeout=30)
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)
            identical = identical and results.to_json() == reference_json
    elapsed = scaling[str(max_workers)]
    return {
        "distributed_workers": max_workers,
        "distributed_elapsed_seconds": elapsed,
        "distributed_specs_per_second": round(len(specs) / elapsed, 2)
        if elapsed
        else 0.0,
        "distributed_identical": identical,
        "distributed_scaling": scaling,
        "distributed_scaling_speedup": round(scaling["1"] / elapsed, 2)
        if elapsed
        else 0.0,
    }


def streaming_phase(runner: Runner, spec: RunSpec, repeats: int) -> dict:
    """Time the checkpoint/streaming path on one representative spec.

    ``warm_start_speedup`` compares replaying the whole miss stream
    from scratch against resuming from a mid-stream checkpoint (the
    suspend/resume currency of ``Runner(checkpoint_every=)`` and the
    service's idle-session eviction).  ``stream_entries_per_second``
    drives the real ``/streams`` API in 8 chunks — checkpointing after
    every advance — and must finish byte-identical to a one-shot
    ``POST /runs`` of the same spec.
    """
    from repro.ckpt import ReplaySession, SessionSnapshot
    from repro.service.server import ExperimentService

    stream = runner.miss_stream_for(spec)

    # Cold: the whole stream in one session, fastest of N.
    cold_elapsed = float("inf")
    for _ in range(max(1, repeats)):
        session = ReplaySession(stream, spec.build_prefetcher())
        started = time.perf_counter()
        session.advance(None)
        cold_elapsed = min(cold_elapsed, time.perf_counter() - started)
    one_shot_stats = session.stats()

    # Warm: checkpoint halfway (through the wire format), then time
    # only the resumed second half.
    half_session = ReplaySession(stream, spec.build_prefetcher())
    half_session.advance(half_session.total // 2)
    snapshot_bytes = half_session.snapshot().to_bytes()
    warm_elapsed = float("inf")
    for _ in range(max(1, repeats)):
        resumed = ReplaySession.resume(
            SessionSnapshot.from_bytes(snapshot_bytes),
            stream,
            spec.build_prefetcher(),
        )
        started = time.perf_counter()
        resumed.advance(None)
        warm_elapsed = min(warm_elapsed, time.perf_counter() - started)
    identical = resumed.stats() == one_shot_stats

    # Chunked through the real service API (checkpoint every advance),
    # in the same 8-chunk shape the streaming-smoke CI job uses.
    with tempfile.TemporaryDirectory(prefix="repro-stream-smoke-") as root:
        service = ExperimentService(
            ExperimentStore(Path(root) / "store"), runner=runner
        )
        status, one_shot_row = service.handle(
            "POST", "/runs", body={"specs": [spec.to_dict()]}
        )
        assert status == 200, one_shot_row
        _, opened = service.handle(
            "POST", "/streams", body={"spec": spec.to_dict(), "session_id": "smoke"}
        )
        chunk = opened["total"] // 8 + 1
        started = time.perf_counter()
        while True:
            _, step = service.handle(
                "POST", "/streams/smoke/advance", body={"count": chunk}
            )
            if step["finished"]:
                break
        stream_elapsed = time.perf_counter() - started
        identical = identical and json.dumps(
            step["stats"], sort_keys=True
        ) == json.dumps(one_shot_row["runs"][0], sort_keys=True)

    return {
        "stream_entries": opened["total"],
        "stream_chunk_entries": chunk,
        "stream_entries_per_second": round(opened["total"] / stream_elapsed, 1)
        if stream_elapsed
        else 0.0,
        "warm_start_cold_seconds": round(cold_elapsed, 4),
        "warm_start_resumed_seconds": round(warm_elapsed, 4),
        "warm_start_speedup": round(cold_elapsed / warm_elapsed, 2)
        if warm_elapsed
        else 0.0,
        "streaming_identical": identical,
    }


def obs_phase(runner: Runner, specs: list[RunSpec], repeats: int) -> dict:
    """Measure what the telemetry itself costs, and what it observed.

    ``obs_overhead_fraction`` times the primary batch with the whole
    observability layer on vs switched off (``set_enabled(False)`` —
    the same switch ``REPRO_OBS_DISABLED=1`` throws); CI gates it
    below 5%. The two timings are interleaved within the same window
    (fastest-of-N each) so machine-load drift between benchmark phases
    cannot masquerade as instrumentation overhead. The service latency
    quantiles come straight from the process-wide registry, which the
    streaming and distributed phases populated through the real
    ``ExperimentService.handle`` path.
    """
    enabled_elapsed = disabled_elapsed = float("inf")
    for _ in range(max(2, repeats)):
        started = time.perf_counter()
        runner.run(specs)
        enabled_elapsed = min(enabled_elapsed, time.perf_counter() - started)
        set_enabled(False)
        try:
            started = time.perf_counter()
            runner.run(specs)
            disabled_elapsed = min(disabled_elapsed, time.perf_counter() - started)
        finally:
            set_enabled(True)
    overhead = (
        (enabled_elapsed - disabled_elapsed) / disabled_elapsed
        if disabled_elapsed and disabled_elapsed != float("inf")
        else 0.0
    )
    http_seconds = REGISTRY.get("repro_http_request_seconds")
    summary = (
        http_seconds.summary()
        if http_seconds is not None
        else {"count": 0, "p50": 0.0, "p99": 0.0}
    )
    return {
        "obs_enabled_seconds": round(enabled_elapsed, 4),
        "obs_disabled_seconds": round(disabled_elapsed, 4),
        "obs_overhead_fraction": round(max(0.0, overhead), 4),
        "service_requests_observed": int(summary["count"]),
        "service_p50_ms": round(summary["p50"] * 1000.0, 3),
        "service_p99_ms": round(summary["p99"] * 1000.0, 3),
    }


def load_phase(spec: RunSpec, clients: int, duration: float = 2.0) -> dict:
    """Hammer a tenant-gated server with ``clients`` concurrent clients.

    Two tenants share a deliberately small admission envelope
    (``max_inflight=16``, ``max_queue=32``), so a fraction of the flood
    *must* be shed — the phase measures that the overload path is
    correct, not that it never happens. Every response is bucketed:
    2xx latencies feed ``load_p50_ms``/``load_p99_ms``, every 429 must
    carry a ``Retry-After`` header, and any 5xx fails the benchmark
    (overload is answered with backpressure, never with a crash).
    ``load_identical`` re-runs the same spec through a tokened
    ``POST /runs`` before and after the flood: admission control and
    shedding must not perturb result bytes.
    """
    import urllib.error
    import urllib.request

    from repro.service import make_server
    from repro.service.admission import AdmissionController, TenantConfig

    # The flood tenants get rate budgets well below what `clients`
    # concurrent loops can attempt, so a healthy fraction of the flood
    # is *guaranteed* to be rejected with 429 — that rejection path is
    # what this phase measures. The byte-identity runs use a third
    # tenant whose untouched bucket stays full through the flood.
    tenants = (
        TenantConfig(
            name="alpha", token="bench-alpha", rate=150.0, burst=75.0,
            cost_rate=500.0, cost_burst=10_000.0,
        ),
        TenantConfig(
            name="beta", token="bench-beta", rate=150.0, burst=75.0,
            cost_rate=500.0, cost_burst=10_000.0,
        ),
        TenantConfig(
            name="check", token="bench-check", rate=1000.0, burst=1000.0,
            cost_rate=500.0, cost_burst=10_000.0,
        ),
    )
    admission = AdmissionController(
        tenants=tenants,
        max_inflight=16,
        max_queue=32,
        queue_wait_seconds=0.05,
        shed_retry_after=0.05,
    )

    def call(token: str, method: str, path: str, body: dict | None = None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            server.url + path,
            data=data,
            method=method,
            headers={
                "Content-Type": "application/json",
                "Authorization": f"Bearer {token}",
            },
        )
        started = time.perf_counter()
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                payload = json.loads(response.read())
                headers = dict(response.headers)
                status = response.status
        except urllib.error.HTTPError as exc:
            payload = json.loads(exc.read() or b"{}")
            headers = dict(exc.headers)
            status = exc.code
        except OSError:
            # A reset/timed-out connection: recorded as status 0 so the
            # client keeps flooding (and the record keeps the count).
            payload, headers, status = {}, {}, 0
        return status, headers, payload, time.perf_counter() - started

    with tempfile.TemporaryDirectory(prefix="repro-load-smoke-") as root:
        server = make_server(Path(root) / "store", port=0, admission=admission)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            run_body = {"specs": [spec.to_dict()]}
            status, _, before, _ = call("bench-check", "POST", "/runs", run_body)
            assert status == 200, before
            reference = json.dumps(before["runs"], sort_keys=True)

            # The flood proper: each client loops a read/claim/complete
            # mix until the deadline, recording every (status, latency,
            # has-Retry-After) triple. Tokens alternate so both tenant
            # buckets drain.
            samples: list[list[tuple[int, float, bool]]] = [
                [] for _ in range(clients)
            ]
            begin = threading.Barrier(clients + 1)

            def client_loop(index: int) -> None:
                token = "bench-alpha" if index % 2 == 0 else "bench-beta"
                requests = (
                    ("GET", "/results?limit=2", None),
                    ("GET", "/stats", None),
                    ("POST", "/claim", {"worker_id": f"load-{index}", "limit": 1}),
                    ("POST", "/complete", {"job_id": "load-bogus", "worker_id": f"load-{index}"}),
                )
                begin.wait(timeout=60)
                deadline = time.perf_counter() + duration
                step = index
                while time.perf_counter() < deadline:
                    method, path, body = requests[step % len(requests)]
                    step += 1
                    status, headers, _, latency = call(token, method, path, body)
                    samples[index].append(
                        (status, latency, "Retry-After" in headers)
                    )

            threads = [
                threading.Thread(target=client_loop, args=(index,))
                for index in range(clients)
            ]
            for worker in threads:
                worker.start()
            begin.wait(timeout=60)
            flood_started = time.perf_counter()
            for worker in threads:
                worker.join(timeout=120)
            flood_elapsed = time.perf_counter() - flood_started

            status, _, after, _ = call("bench-check", "POST", "/runs", run_body)
            assert status == 200, after
            identical = json.dumps(after["runs"], sort_keys=True) == reference
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    flat = [sample for per_client in samples for sample in per_client]
    ok_latencies = sorted(
        latency for status, latency, _ in flat if 200 <= status < 300
    )
    shed = [sample for sample in flat if sample[0] == 429]
    missing_retry_after = sum(1 for _, _, hinted in shed if not hinted)
    server_errors = sum(1 for status, _, _ in flat if status >= 500)
    conn_errors = sum(1 for status, _, _ in flat if status == 0)

    def quantile(values: list[float], q: float) -> float:
        if not values:
            return 0.0
        return values[min(len(values) - 1, int(q * len(values)))]

    return {
        "load_clients": clients,
        "load_requests_total": len(flat),
        "load_p50_ms": round(quantile(ok_latencies, 0.50) * 1000.0, 3),
        "load_p99_ms": round(quantile(ok_latencies, 0.99) * 1000.0, 3),
        "load_requests_per_second": round(len(flat) / flood_elapsed, 1)
        if flood_elapsed
        else 0.0,
        "load_shed_429_total": len(shed),
        "load_429_missing_retry_after": missing_retry_after,
        "load_5xx_total": server_errors,
        "load_conn_errors": conn_errors,
        "load_identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_smoke.json", help="output JSON path")
    parser.add_argument("--scale", type=float, default=0.1, help="workload scale")
    parser.add_argument("--workers", type=int, default=0, help="process-pool size")
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="fast",
        help="engine for the timed primary batch (compared against reference)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="timed repetitions per engine; the fastest is recorded "
        "(noise-robust: scheduler interference only ever slows a run down)",
    )
    parser.add_argument(
        "--distributed-workers",
        type=int,
        default=0,
        help="also run the batch through the sweep scheduler with 1..N "
        "worker subprocesses and record the scaling (0 = skip)",
    )
    parser.add_argument(
        "--load-clients",
        type=int,
        default=0,
        help="also flood a tenant-gated in-process server with N "
        "concurrent clients and record the admission-control latency "
        "quantiles and shed counts (0 = skip)",
    )
    parser.add_argument(
        "--history",
        default=None,
        help="append this run to a BENCH_history.jsonl file "
        "(schema-versioned; diffed by 'repro-tlb bench compare')",
    )
    parser.add_argument(
        "--git-sha",
        default=None,
        help="provenance stamp for the --history line (passed in, "
        "never computed here)",
    )
    parser.add_argument(
        "--timestamp",
        type=float,
        default=None,
        help="provenance epoch-seconds for the --history line "
        "(passed in, never computed here)",
    )
    args = parser.parse_args(argv)

    specs = [
        RunSpec.of(
            app,
            config.mechanism,
            scale=args.scale,
            engine=args.engine,
            **config.factory_params(),
        )
        for app in SMOKE_APPS
        for config in figure7_configs()
    ]
    cache = MissStreamCache()
    runner = Runner(cache=cache)
    profiler = PhaseProfiler()

    # Phase 1 (TLB filtering) is shared by every engine and cached;
    # time it separately so the engine comparison is replay-only.
    started = time.perf_counter()
    with profiler.phase("tlb_filter"):
        for spec in specs:
            runner.miss_stream_for(spec)
    filter_elapsed = time.perf_counter() - started
    filters = cache.misses

    # Interleave the repetitions so slow drifts in machine load hit
    # every engine alike; keep each engine's fastest wall-clock.
    reference_specs = [spec.derive(engine="reference") for spec in specs]
    batch_specs = [spec.derive(engine="batch") for spec in specs]
    reference_elapsed = elapsed = batch_elapsed = float("inf")
    reference = results = batch_results = None
    with profiler.phase("engines"):
        for _ in range(max(1, args.repeats)):
            started = time.perf_counter()
            reference = runner.run(reference_specs)
            reference_elapsed = min(reference_elapsed, time.perf_counter() - started)

            started = time.perf_counter()
            results = runner.run(specs)
            elapsed = min(elapsed, time.perf_counter() - started)

            # The one-pass batch engine: same specs, every stream group
            # replayed in a single fused loop (repro.sim.batchpath). Its
            # window is several times shorter than the others, so a burst
            # of scheduler noise distorts it proportionally more — take
            # three samples per repetition to keep the min estimate tight.
            for _ in range(3):
                started = time.perf_counter()
                batch_results = runner.run(batch_specs)
                batch_elapsed = min(batch_elapsed, time.perf_counter() - started)

    engines_identical = results.to_json() == reference.to_json()
    batch_identical = batch_results.to_json() == reference.to_json()
    speedup = reference_elapsed / elapsed if elapsed else 0.0
    batch_speedup = elapsed / batch_elapsed if batch_elapsed else 0.0

    # The parallel run is a Runner check, not an engine comparison: it
    # filters inside the worker processes, so its wall-clock includes
    # TLB filtering and is NOT comparable to the replay-only timings.
    parallel_elapsed = None
    parallel_identical = None
    if args.workers > 1:
        started = time.perf_counter()
        parallel = Runner(workers=args.workers, cache=MissStreamCache()).run(specs)
        parallel_elapsed = round(time.perf_counter() - started, 4)
        parallel_identical = parallel.to_json() == reference.to_json()

    # Store-backed phase: the same batch against a fresh persistent
    # store, twice. The cold pass reuses the warm miss-stream cache so
    # its wall-clock is replay + store write-back, directly comparable
    # to `elapsed` (the write-back overhead budget is <5%); the warm
    # pass must be 100% store hits — zero replays — and bit-identical.
    with profiler.phase("store"), tempfile.TemporaryDirectory(
        prefix="repro-store-smoke-"
    ) as store_root:
        # Fastest-of-repeats like the engine timings (a cold pass needs
        # a fresh store each time); warm timing reuses the last store.
        store_cold_elapsed = store_warm_elapsed = float("inf")
        for repeat in range(max(1, args.repeats)):
            store = ExperimentStore(Path(store_root) / f"run{repeat}")
            store_runner = Runner(cache=cache, store=store)
            started = time.perf_counter()
            store_cold = store_runner.run(specs)
            store_cold_elapsed = min(
                store_cold_elapsed, time.perf_counter() - started
            )
        before_warm = store.stats()
        started = time.perf_counter()
        store_warm = store_runner.run(specs)
        store_warm_elapsed = min(store_warm_elapsed, time.perf_counter() - started)
        after_warm = store.stats()
        store_identical = (
            store_cold.to_json() == results.to_json()
            and store_warm.to_json() == results.to_json()
        )
        store_warm_all_hits = (
            after_warm["result_hits"] - before_warm["result_hits"] == len(specs)
            and after_warm["result_misses"] == before_warm["result_misses"]
        )
        store_bytes = after_warm["total_bytes"]
    store_warm_speedup = (
        store_cold_elapsed / store_warm_elapsed if store_warm_elapsed else 0.0
    )
    store_cold_overhead = (
        (store_cold_elapsed - elapsed) / elapsed if elapsed else 0.0
    )

    # Streaming/checkpoint phase: one representative spec resumed from
    # a mid-stream checkpoint and chunked through the /streams API.
    with profiler.phase("streaming"):
        streaming = streaming_phase(
            runner,
            RunSpec.of("galgel", "DP", scale=args.scale, rows=256),
            args.repeats,
        )

    # Distributed phase: the same batch through the scheduler + a real
    # worker fleet, recording end-to-end throughput and worker scaling.
    distributed: dict = {
        "distributed_workers": None,
        "distributed_elapsed_seconds": None,
        "distributed_specs_per_second": None,
        "distributed_identical": None,
        "distributed_scaling": None,
        "distributed_scaling_speedup": None,
    }
    if args.distributed_workers > 0:
        with profiler.phase("distributed"):
            distributed = distributed_phase(
                specs, results.to_json(), args.distributed_workers
            )

    # Load phase: a tenant-gated server under a deliberate overload —
    # latency quantiles for the admitted, 429 + Retry-After for the
    # shed, and byte-identical results either way.
    load: dict = {
        "load_clients": None,
        "load_requests_total": None,
        "load_p50_ms": None,
        "load_p99_ms": None,
        "load_requests_per_second": None,
        "load_shed_429_total": None,
        "load_429_missing_retry_after": None,
        "load_5xx_total": None,
        "load_conn_errors": None,
        "load_identical": None,
    }
    if args.load_clients > 0:
        with profiler.phase("load"):
            load = load_phase(
                RunSpec.of("galgel", "DP", scale=args.scale, rows=256),
                args.load_clients,
            )

    # Observability phase: what did the telemetry layer itself cost,
    # and what service latencies did it observe along the way?
    with profiler.phase("obs"):
        obs_record = obs_phase(runner, specs, args.repeats)
    profile = profiler.report()

    # Track the paper's representative DP configuration explicitly
    # (r=256, direct-mapped) — pivot would silently keep whichever DP
    # bar comes last in the legend.
    dp_repr = results.filter(mechanism="DP,256,D")
    record = {
        "benchmark": "smoke",
        "python": platform.python_version(),
        "scale": args.scale,
        "workers": args.workers,
        "engine": args.engine,
        "specs": len(specs),
        "workloads": len(SMOKE_APPS),
        "tlb_filters": filters,
        "tlb_filter_seconds": round(filter_elapsed, 4),
        "elapsed_seconds": round(elapsed, 4),
        "elapsed_reference_seconds": round(reference_elapsed, 4),
        "elapsed_parallel_total_seconds": parallel_elapsed,
        "speedup_vs_reference": round(speedup, 2),
        "engines_identical": engines_identical,
        "parallel_identical": parallel_identical,
        "specs_per_second": round(len(specs) / elapsed, 2) if elapsed else 0.0,
        "batch_elapsed_seconds": round(batch_elapsed, 4),
        "batch_speedup_vs_fast": round(batch_speedup, 2),
        "batch_identical": batch_identical,
        "batch_specs_per_second": round(len(specs) / batch_elapsed, 2)
        if batch_elapsed
        else 0.0,
        "stream_cache_hits": cache.hits,
        "store_cold_seconds": round(store_cold_elapsed, 4),
        "store_warm_seconds": round(store_warm_elapsed, 4),
        "store_warm_speedup": round(store_warm_speedup, 2),
        "store_cold_overhead_fraction": round(store_cold_overhead, 4),
        "store_warm_all_hits": store_warm_all_hits,
        "store_identical": store_identical,
        "store_bytes": store_bytes,
        **streaming,
        **distributed,
        **load,
        **obs_record,
        "phase_seconds": {
            name: round(seconds, 4)
            for name, seconds in profile["phase_seconds"].items()
        },
        "profiled_seconds": round(profile["profiled_seconds"], 4),
        "total_seconds": round(profile["total_seconds"], 4),
        "peak_rss_bytes": profile["peak_rss_bytes"],
        "mean_dp256_accuracy": round(
            sum(run.prediction_accuracy for run in dp_repr) / len(dp_repr), 4
        ),
        "rows": [
            {
                "workload": run.workload,
                "mechanism": run.mechanism,
                "prediction_accuracy": round(run.prediction_accuracy, 4),
            }
            for run in results
        ],
    }
    out = Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    if args.history:
        from repro.obs import append_history

        append_history(
            args.history,
            {key: value for key, value in record.items() if key != "rows"},
            git_sha=args.git_sha,
            timestamp=args.timestamp,
        )
        print(f"[smoke] appended history record -> {args.history}")
    print(
        f"[smoke] {len(specs)} specs: engine={args.engine} {elapsed:.2f}s vs "
        f"reference {reference_elapsed:.2f}s -> {speedup:.2f}x speedup, "
        f"bit-identical={engines_identical} "
        f"({record['specs_per_second']} specs/s, {filters} TLB filters) -> {out}"
    )
    print(
        f"[smoke] batch: {batch_elapsed:.2f}s "
        f"({record['batch_specs_per_second']} specs/s, "
        f"{batch_speedup:.2f}x vs per-spec {args.engine}) "
        f"bit-identical={batch_identical}"
    )
    print(
        f"[smoke] store: cold {store_cold_elapsed:.2f}s "
        f"(+{store_cold_overhead * 100:.1f}% write-back overhead) -> warm "
        f"{store_warm_elapsed:.2f}s, {store_warm_speedup:.0f}x, "
        f"all-hits={store_warm_all_hits} bit-identical={store_identical}"
    )
    print(
        f"[smoke] streaming: resume-from-checkpoint "
        f"{streaming['warm_start_resumed_seconds']:.2f}s vs cold "
        f"{streaming['warm_start_cold_seconds']:.2f}s -> "
        f"{streaming['warm_start_speedup']}x warm-start speedup; "
        f"{streaming['stream_entries_per_second']} entries/s chunked "
        f"through /streams, bit-identical={streaming['streaming_identical']}"
    )
    print(
        f"[smoke] obs: {obs_record['obs_overhead_fraction'] * 100:.1f}% "
        f"instrumentation overhead (instrumented "
        f"{obs_record['obs_enabled_seconds']:.2f}s vs disabled "
        f"{obs_record['obs_disabled_seconds']:.2f}s); service p50 "
        f"{obs_record['service_p50_ms']:.1f}ms / p99 "
        f"{obs_record['service_p99_ms']:.1f}ms over "
        f"{obs_record['service_requests_observed']} requests; peak RSS "
        f"{record['peak_rss_bytes'] // (1024 * 1024)} MiB"
    )
    if load["load_clients"]:
        print(
            f"[smoke] load: {load['load_clients']} clients, "
            f"{load['load_requests_total']} requests "
            f"({load['load_requests_per_second']} req/s), p50 "
            f"{load['load_p50_ms']:.1f}ms / p99 {load['load_p99_ms']:.1f}ms, "
            f"{load['load_shed_429_total']} shed with 429 "
            f"({load['load_429_missing_retry_after']} missing Retry-After), "
            f"{load['load_5xx_total']} server errors, "
            f"{load['load_conn_errors']} connection errors, "
            f"bit-identical={load['load_identical']}"
        )
    if distributed["distributed_workers"]:
        print(
            f"[smoke] distributed: {distributed['distributed_workers']} workers "
            f"{distributed['distributed_elapsed_seconds']:.2f}s "
            f"({distributed['distributed_specs_per_second']} specs/s, "
            f"scaling {distributed['distributed_scaling']}, "
            f"{distributed['distributed_scaling_speedup']}x vs 1 worker) "
            f"bit-identical={distributed['distributed_identical']}"
        )
    if not engines_identical:
        print("[smoke] ERROR: engines diverged — fast path is not bit-identical")
        return 1
    if not batch_identical:
        print("[smoke] ERROR: batch engine diverged — one-pass replay is not bit-identical")
        return 1
    if distributed["distributed_identical"] is False:
        print("[smoke] ERROR: distributed sweep diverged from serial execution")
        return 1
    if parallel_identical is False:
        print("[smoke] ERROR: parallel batch diverged from serial (Runner bug)")
        return 1
    if not store_identical:
        print("[smoke] ERROR: store-backed batch diverged from direct execution")
        return 1
    if not store_warm_all_hits:
        print("[smoke] ERROR: warm store pass replayed specs (store miss)")
        return 1
    if store_cold_overhead > STORE_COLD_BUDGET:
        print(
            f"[smoke] ERROR: store cold write-back overhead "
            f"{store_cold_overhead * 100:.1f}% exceeds the "
            f"{STORE_COLD_BUDGET * 100:.0f}% budget"
        )
        return 1
    if not streaming["streaming_identical"]:
        print(
            "[smoke] ERROR: streamed/resumed replay diverged from one-shot"
        )
        return 1
    if load["load_5xx_total"]:
        print(
            f"[smoke] ERROR: {load['load_5xx_total']} 5xx responses under "
            f"load — overload must shed with 429, never crash"
        )
        return 1
    if load["load_429_missing_retry_after"]:
        print(
            f"[smoke] ERROR: {load['load_429_missing_retry_after']} shed "
            f"responses lacked a Retry-After header"
        )
        return 1
    if load["load_identical"] is False:
        print("[smoke] ERROR: results diverged under admission-control load")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
