#!/usr/bin/env python
"""Runner-based smoke benchmark: one small Figure-7-shaped batch.

Times a representative batch (a handful of workloads x the full
Figure 7 mechanism legend) through the unified :class:`repro.Runner`
and emits a machine-readable JSON record — the data point CI tracks to
watch the execution path's performance trajectory over time.

Run:  PYTHONPATH=src python benchmarks/smoke.py --out BENCH_smoke.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro import MissStreamCache, Runner, RunSpec
from repro.analysis.figures import figure7_configs

#: Small but behaviour-diverse: strided, pointer-walk, interleaved, noise.
SMOKE_APPS = ("galgel", "swim", "ammp", "eon")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_smoke.json", help="output JSON path")
    parser.add_argument("--scale", type=float, default=0.1, help="workload scale")
    parser.add_argument("--workers", type=int, default=0, help="process-pool size")
    args = parser.parse_args(argv)

    specs = [
        RunSpec.of(app, config.mechanism, scale=args.scale, **config.factory_params())
        for app in SMOKE_APPS
        for config in figure7_configs()
    ]
    cache = MissStreamCache()
    runner = Runner(workers=args.workers, cache=cache)

    started = time.perf_counter()
    results = runner.run(specs)
    elapsed = time.perf_counter() - started

    # Track the paper's representative DP configuration explicitly
    # (r=256, direct-mapped) — pivot would silently keep whichever DP
    # bar comes last in the legend.
    dp_repr = results.filter(mechanism="DP,256,D")
    record = {
        "benchmark": "smoke",
        "python": platform.python_version(),
        "scale": args.scale,
        "workers": args.workers,
        "specs": len(specs),
        "workloads": len(SMOKE_APPS),
        "elapsed_seconds": round(elapsed, 4),
        "specs_per_second": round(len(specs) / elapsed, 2),
        # In serial mode these prove the filter-once contract; in
        # parallel mode filtering happens inside the workers.
        "tlb_filters": cache.misses,
        "stream_cache_hits": cache.hits,
        "mean_dp256_accuracy": round(
            sum(run.prediction_accuracy for run in dp_repr) / len(dp_repr), 4
        ),
        "rows": [
            {
                "workload": run.workload,
                "mechanism": run.mechanism,
                "prediction_accuracy": round(run.prediction_accuracy, 4),
            }
            for run in results
        ],
    }
    out = Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"[smoke] {len(specs)} specs in {elapsed:.2f}s "
        f"({record['specs_per_second']} specs/s, {cache.misses} TLB filters) "
        f"-> {out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
