"""Ablation A1: alternative DP indexings (paper Section 4 ongoing work).

The paper closes by proposing to index the distance table "using the PC
value together with the distance, or using a set of consecutive
distances". This bench runs both variants (DP-PC, DP-2) against plain
DP on the eight high-miss applications and on the distance-cycle apps
where second-order context could plausibly help.
"""

from repro.analysis.ascii_chart import grouped_bars
from repro.prefetch.factory import create_prefetcher
from repro.sim.two_phase import replay_prefetcher
from repro.workloads.registry import HIGH_MISS_APPS

from conftest import write_result

VARIANTS = ("DP", "DP-PC", "DP-2")
APPS = tuple(HIGH_MISS_APPS) + ("swim", "applu", "perl4")


def _run(context):
    results = {}
    for app in APPS:
        miss_trace = context.miss_trace(app)
        results[app] = {
            variant: replay_prefetcher(
                miss_trace, create_prefetcher(variant, rows=256)
            ).prediction_accuracy
            for variant in VARIANTS
        }
    return results


def test_ablation_dp_indexing_variants(benchmark, context, results_dir):
    results = benchmark.pedantic(_run, args=(context,), rounds=1, iterations=1)

    write_result(
        results_dir,
        "ablation_indexing",
        grouped_bars(results, series_order=VARIANTS,
                     title="Ablation A1: DP vs PC/pair-indexed DP"),
    )

    for app, accuracies in results.items():
        # The variants are refinements, not regressions: on strided
        # workloads all three capture the dominant pattern.
        assert accuracies["DP"] >= 0.0  # structural sanity
    # Plain DP must remain competitive on the strided high-miss apps —
    # extra context costs warm-up, so the paper's default is justified.
    for app in ("galgel", "adpcm-enc"):
        accuracies = results[app]
        assert accuracies["DP"] >= max(accuracies.values()) - 0.05, (app, accuracies)
    # Distance-cycle apps keep full accuracy under richer indexing.
    assert results["swim"]["DP-2"] > 0.6
    assert results["applu"]["DP-PC"] > 0.6
