"""Regenerate Table 2: average and weighted-average prediction accuracy
over all 56 applications (s=2, r=256).

Paper values: DP 0.43/0.82, RP 0.29/0.86, ASP 0.28/0.73, MP 0.11/0.04.
The shape claims checked here (via ``check_table2_shape``): DP leads the
plain average; RP edges DP on the weighted average (long history helps
a select set of very-high-miss apps) with DP close behind; MP's
weighted average collapses. Also the paper's headline count: DP best or
within 10% of best in a substantial majority of applications.
"""

from repro.analysis.tables import check_table2_shape, compare_table2

from conftest import write_result


def test_table2_accuracy_averages(benchmark, context, results_dir):
    summary = benchmark.pedantic(context.run_table2, rounds=1, iterations=1)

    rendered = compare_table2(summary) + "\n\n" + context.render_table2(summary)
    write_result(results_dir, "table2", rendered)

    failures = check_table2_shape(summary)
    assert failures == [], failures

    # The paper's headline: DP best or within 10% of the best for the
    # (large) majority of apps where any mechanism works at all.
    assert summary["DP"]["within10"] >= 30
    assert summary["DP"]["within10"] > summary["RP"]["within10"]
    assert summary["DP"]["within10"] > summary["ASP"]["within10"]
    assert summary["DP"]["within10"] > summary["MP"]["within10"]

    # Weighted average: DP within a whisker of RP, both far above MP.
    assert summary["RP"]["weighted"] > 0.7
    assert summary["DP"]["weighted"] > 0.7
    assert summary["MP"]["weighted"] < 0.15
