"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
writes the rendered output to ``benchmarks/results/<name>.txt`` so the
EXPERIMENTS.md paper-vs-measured record can cite concrete runs.

The workload scale defaults to 0.25 of the full traces (enough for
stable accuracies; the shapes are scale-invariant) and can be raised
with ``REPRO_BENCH_SCALE=1.0``.

Benchmarks are *not* part of tier-1 collection (``pyproject.toml``
pins ``testpaths = tests``); run them explicitly with
``PYTHONPATH=src python -m pytest benchmarks -q``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentContext

RESULTS_DIR = Path(__file__).parent / "results"

#: Workload volume for the whole benchmark session.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """One experiment context per session: miss traces filter once."""
    return ExperimentContext(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered experiment output and echo a short header."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}] written to {path}")
    print(text)
