"""Regenerate Figure 7: prediction accuracy for all 26 SPEC CPU2000 apps.

Bars: RP; MP at r=1024/512/256 across associativities; DP direct-mapped
at r=1024..32; ASP at r=1024..32 — the paper's exact legend. The
assertions check the per-group orderings the paper narrates in Section
3.2 (see DESIGN.md §4 for the expected-shape list).
"""

from conftest import write_result


def test_figure7_spec2000(benchmark, context, results_dir):
    results = benchmark.pedantic(context.run_figure7, rounds=1, iterations=1)

    write_result(
        results_dir,
        "figure7",
        context.render_figure(results, "Figure 7: SPEC CPU2000 prediction accuracy"),
    )

    assert len(results) == 26

    # galgel-class: all schemes good; MP collapses at small r but
    # recovers at r=1024.
    galgel = results["galgel"]
    assert galgel["RP"] > 0.9
    assert galgel["DP,256,D"] > 0.9
    assert galgel["ASP,256"] > 0.9
    assert galgel["MP,256,D"] < 0.1
    assert galgel["MP,1024,D"] > 0.8

    # History class: RP leads, ASP fails.
    for app in ("gcc", "crafty", "ammp", "lucas", "sixtrack"):
        acc = results[app]
        best = max(acc.values())
        assert acc["RP"] >= best - 0.05, (app, acc)
        assert acc["ASP,256"] < 0.45, (app, acc)

    # Alternation class: MP (big enough) beats RP.
    for app in ("parser", "vortex"):
        acc = results[app]
        assert acc["MP,1024,D"] > acc["RP"], (app, acc)

    # One-touch class: ASP and DP good, history schemes near zero.
    for app in ("gzip", "perlbmk", "equake"):
        acc = results[app]
        assert acc["ASP,256"] > 0.5, (app, acc)
        assert acc["DP,256,D"] > 0.5, (app, acc)
        assert acc["RP"] < 0.1, (app, acc)

    # Distance class: DP far ahead of everything else.
    for app in ("wupwise", "swim", "mgrid", "applu"):
        acc = results[app]
        others = max(acc["RP"], acc["MP,1024,D"], acc["ASP,1024"])
        assert acc["DP,256,D"] > others + 0.3, (app, acc)

    # Negative control: nobody predicts fma3d.
    assert max(results["fma3d"].values()) < 0.1

    # DP is table-size robust: even r=32 stays useful on galgel.
    assert results["galgel"]["DP,32,D"] > 0.9
