"""Regenerate the d-TLB characterization behind the study's inputs.

The paper takes its per-application miss rates from the authors'
companion characterization ([18], SIGMETRICS 2002): the ``m_i`` weights
of Table 2 and the 8-app selection of Figure 9/Table 3. This bench
produces the equivalent table for all 56 models over the 64/128/256 ×
2/4/FA TLB grid and checks its structure.
"""

from repro.analysis.characterization import (
    associativity_anomalies,
    check_monotonicity,
    miss_rate_table,
    render_miss_rates,
)
from repro.analysis.tables import PAPER_HIGH_MISS_RATES
from repro.workloads.registry import all_app_names

from conftest import BENCH_SCALE, write_result


def _run():
    return miss_rate_table(all_app_names(), scale=BENCH_SCALE)


def test_characterization_miss_rates(benchmark, context, results_dir):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)

    anomalies = associativity_anomalies(table)
    body = render_miss_rates(table)
    if anomalies:
        body += "\n\nassociativity anomalies (legitimate LRU behaviour):\n"
        body += "\n".join(f"  {a}" for a in anomalies)
    write_result(results_dir, "characterization", body)

    # Guaranteed invariant: FA miss rate monotone in TLB size.
    assert check_monotonicity(table) == []

    # The paper's top-8 reproduce (values and order) at 128e-FA.
    reference = {app: rates["128e-FA"] for app, rates in table.items()}
    ranked = sorted(reference, key=reference.get, reverse=True)[:8]
    assert set(ranked) == set(PAPER_HIGH_MISS_RATES), ranked
    for app, paper_rate in PAPER_HIGH_MISS_RATES.items():
        assert abs(reference[app] - paper_rate) < 0.02, (
            app, reference[app], paper_rate,
        )

    # TLB size matters most for thrash-class apps: galgel's rate is
    # insensitive (cyclic sweep larger than every configuration) while
    # low-miss apps collapse further with 256 entries.
    assert abs(table["galgel"]["64e-FA"] - table["galgel"]["256e-FA"]) < 0.01
    assert table["eon"]["256e-FA"] <= table["eon"]["64e-FA"]
