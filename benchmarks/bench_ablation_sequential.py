"""Ablation A4: sequential-prefetching variations and the RP variant.

Two claims the paper makes in passing are checked empirically here:

1. Section 2.1: among sequential schemes, "simulations have shown only
   slight differences" — so tagged SP stands in for all of them, and
   ASP subsumes SP. We run tagged SP, adaptive SP (Dahlgren–Stenström)
   and ASP on sequential-friendly workloads.
2. Section 2.4/2.6: RP has a variation that prefetches three entries.
   We compare RP against RP3 on the history-friendly apps.
"""

from repro.analysis.ascii_chart import grouped_bars
from repro.prefetch.factory import create_prefetcher
from repro.sim.two_phase import replay_prefetcher

from conftest import write_result

SEQ_APPS = ("gzip", "perlbmk", "adpcm-enc", "galgel", "mipmap-mesa")
HISTORY_APPS = ("ammp", "gcc", "crafty", "mcf")


def _run_sequential(context):
    results = {}
    for app in SEQ_APPS:
        miss_trace = context.miss_trace(app)
        results[app] = {
            label: replay_prefetcher(
                miss_trace, create_prefetcher(name, rows=256)
            ).prediction_accuracy
            for label, name in (
                ("SP", "SP"),
                ("SP-adaptive", "SP-adaptive"),
                ("ASP", "ASP"),
            )
        }
    return results


def _run_rp_variant(context):
    results = {}
    for app in HISTORY_APPS:
        miss_trace = context.miss_trace(app)
        results[app] = {
            "RP": replay_prefetcher(
                miss_trace, create_prefetcher("RP")
            ).prediction_accuracy,
            "RP3": replay_prefetcher(
                miss_trace, create_prefetcher("RP", variant_three=True)
            ).prediction_accuracy,
        }
    return results


def test_ablation_sequential_variants(benchmark, context, results_dir):
    results = benchmark.pedantic(_run_sequential, args=(context,), rounds=1, iterations=1)

    write_result(
        results_dir,
        "ablation_sequential",
        grouped_bars(results, series_order=("SP", "SP-adaptive", "ASP"),
                     title="Ablation A4a: sequential prefetching variants"),
    )

    for app, accuracies in results.items():
        # On unit-stride workloads the three schemes converge — the
        # paper's justification for evaluating only tagged SP/ASP.
        if app in ("gzip", "adpcm-enc", "galgel"):
            spread = max(accuracies.values()) - min(accuracies.values())
            assert spread < 0.35, (app, accuracies)
    # ASP subsumes SP on non-unit strides (mipmap has stride-4 phases).
    assert results["mipmap-mesa"]["ASP"] >= results["mipmap-mesa"]["SP"] - 0.05


def test_ablation_rp_three_entry_variant(benchmark, context, results_dir):
    results = benchmark.pedantic(_run_rp_variant, args=(context,), rounds=1, iterations=1)

    write_result(
        results_dir,
        "ablation_rp3",
        grouped_bars(results, series_order=("RP", "RP3"),
                     title="Ablation A4b: RP vs three-entry RP"),
    )

    for app, accuracies in results.items():
        # The extra entry is a small perturbation either way — it adds
        # coverage but also buffer pressure.
        assert abs(accuracies["RP3"] - accuracies["RP"]) < 0.2, (app, accuracies)
