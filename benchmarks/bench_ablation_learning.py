"""Ablation A6: warm-up — how many misses before a mechanism works.

Quantifies the paper's qualitative Section 2.5 argument: history-based
schemes (MP, RP) "take a while to learn a pattern, since only
repetitions in addresses can effect a prefetch (not first time
references)", while DP predicts from the second or third miss. We
replay galgel (repeated sweeps: everyone eventually learns) and gzip
(one-touch: history never learns) in windows and report the misses each
mechanism needs to reach half its steady-state accuracy.
"""

from repro.analysis.ascii_chart import format_table
from repro.analysis.learning import (
    accuracy_timeline,
    final_accuracy,
    misses_to_reach,
)
from repro.prefetch.factory import create_prefetcher

from conftest import write_result

MECHANISMS = ("DP", "RP", "MP", "ASP")
APPS = ("galgel", "gzip", "facerec")
WINDOW = 200


def _run(context):
    results = {}
    for app in APPS:
        miss_trace = context.miss_trace(app)
        per_mechanism = {}
        for mechanism in MECHANISMS:
            rows = 1024 if mechanism == "MP" else 256  # give MP its best shot
            points = accuracy_timeline(
                miss_trace,
                create_prefetcher(mechanism, rows=rows),
                window=WINDOW,
            )
            per_mechanism[mechanism] = {
                "warm": misses_to_reach(points),
                "final": final_accuracy(points),
                "first_window": points[0].accuracy if points else 0.0,
            }
        results[app] = per_mechanism
    return results


def test_ablation_learning_curves(benchmark, context, results_dir):
    results = benchmark.pedantic(_run, args=(context,), rounds=1, iterations=1)

    rows = []
    for app, per_mechanism in results.items():
        for mechanism, data in per_mechanism.items():
            rows.append(
                [app, mechanism,
                 "-" if data["warm"] is None else data["warm"],
                 data["first_window"], data["final"]]
            )
    write_result(
        results_dir,
        "ablation_learning",
        format_table(
            ["App", "Mechanism", "Misses to 50% of final",
             "First-window acc", "Final acc"],
            rows,
            float_format="{:.3f}",
        ),
    )

    # galgel: DP is already accurate in the very first window; RP needs
    # a full sweep of evictions (700 misses) before it can predict.
    galgel = results["galgel"]
    assert galgel["DP"]["first_window"] > 0.9
    assert galgel["RP"]["first_window"] < 0.2
    assert galgel["DP"]["warm"] < galgel["RP"]["warm"]

    # gzip (one-touch): history schemes never reach a working state.
    gzip_result = results["gzip"]
    assert gzip_result["DP"]["final"] > 0.5
    assert gzip_result["RP"]["final"] < 0.05
    assert gzip_result["MP"]["final"] < 0.05
