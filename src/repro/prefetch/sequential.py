"""Tagged Sequential Prefetching (SP) — the paper's Section 2.1.

On a TLB miss that also misses the prefetch buffer, the translation is
demand-fetched and a prefetch is initiated for the *next* virtual page
(stride +1). On a prefetch-buffer hit — the first (and, since entries
move to the TLB on their first hit, only) hit to a prefetched entry —
another next-page prefetch is initiated in the background. Vanderwiel &
Lilja's survey [29] found the tagged variant the most effective of the
sequential schemes, so that is the variant implemented here, as in the
paper.

Because a buffered entry can be hit at most once in this organization,
both trigger conditions ("every demand fetch" and "every first hit to a
prefetched unit") fire on every TLB miss, so SP needs no state at all —
the degenerate simplicity the paper exploits when noting that ASP
subsumes SP.
"""

from __future__ import annotations

from repro.prefetch.base import HardwareDescription, Prefetcher


class SequentialPrefetcher(Prefetcher):
    """Tagged next-page prefetching (stride fixed at +1).

    Args:
        degree: pages ahead to prefetch (1 in the paper; >1 gives the
            classic "prefetch degree" generalization used by the
            adaptive variant).
    """

    name = "SP"

    def __init__(self, degree: int = 1) -> None:
        super().__init__()
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = degree

    def on_miss(self, pc: int, page: int, evicted: int, pb_hit: bool) -> list[int]:
        prefetches = [page + offset for offset in range(1, self.degree + 1)]
        return self.account(prefetches)

    @property
    def label(self) -> str:
        return self.name if self.degree == 1 else f"{self.name},k={self.degree}"

    def describe_hardware(self) -> HardwareDescription:
        return HardwareDescription(
            name=self.name,
            rows="0 (stateless)",
            row_contents="-",
            location="On-Chip",
            index_source="-",
            memory_ops_per_miss=0,
            max_prefetches=str(self.degree),
        )
