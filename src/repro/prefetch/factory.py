"""Factory for building prefetchers by name with uniform parameters.

Benchmarks, sweeps and the CLI all construct mechanisms through
:func:`create_prefetcher`, so a configuration is expressible as plain
data (``("DP", dict(rows=256, ways=1, slots=2))``). Table/slot
parameters that a mechanism does not have (e.g. ``rows`` for SP) are
accepted and ignored, which keeps sweep code free of per-mechanism
special cases — exactly how the paper sweeps ``r`` "uniformly" across
ASP, MP and DP.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import UnknownPrefetcherError
from repro.prefetch.adaptive_sequential import AdaptiveSequentialPrefetcher
from repro.prefetch.base import Prefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.null import NullPrefetcher
from repro.prefetch.recency import RecencyPrefetcher
from repro.prefetch.sequential import SequentialPrefetcher
from repro.prefetch.stride import ArbitraryStridePrefetcher

_BuilderT = Callable[..., Prefetcher]


def _build_none(**_: object) -> Prefetcher:
    return NullPrefetcher()


def _build_sp(degree: int = 1, **_: object) -> Prefetcher:
    return SequentialPrefetcher(degree=degree)


def _build_adaptive_sp(max_degree: int = 8, window: int = 64, **_: object) -> Prefetcher:
    return AdaptiveSequentialPrefetcher(max_degree=max_degree, window=window)


def _build_asp(rows: int = 256, ways: int = 1, **_: object) -> Prefetcher:
    return ArbitraryStridePrefetcher(rows=rows, ways=ways)


def _build_mp(rows: int = 256, ways: int = 1, slots: int = 2, **_: object) -> Prefetcher:
    return MarkovPrefetcher(rows=rows, ways=ways, slots=slots)


def _build_rp(variant_three: bool = False, **_: object) -> Prefetcher:
    return RecencyPrefetcher(variant_three=variant_three)


# The DP family lives in repro.core, which itself imports
# repro.prefetch.base; importing it lazily here keeps the package
# import graph acyclic regardless of which module is imported first.


def _build_dp(rows: int = 256, ways: int = 1, slots: int = 2, **_: object) -> Prefetcher:
    from repro.core.distance import DistancePrefetcher

    return DistancePrefetcher(rows=rows, ways=ways, slots=slots)


def _build_dp_pc(rows: int = 256, ways: int = 1, slots: int = 2, **_: object) -> Prefetcher:
    from repro.core.pc_distance import PCDistancePrefetcher

    return PCDistancePrefetcher(rows=rows, ways=ways, slots=slots)


def _build_dp_pair(rows: int = 256, ways: int = 1, slots: int = 2, **_: object) -> Prefetcher:
    from repro.core.distance_pair import DistancePairPrefetcher

    return DistancePairPrefetcher(rows=rows, ways=ways, slots=slots)


_REGISTRY: dict[str, _BuilderT] = {
    "none": _build_none,
    "SP": _build_sp,
    "SP-adaptive": _build_adaptive_sp,
    "ASP": _build_asp,
    "MP": _build_mp,
    "RP": _build_rp,
    "DP": _build_dp,
    "DP-PC": _build_dp_pc,
    "DP-2": _build_dp_pair,
}

#: Names accepted by :func:`create_prefetcher`.
PREFETCHER_NAMES: tuple[str, ...] = tuple(_REGISTRY)


def create_prefetcher(name: str, **params: object) -> Prefetcher:
    """Build the mechanism called ``name`` with ``params``.

    Unknown parameter keys for that mechanism are ignored (see module
    docstring); an unknown *name* raises
    :class:`~repro.errors.UnknownPrefetcherError`.
    """
    builder = _REGISTRY.get(name)
    if builder is None:
        raise UnknownPrefetcherError(name, list(_REGISTRY))
    return builder(**params)


def default_prefetcher_suite(
    rows: int = 256, slots: int = 2
) -> list[Prefetcher]:
    """The four mechanisms the paper compares head-to-head (Table 2).

    Returns RP, MP, DP and ASP at the paper's representative
    configuration (``s = 2`` and ``r = 256``, direct mapped).
    """
    from repro.core.distance import DistancePrefetcher

    return [
        RecencyPrefetcher(),
        MarkovPrefetcher(rows=rows, ways=1, slots=slots),
        DistancePrefetcher(rows=rows, ways=1, slots=slots),
        ArbitraryStridePrefetcher(rows=rows, ways=1),
    ]
