"""Arbitrary Stride Prefetching (ASP) — the paper's Section 2.2.

The Chen & Baer reference prediction table (RPT) [8], adapted to the
TLB miss stream: a PC-indexed table whose rows hold the page referenced
the last time this instruction missed, the stride between its last two
misses, and a two-bit state. A prefetch of ``page + stride`` is issued
only from the ``steady`` state — i.e. "when there is no change in the
stride for more than two references by that instruction", the paper's
safeguard against spurious stride changes.

State transitions (Chen & Baer, Figure 3 of [8]):

====================  ======================  ==========================
current state         stride unchanged         stride changed
====================  ======================  ==========================
``initial``           -> ``steady``            -> ``transient`` (update)
``transient``         -> ``steady``            -> ``no-pred``  (update)
``steady``            -> ``steady``            -> ``initial``  (keep)
``no-pred``           -> ``transient``         -> ``no-pred``  (update)
====================  ======================  ==========================

ASP rows have exactly one slot, so at most one prefetch per miss.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.prediction_table import PredictionTable
from repro.prefetch.base import HardwareDescription, Prefetcher


class StrideState(enum.IntEnum):
    """Chen & Baer RPT entry states."""

    INITIAL = 0
    TRANSIENT = 1
    STEADY = 2
    NO_PREDICTION = 3


@dataclass(slots=True)
class StrideEntry:
    """One RPT row: last page, running stride, confidence state."""

    prev_page: int
    stride: int = 0
    state: StrideState = StrideState.INITIAL


class ArbitraryStridePrefetcher(Prefetcher):
    """PC-indexed stride prefetching over the TLB miss stream.

    Args:
        rows: RPT rows ``r`` (the paper sweeps 32..1024).
        ways: table associativity (1 = direct mapped, 0 = fully assoc.).
    """

    name = "ASP"

    def __init__(self, rows: int = 256, ways: int = 1) -> None:
        super().__init__()
        self.table: PredictionTable[StrideEntry] = PredictionTable(rows, ways)

    def on_miss(self, pc: int, page: int, evicted: int, pb_hit: bool) -> list[int]:
        entry = self.table.lookup(pc)
        if entry is None:
            self.table.insert(pc, StrideEntry(prev_page=page))
            return self.account([])

        new_stride = page - entry.prev_page
        unchanged = new_stride == entry.stride
        state = entry.state
        if state is StrideState.INITIAL:
            if unchanged:
                entry.state = StrideState.STEADY
            else:
                entry.state = StrideState.TRANSIENT
                entry.stride = new_stride
        elif state is StrideState.TRANSIENT:
            if unchanged:
                entry.state = StrideState.STEADY
            else:
                entry.state = StrideState.NO_PREDICTION
                entry.stride = new_stride
        elif state is StrideState.STEADY:
            if not unchanged:
                entry.state = StrideState.INITIAL
        else:  # NO_PREDICTION
            if unchanged:
                entry.state = StrideState.TRANSIENT
            else:
                entry.stride = new_stride
        entry.prev_page = page

        prefetches: list[int] = []
        if entry.state is StrideState.STEADY and entry.stride:
            target = page + entry.stride
            if target >= 0:
                prefetches.append(target)
        return self.account(prefetches)

    def flush(self) -> None:
        self.table.flush()

    def has_prediction_state(self) -> bool:
        return len(self.table) > 0

    @property
    def label(self) -> str:
        return f"{self.name},{self.table.rows}"

    def describe_hardware(self) -> HardwareDescription:
        return HardwareDescription(
            name=self.name,
            rows="r",
            row_contents="PC Tag, Page #, Stride and State",
            location="On-Chip",
            index_source="PC",
            memory_ops_per_miss=0,
            max_prefetches="1",
        )
