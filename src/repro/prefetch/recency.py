"""Recency Prefetching (RP) — the paper's Section 2.4.

Saulsbury, Dahlgren & Stenström's TLB preloading mechanism [26]: pages
referenced close together in the past tend to be referenced close
together again. Evicted TLB entries are threaded onto an LRU stack
whose links (``next``/``prev``) live *inside the page table*; on a TLB
miss to page V:

1. V's stack neighbours are read — they were evicted around the same
   time V was last evicted — and prefetched into the buffer.
2. V is unlinked from the stack (2 pointer writes).
3. The TLB entry evicted by this fill is pushed on top (2 pointer
   writes).

The four pointer writes are memory-system operations; the cycle model
charges them at full memory cost, which is the traffic overhead that
lets DP beat RP in execution cycles despite RP's sometimes-higher
accuracy (the paper's Table 3).

A variant mentioned in [26] prefetches three entries (one extra stack
step past each neighbour is approximated here by also taking the
``next`` link of the below-neighbour); enable with ``variant_three=True``.

RP keeps no on-chip prediction state, so its effective history capacity
is the whole page table — the "unfair" storage advantage the paper
repeatedly weighs against its traffic.
"""

from __future__ import annotations

from repro.prefetch.base import NO_EVICTION, HardwareDescription, Prefetcher
from repro.tlb.page_table import PageTable, RecencyStack


class RecencyPrefetcher(Prefetcher):
    """LRU-stack ("recency") TLB preloading with in-memory state.

    Args:
        page_table: optionally share a page table with the wider
            simulation; a private one is created by default.
        variant_three: prefetch a third entry as in the [26] variation.
    """

    name = "RP"

    def __init__(
        self, page_table: PageTable | None = None, variant_three: bool = False
    ) -> None:
        super().__init__()
        self.page_table = page_table if page_table is not None else PageTable()
        self.stack = RecencyStack(self.page_table)
        self.variant_three = variant_three

    def on_miss(self, pc: int, page: int, evicted: int, pb_hit: bool) -> list[int]:
        prev_neighbor, next_neighbor = self.stack.neighbors(page)

        overhead = 0
        if self.stack.remove(page):
            overhead += 2
        if evicted != NO_EVICTION:
            self.stack.push_top(evicted)
            overhead += 2

        prefetches = [p for p in (prev_neighbor, next_neighbor) if p is not None]
        if self.variant_three and next_neighbor is not None:
            _, below = self.stack.neighbors(next_neighbor)
            if below is not None and below != page:
                prefetches.append(below)
        return self.account(prefetches, overhead_ops=overhead)

    def flush(self) -> None:
        """No on-chip state: the recency stack lives in the page table."""

    def has_prediction_state(self) -> bool:
        """True once any PTE exists: the stack state survives flushes."""
        return len(self.page_table) > 0

    @property
    def label(self) -> str:
        return f"{self.name}3" if self.variant_three else self.name

    def describe_hardware(self) -> HardwareDescription:
        return HardwareDescription(
            name=self.name,
            rows="No. of PTEs",
            row_contents="next, prev pointers",
            location="In Memory",
            index_source="Page #",
            memory_ops_per_miss=4,
            max_prefetches="3" if self.variant_three else "2",
        )
