"""Common interface of all TLB prefetch mechanisms.

Every mechanism observes exactly one event: a TLB miss. The paper
(Section 2) deliberately places all prefetch logic after the TLB, so a
mechanism sees ``(pc, missed page, evicted page)`` per miss plus whether
the miss was satisfied by the prefetch buffer, and answers with the list
of pages to prefetch. The simulation engine owns the prefetch buffer;
mechanisms never touch it directly.

Per-miss *overhead* memory operations (pointer maintenance in RP) are
reported through :attr:`Prefetcher.last_overhead_ops` so the functional
engine stays allocation-free in its hot loop while the cycle engine can
charge the traffic.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

#: Sentinel in the ``evicted`` argument meaning "nothing was evicted".
NO_EVICTION = -1


@dataclass(frozen=True)
class HardwareDescription:
    """Static hardware properties of a mechanism — the paper's Table 1.

    Attributes:
        name: short mechanism name (``ASP``, ``MP``, ``RP``, ``DP``...).
        rows: description of row count (``r`` or "No. of PTEs").
        row_contents: what one row stores.
        location: ``On-Chip`` or ``In Memory``.
        index_source: what the table is indexed by.
        memory_ops_per_miss: non-prefetch memory operations per miss.
        max_prefetches: most prefetches a single miss can trigger.
    """

    name: str
    rows: str
    row_contents: str
    location: str
    index_source: str
    memory_ops_per_miss: int
    max_prefetches: str


class Prefetcher(abc.ABC):
    """Abstract TLB prefetch mechanism driven by the miss stream.

    Subclasses implement :meth:`on_miss` and :meth:`describe_hardware`,
    and call ``super().__init__()``.

    Attributes:
        last_overhead_ops: overhead (non-prefetch) memory operations the
            most recent :meth:`on_miss` performed; 0 for all on-chip
            mechanisms, up to 4 for RP.
        prefetches_issued: cumulative pages returned for prefetch.
        overhead_ops_total: cumulative overhead memory operations.
    """

    #: Short mechanism name; subclasses override.
    name: str = "?"

    def __init__(self) -> None:
        self.last_overhead_ops = 0
        self.prefetches_issued = 0
        self.overhead_ops_total = 0

    @abc.abstractmethod
    def on_miss(self, pc: int, page: int, evicted: int, pb_hit: bool) -> list[int]:
        """React to a TLB miss; return the pages to prefetch.

        Args:
            pc: program counter of the missing reference.
            page: virtual page that missed in the TLB.
            evicted: page the TLB evicted for this fill, or
                :data:`NO_EVICTION`.
            pb_hit: True when the miss was satisfied from the prefetch
                buffer (a correct earlier prediction) — the trigger for
                tagged-sequential re-prefetch and for adaptivity.

        Returns:
            Pages to bring into the prefetch buffer, highest priority
            first. The engine truncates to the mechanism's slot bound.
        """

    @abc.abstractmethod
    def describe_hardware(self) -> HardwareDescription:
        """Static hardware properties for the Table 1 comparison."""

    def account(self, prefetches: list[int], overhead_ops: int = 0) -> list[int]:
        """Record issue statistics; subclasses call this before returning."""
        self.last_overhead_ops = overhead_ops
        self.overhead_ops_total += overhead_ops
        self.prefetches_issued += len(prefetches)
        return prefetches

    def flush(self) -> None:
        """Drop on-chip prediction state (context switch). Default no-op."""

    def has_prediction_state(self) -> bool:
        """Whether the instance has learned anything since construction.

        Stateful subclasses override this to report *any* trained
        state — tables, history registers, adaptation counters — not
        just statistics. The fast replay engine
        (:mod:`repro.sim.fastpath`) rebuilds mechanism state from
        scratch, so it only accepts instances where this is False.
        """
        return False

    def reset_stats(self) -> None:
        """Zero cumulative counters without touching prediction state."""
        self.last_overhead_ops = 0
        self.prefetches_issued = 0
        self.overhead_ops_total = 0

    @property
    def label(self) -> str:
        """Display label; subclasses append their configuration."""
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.label})"
