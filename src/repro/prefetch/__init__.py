"""TLB prefetching mechanisms (the paper's Section 2).

Baselines adapted from the cache-prefetching literature:

- :mod:`repro.prefetch.sequential` — tagged Sequential Prefetching (SP).
- :mod:`repro.prefetch.stride` — Arbitrary Stride Prefetching (ASP,
  Chen & Baer's PC-indexed reference prediction table).
- :mod:`repro.prefetch.markov` — Markov Prefetching (MP).
- :mod:`repro.prefetch.adaptive_sequential` — Dahlgren–Stenström
  adaptive sequential prefetching (an SP variation the paper cites).

The TLB-specific prior work:

- :mod:`repro.prefetch.recency` — Recency Prefetching (RP).

The paper's contribution, Distance Prefetching (DP), lives in
:mod:`repro.core.distance`; the factory here knows how to build it.
"""

from repro.prefetch.adaptive_sequential import AdaptiveSequentialPrefetcher
from repro.prefetch.base import HardwareDescription, Prefetcher
from repro.prefetch.factory import (
    PREFETCHER_NAMES,
    create_prefetcher,
    default_prefetcher_suite,
)
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.null import NullPrefetcher
from repro.prefetch.recency import RecencyPrefetcher
from repro.prefetch.sequential import SequentialPrefetcher
from repro.prefetch.stride import ArbitraryStridePrefetcher

__all__ = [
    "AdaptiveSequentialPrefetcher",
    "ArbitraryStridePrefetcher",
    "HardwareDescription",
    "MarkovPrefetcher",
    "NullPrefetcher",
    "PREFETCHER_NAMES",
    "Prefetcher",
    "RecencyPrefetcher",
    "SequentialPrefetcher",
    "create_prefetcher",
    "default_prefetcher_suite",
]
