"""The no-prefetching baseline.

Execution-cycle results in the paper (Table 3) are normalized to a run
with no prefetching; this mechanism makes that run expressible through
the same engine code path.
"""

from __future__ import annotations

from repro.prefetch.base import HardwareDescription, Prefetcher


class NullPrefetcher(Prefetcher):
    """Never prefetches anything."""

    name = "none"

    def on_miss(self, pc: int, page: int, evicted: int, pb_hit: bool) -> list[int]:
        return []

    def describe_hardware(self) -> HardwareDescription:
        return HardwareDescription(
            name=self.name,
            rows="0",
            row_contents="-",
            location="-",
            index_source="-",
            memory_ops_per_miss=0,
            max_prefetches="0",
        )
