"""Adaptive sequential prefetching (Dahlgren, Dubois & Stenström [12]).

The paper's Section 2.1 cites this SP variation — dynamically varying
the number of sequential units prefetched based on the observed success
rate — and notes that simulations showed only slight differences from
tagged SP, which is why the paper evaluates only the tagged version.
This implementation lets that claim be *checked* rather than assumed
(see ``benchmarks/bench_ablation_sequential.py``).

The degree adapts per observation window: if more than ``raise_above``
of the window's TLB misses were satisfied by the prefetch buffer the
degree is doubled (capped), and if fewer than ``lower_below`` were, it
is halved (floored at 1), following the counter scheme of [12] at page
granularity.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.prefetch.base import HardwareDescription, Prefetcher


class AdaptiveSequentialPrefetcher(Prefetcher):
    """Sequential prefetching whose degree tracks its own success rate.

    Args:
        max_degree: upper bound on pages prefetched per miss.
        window: misses per adaptation interval.
        raise_above: buffer hit-rate above which the degree increases.
        lower_below: buffer hit-rate below which the degree decreases.
    """

    name = "ASP-seq"

    def __init__(
        self,
        max_degree: int = 8,
        window: int = 64,
        raise_above: float = 0.60,
        lower_below: float = 0.20,
    ) -> None:
        super().__init__()
        if max_degree < 1:
            raise ConfigurationError(f"max_degree must be >= 1, got {max_degree}")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if not 0.0 <= lower_below <= raise_above <= 1.0:
            raise ConfigurationError(
                "thresholds must satisfy 0 <= lower_below <= raise_above <= 1"
            )
        self.max_degree = max_degree
        self.window = window
        self.raise_above = raise_above
        self.lower_below = lower_below
        self.degree = 1
        self._window_misses = 0
        self._window_hits = 0

    def _adapt(self) -> None:
        hit_rate = self._window_hits / self._window_misses
        if hit_rate > self.raise_above:
            self.degree = min(self.degree * 2, self.max_degree)
        elif hit_rate < self.lower_below:
            self.degree = max(self.degree // 2, 1)
        self._window_misses = 0
        self._window_hits = 0

    def on_miss(self, pc: int, page: int, evicted: int, pb_hit: bool) -> list[int]:
        self._window_misses += 1
        self._window_hits += int(pb_hit)
        if self._window_misses >= self.window:
            self._adapt()
        prefetches = [page + offset for offset in range(1, self.degree + 1)]
        return self.account(prefetches)

    def flush(self) -> None:
        self.degree = 1
        self._window_misses = 0
        self._window_hits = 0

    def has_prediction_state(self) -> bool:
        return self.degree != 1 or self._window_misses > 0

    @property
    def label(self) -> str:
        return f"{self.name},k<={self.max_degree}"

    def describe_hardware(self) -> HardwareDescription:
        return HardwareDescription(
            name=self.name,
            rows="0 (2 counters)",
            row_contents="-",
            location="On-Chip",
            index_source="-",
            memory_ops_per_miss=0,
            max_prefetches=str(self.max_degree),
        )
