"""Markov Prefetching (MP) — the paper's Section 2.3.

Joseph & Grunwald's Markov predictor [16], adapted to the TLB miss
stream. The prediction table approximates a Markov state diagram: it is
indexed by the missed virtual page, and each row's ``s`` slots hold the
pages that missed immediately after this page on previous occasions
(LRU-ordered, so the slots approximate the highest-probability outgoing
transitions).

Per the paper: on a miss, the table is indexed by the missing address;
if absent, a row is allocated with empty slots. The current miss is
also recorded in a free slot of the *previous* miss's row (LRU eviction
when full). When the lookup hits, prefetches are issued for all of the
row's slots.

MP's weakness — reproduced faithfully here — is that it needs a row per
page in the working set, so small on-chip tables thrash for large
footprints (the paper's galgel/art/mesa observation), while RP escapes
by keeping its history in memory.
"""

from __future__ import annotations

from repro.core.prediction_table import PredictionTable, SlotList
from repro.prefetch.base import HardwareDescription, Prefetcher


class MarkovPrefetcher(Prefetcher):
    """Page-indexed Markov prediction over the TLB miss stream.

    Args:
        rows: table rows ``r``.
        ways: associativity (1 = direct, 2/4, 0 = fully associative).
        slots: successor slots ``s`` per row (2 in the paper's Table 1).
    """

    name = "MP"

    def __init__(self, rows: int = 256, ways: int = 1, slots: int = 2) -> None:
        super().__init__()
        self.table: PredictionTable[SlotList] = PredictionTable(rows, ways)
        self.slots = slots
        self._prev_page: int | None = None

    def _new_row(self) -> SlotList:
        return SlotList(self.slots)

    def on_miss(self, pc: int, page: int, evicted: int, pb_hit: bool) -> list[int]:
        entry, allocated = self.table.lookup_or_insert(page, self._new_row)
        prefetches = [] if allocated else entry.values()

        prev_page = self._prev_page
        if prev_page is not None and prev_page != page:
            prev_entry, _ = self.table.lookup_or_insert(prev_page, self._new_row)
            prev_entry.add(page)
        self._prev_page = page
        return self.account(prefetches)

    def flush(self) -> None:
        self.table.flush()
        self._prev_page = None

    def has_prediction_state(self) -> bool:
        return len(self.table) > 0 or self._prev_page is not None

    @property
    def label(self) -> str:
        return f"{self.name},{self.table.rows},{self.table.assoc_label}"

    def describe_hardware(self) -> HardwareDescription:
        return HardwareDescription(
            name=self.name,
            rows="r",
            row_contents=f"Page # Tag, {self.slots} Prediction Page #s",
            location="On-Chip",
            index_source="Page #",
            memory_ops_per_miss=0,
            max_prefetches=str(self.slots),
        )
