"""The health watchdog: the thread that watches the watchers.

:class:`HealthWatchdog` closes the telemetry loop PR 8 left open. On a
fixed cadence it (1) asks its owner to refresh scrape-time gauges via
the ``collect`` hook (queue depth, session counts, SLO gauges), (2)
persists one registry snapshot into the
:class:`~repro.obs.journal.MetricsJournal`, (3) periodically prunes
the journal to its retention budget, and (4) re-evaluates the
:class:`~repro.obs.rules.RuleEngine` so alerts transition between
firing and resolved without anyone polling ``GET /healthz``.

:func:`component_health` is the pure half of ``GET /healthz``: it
folds direct probes (store writable, queue lag, worker leases, live
sessions) together with the rule engine's firing set into one
componentwise report — separated from the HTTP layer so the service
tests can assert on it without sockets, and ``repro-tlb health`` can
render it without re-deriving the shape.

Like everything in :mod:`repro.obs`, the watchdog is observation only
and is never constructed when ``REPRO_OBS_DISABLED`` is set.
"""

from __future__ import annotations

import sqlite3
import threading
from typing import Any, Callable

from repro.errors import ObsError
from repro.obs.journal import MetricsJournal
from repro.obs.rules import RuleEngine


class HealthWatchdog:
    """Background sampler + alert evaluator over one journal.

    Args:
        journal: where snapshots land.
        engine: the SLO rule engine re-evaluated every tick.
        interval_seconds: cadence; each tick is collect → record →
            (occasionally) prune → evaluate.
        collect: optional zero-arg hook run before sampling so gauges
            reflect live state (the service passes its gauge-refresh).
        prune_every: run :meth:`MetricsJournal.prune` every N ticks.
    """

    def __init__(
        self,
        journal: MetricsJournal,
        engine: RuleEngine | None = None,
        interval_seconds: float = 5.0,
        collect: Callable[[], None] | None = None,
        prune_every: int = 12,
    ) -> None:
        if interval_seconds <= 0:
            raise ObsError(f"interval_seconds must be > 0, got {interval_seconds}")
        self.journal = journal
        self.engine = engine
        self.interval_seconds = float(interval_seconds)
        self.collect = collect
        self.prune_every = int(prune_every)
        self.ticks = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def tick(self, now: float | None = None) -> None:
        """One synchronous watchdog cycle (what the thread loops on).

        Exposed so tests — and ``GET /healthz`` on a service without a
        running watchdog — can drive the sample/evaluate cycle
        deterministically with an injected clock.
        """
        if self.collect is not None:
            self.collect()
        self.journal.record(now=now)
        self.ticks += 1
        if self.prune_every > 0 and self.ticks % self.prune_every == 0:
            self.journal.prune(now=now)
        if self.engine is not None:
            self.engine.evaluate(now=now)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Run :meth:`tick` on the cadence until :meth:`stop`."""
        if self.running:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.interval_seconds):
                try:
                    self.tick()
                except sqlite3.ProgrammingError:
                    return  # journal closed under the watchdog

        self._thread = threading.Thread(
            target=loop, name="repro-obs-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None and thread.is_alive():
            thread.join(timeout=10)


def component_health(
    store_writable: bool,
    queue_slo: dict[str, Any],
    sessions: dict[str, Any],
    engine: RuleEngine | None,
    queue_age_degraded_seconds: float = 120.0,
    lease_overdue_degraded_seconds: float = 5.0,
) -> dict[str, Any]:
    """Fold probes + firing alerts into the ``/healthz`` report.

    Components:
        - ``store``: the artifact root accepted a write probe.
        - ``queue``: the oldest claimable job is not stuck past the lag
          threshold.
        - ``workers``: no running job's lease is overdue past the
          heartbeat grace (a SIGKILLed worker shows up here as soon as
          its lease lapses, and recovers when the job is re-claimed).
        - ``sessions``: live streaming-session census (always ok on its
          own; the idle-pileup *rule* degrades it when breached).

    A component is also degraded while any firing alert names it. The
    overall ``status`` is ``ok`` only when every component is ok.
    """
    degraded_by_alert = engine.components_degraded() if engine is not None else {}

    components: dict[str, dict[str, Any]] = {}

    components["store"] = {
        "status": "ok" if store_writable else "degraded",
        "writable": store_writable,
    }

    queue_age = queue_slo.get("oldest_queued_age_seconds")
    queue_ok = queue_age is None or queue_age <= queue_age_degraded_seconds
    components["queue"] = {
        "status": "ok" if queue_ok else "degraded",
        "oldest_queued_age_seconds": queue_age,
        "queued": queue_slo.get("queued", 0),
        "running": queue_slo.get("running", 0),
    }

    overdue_jobs = queue_slo.get("lease_overdue_jobs", 0)
    overdue_seconds = queue_slo.get("lease_overdue_seconds", 0.0)
    workers_ok = (
        overdue_jobs == 0 or overdue_seconds <= lease_overdue_degraded_seconds
    )
    components["workers"] = {
        "status": "ok" if workers_ok else "degraded",
        "lease_overdue_jobs": overdue_jobs,
        "lease_overdue_seconds": overdue_seconds,
    }

    components["sessions"] = {
        "status": "ok",
        "active": sessions.get("active", 0),
        "restored": sessions.get("restored", 0),
        "evicted": sessions.get("evicted", 0),
    }

    for component, alerts in degraded_by_alert.items():
        entry = components.setdefault(component, {"status": "ok"})
        entry["status"] = "degraded"
        entry["alerts"] = sorted(alerts)

    firing = sorted(
        name for alerts in degraded_by_alert.values() for name in alerts
    )
    status = (
        "ok"
        if all(entry["status"] == "ok" for entry in components.values())
        else "degraded"
    )
    return {
        "status": status,
        "components": components,
        "alerts_firing": len(firing),
        "firing": firing,
    }
