"""Lightweight profiling hooks: per-phase wall clock and peak RSS.

Used by ``benchmarks/smoke.py`` to attribute wall-clock time to named
phases and to record the process's high-water memory mark — stdlib
only (``resource.getrusage``), no psutil.
"""

from __future__ import annotations

import contextlib
import sys
import time
from typing import Iterator

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown).

    ``ru_maxrss`` is KiB on Linux and bytes on macOS.
    """
    if resource is None:
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


class PhaseProfiler:
    """Accumulates wall-clock per named phase.

    >>> prof = PhaseProfiler()
    >>> with prof.phase("warmup"):
    ...     pass
    >>> sorted(prof.report()["phase_seconds"])
    ['warmup']

    Re-entering a phase name accumulates, so repeated phases (e.g. the
    engine repeats loop) sum into a single line.
    """

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._order: list[str] = []
        self._began = time.perf_counter()

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            if name not in self._seconds:
                self._order.append(name)
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed

    def report(self) -> dict:
        """Phase timings plus totals, ready for a BENCH json record."""
        total = time.perf_counter() - self._began
        accounted = sum(self._seconds.values())
        return {
            "phase_seconds": {name: self._seconds[name] for name in self._order},
            "profiled_seconds": accounted,
            "total_seconds": total,
            "peak_rss_bytes": peak_rss_bytes(),
        }
