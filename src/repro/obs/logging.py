"""Structured logging for the service layer.

The ``repro.obs`` logger carries access-log lines (method, path,
status, latency) and scheduler/worker events. It is quiet by default —
a ``NullHandler`` swallows everything — and turns on a simple stderr
console handler when either the server runs with ``--verbose`` or the
``REPRO_OBS_LOG`` environment variable names a level (e.g.
``REPRO_OBS_LOG=info``). This replaces the old behaviour of the HTTP
handler discarding access logs outright.
"""

from __future__ import annotations

import logging
import os

LOGGER_NAME = "repro.obs"
ENV_LOG = "REPRO_OBS_LOG"

_configured = False


def get_logger(child: str | None = None) -> logging.Logger:
    """The ``repro.obs`` logger (or a dotted child of it).

    First call installs a NullHandler and, if ``REPRO_OBS_LOG`` is
    set, a console handler at that level.
    """
    global _configured
    logger = logging.getLogger(LOGGER_NAME)
    if not _configured:
        _configured = True
        if not logger.handlers:
            logger.addHandler(logging.NullHandler())
        env_level = os.environ.get(ENV_LOG, "").strip()
        if env_level:
            enable_console(env_level)
    if child:
        return logger.getChild(child)
    return logger


def enable_console(level: str | int = "info") -> logging.Logger:
    """Attach a stderr handler so obs log lines become visible.

    Idempotent — repeated calls adjust the level instead of stacking
    duplicate handlers.
    """
    logger = logging.getLogger(LOGGER_NAME)
    if isinstance(level, str):
        level = getattr(logging, level.upper(), logging.INFO)
    handler = None
    for existing in logger.handlers:
        if getattr(existing, "_repro_obs_console", False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler()
        handler._repro_obs_console = True  # type: ignore[attr-defined]
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    handler.setLevel(level)
    logger.setLevel(level)
    return logger
