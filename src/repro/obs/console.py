"""One-screen live service summary for ``repro-tlb top``.

Pure rendering: :func:`render_top` turns one ``GET /stats`` envelope
(plus, optionally, the previous poll for rate computation) into a
fixed-shape text screen, reusing the repo's
:mod:`repro.analysis.ascii_chart` helpers. The CLI loop owns the
polling and the screen clearing; this module owns none of the I/O, so
the layout is testable against canned payloads.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.ascii_chart import bar, format_table


def _rate(current: float, previous: float | None, interval: float | None) -> float | None:
    if previous is None or not interval or interval <= 0:
        return None
    return max(0.0, (current - previous) / interval)


def _hit_rate(hits: float, misses: float) -> float | None:
    total = hits + misses
    if total <= 0:
        return None
    return hits / total


def _fmt_rate(value: float | None, suffix: str = "/s") -> str:
    return "-" if value is None else f"{value:.1f}{suffix}"


def _fmt_pct_bar(fraction: float | None, width: int = 20) -> str:
    if fraction is None:
        return "-"
    return f"{fraction * 100.0:5.1f}% {bar(fraction, width=width)}"


#: Eight-level block ramp for :func:`sparkline`.
_SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], width: int = 30) -> str:
    """Render a numeric series as a block-character sparkline.

    Min-max normalized over the visible window (the trailing ``width``
    samples); a flat series renders at the lowest level so a busy one
    stands out. Empty input renders as an empty string.
    """
    tail = [float(value) for value in values[-width:]]
    if not tail:
        return ""
    low, high = min(tail), max(tail)
    span = high - low
    if span <= 0:
        return _SPARKS[0] * len(tail)
    return "".join(
        _SPARKS[min(len(_SPARKS) - 1, int((value - low) / span * len(_SPARKS)))]
        for value in tail
    )


def render_top(
    stats: dict[str, Any],
    previous: dict[str, Any] | None = None,
    interval: float | None = None,
    history: dict[str, list[float]] | None = None,
) -> str:
    """Render one ``/stats`` snapshot as a one-screen summary.

    Args:
        stats: decoded ``GET /stats`` payload.
        previous: the prior poll's payload, for requests-per-second.
        interval: seconds between the two polls.
        history: named numeric series accumulated by the polling loop
            (e.g. p99 latency, rps, queue depth per refresh); each is
            rendered as a labelled sparkline trend line.
    """
    metrics = stats.get("metrics", {})
    queue = stats.get("queue", {})
    store = stats.get("store", {})
    cache = stats.get("stream_cache", {})
    streams = stats.get("streams", {})

    prev_metrics = (previous or {}).get("metrics", {})
    rps = _rate(
        metrics.get("http_requests", 0),
        prev_metrics.get("http_requests") if previous else None,
        interval,
    )

    lines = ["repro-tlb top"]
    lines.append(
        "service   "
        f"rps {_fmt_rate(rps)}   "
        f"requests {metrics.get('http_requests', 0)}   "
        f"p50 {metrics.get('http_p50_ms', 0.0):.1f}ms   "
        f"p99 {metrics.get('http_p99_ms', 0.0):.1f}ms"
    )
    if "replays" in metrics:
        lines.append(
            "replay    "
            f"count {metrics.get('replays', 0)}   "
            f"p50 {metrics.get('replay_p50_ms', 0.0):.1f}ms"
        )
    lines.append("")

    lines.append(
        format_table(
            ("queue", "jobs"),
            [
                (state, queue.get(state, 0))
                for state in ("queued", "running", "done", "failed", "cancelled")
            ],
        )
    )
    lines.append("")

    result_rate = _hit_rate(
        store.get("result_hits", 0), store.get("result_misses", 0)
    )
    stream_rate = _hit_rate(
        store.get("stream_hits", 0), store.get("stream_misses", 0)
    )
    cache_rate = _hit_rate(cache.get("hits", 0), cache.get("misses", 0))
    lines.append("hit rates")
    lines.append(f"  store results   {_fmt_pct_bar(result_rate)}")
    lines.append(f"  store streams   {_fmt_pct_bar(stream_rate)}")
    lines.append(f"  stream cache    {_fmt_pct_bar(cache_rate)}")
    lines.append("")
    lines.append(
        "store     "
        f"{store.get('result_entries', 0)} results, "
        f"{store.get('stream_entries', 0)} streams, "
        f"{store.get('ckpt_entries', 0)} ckpts, "
        f"{store.get('total_bytes', 0)} bytes"
    )
    lines.append(
        "sessions  "
        f"active {streams.get('active', 0)}   "
        f"restored {streams.get('restored', 0)}   "
        f"evicted {streams.get('evicted', 0)}   "
        f"spans {metrics.get('spans_collected', 0)}"
    )
    if history:
        trend_lines = []
        label_width = max(len(name) for name in history)
        for name, values in history.items():
            spark = sparkline(values)
            if not spark:
                continue
            latest = values[-1]
            trend_lines.append(
                f"  {name:<{label_width}}  {spark}  {latest:g}"
            )
        if trend_lines:
            lines.append("")
            lines.append("trends")
            lines.extend(trend_lines)
    return "\n".join(lines)
