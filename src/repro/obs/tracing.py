"""Hierarchical span tracing with cross-process propagation.

A *span* is one named, timed unit of work; spans nest via a
contextvars-based current-span, so ``trace("replay")`` inside
``trace("run")`` records the parent/child edge automatically — and
because ``contextvars`` is per-thread-of-control, concurrent request
handler threads in the HTTP service each get their own span stack.

Crossing a process boundary (process-pool replay workers, HTTP hops
between client / service / scheduler workers) is explicit: the sender
captures ``current_context()`` — a ``"trace_id:span_id"`` string, sent
as the ``X-Repro-Trace`` header over HTTP — and the receiver re-enters
it with :func:`bind_context`. Every span created underneath then
shares the original ``trace_id``, so a distributed sweep yields one
coherent trace (submit → claim → stream-build → replay → complete →
store-write) that ``repro-tlb trace`` can render as JSON or as an
ASCII flame summary.

Finished spans land in the process-local :data:`COLLECTOR`, a bounded
ring buffer; remote processes ship their spans home via the service's
``POST /trace`` route. None of this feeds ``RunSpec.key()``, result
rows, or checkpoint digests — tracing is observation only.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Header used to propagate trace context over HTTP.
TRACE_HEADER = "X-Repro-Trace"

_current_span: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass
class Span:
    """One finished (or in-flight) unit of work inside a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    start: float = 0.0
    duration: float = 0.0
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        return cls(
            name=str(data.get("name", "")),
            trace_id=str(data.get("trace_id", "")),
            span_id=str(data.get("span_id", "")),
            parent_id=data.get("parent_id"),
            start=float(data.get("start", 0.0)),
            duration=float(data.get("duration", 0.0)),
            status=str(data.get("status", "ok")),
            attrs=dict(data.get("attrs", {})),
        )


class SpanCollector:
    """Bounded, thread-safe sink for finished spans.

    The bound keeps a long-lived service from accumulating spans
    without limit; at the default 20k a sweep of a few thousand specs
    fits comfortably, and older traces age out FIFO.
    """

    def __init__(self, max_spans: int = 20_000) -> None:
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=max_spans)

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def ingest(self, payloads: list[dict[str, Any]]) -> int:
        """Accept span dicts shipped from another process."""
        accepted = 0
        with self._lock:
            for payload in payloads:
                if not isinstance(payload, dict):
                    continue
                span = Span.from_dict(payload)
                if not span.trace_id or not span.span_id:
                    continue
                self._spans.append(span)
                accepted += 1
        return accepted

    def spans(self, trace_id: str | None = None) -> list[Span]:
        with self._lock:
            items = list(self._spans)
        if trace_id is None:
            return items
        return [span for span in items if span.trace_id == trace_id]

    def traces(self) -> list[dict[str, Any]]:
        """Per-trace summaries (id, root name, span count, duration)."""
        summaries: dict[str, dict[str, Any]] = {}
        for span in self.spans():
            entry = summaries.setdefault(
                span.trace_id,
                {"trace_id": span.trace_id, "spans": 0, "root": "", "duration": 0.0},
            )
            entry["spans"] += 1
            if span.parent_id is None and span.duration >= entry["duration"]:
                entry["root"] = span.name
                entry["duration"] = span.duration
        return sorted(summaries.values(), key=lambda e: e["trace_id"])

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: Process-local sink that ``trace()`` records into.
COLLECTOR = SpanCollector()

_enabled = True


def set_tracing_enabled(flag: bool) -> None:
    """Globally disable span creation (used by the overhead bench)."""
    global _enabled
    _enabled = bool(flag)


@contextlib.contextmanager
def trace(name: str, **attrs: Any) -> Iterator[Span]:
    """Run the body as one timed span under the current trace.

    Exception-safe: an escaping exception marks the span
    ``status="error"`` (with the exception type in ``attrs``) and
    re-raises. When tracing is disabled a dummy span is yielded and
    nothing is recorded.
    """
    if not _enabled:
        yield Span(name=name, trace_id="", span_id="")
        return
    parent = _current_span.get()
    span = Span(
        name=name,
        trace_id=parent.trace_id if parent else _new_id(),
        span_id=_new_id(),
        parent_id=parent.span_id if parent else None,
        attrs=dict(attrs),
        start=time.time(),
    )
    token = _current_span.set(span)
    began = time.perf_counter()
    try:
        yield span
    except BaseException as exc:
        span.status = "error"
        span.attrs.setdefault("error", type(exc).__name__)
        raise
    finally:
        span.duration = time.perf_counter() - began
        _current_span.reset(token)
        COLLECTOR.record(span)


def current_context() -> str | None:
    """The active ``"trace_id:span_id"``, or None outside any span."""
    span = _current_span.get()
    if span is None or not span.trace_id:
        return None
    return f"{span.trace_id}:{span.span_id}"


@contextlib.contextmanager
def bind_context(context: str | None) -> Iterator[None]:
    """Re-enter a remote trace context received as a header/string.

    Spans opened inside the ``with`` block become children of the
    remote span named by ``context``. A malformed or empty context is
    ignored (the block still runs, just unparented) — a lost trace
    must never break the request path.
    """
    parent: Span | None = None
    if context:
        trace_id, _, span_id = str(context).partition(":")
        if trace_id and span_id:
            parent = Span(
                name="remote", trace_id=trace_id, span_id=span_id, parent_id=None
            )
    if parent is None:
        yield
        return
    token = _current_span.set(parent)
    try:
        yield
    finally:
        _current_span.reset(token)


def drain_spans(trace_id: str | None = None) -> list[dict[str, Any]]:
    """Pop every collected span (optionally one trace) as dicts.

    Used by scheduler workers to ship their spans to the service
    after each job batch without re-sending old ones.
    """
    spans = COLLECTOR.spans(trace_id)
    COLLECTOR.clear()
    return [span.to_dict() for span in spans]


def render_flame(spans: list[Span] | list[dict[str, Any]], width: int = 72) -> str:
    """ASCII flame summary of one trace: indented tree with bars.

    Children are indented under their parent and every bar is scaled
    to the root span's duration, so relative width reads as share of
    the whole trace. Orphan spans (parent not present — e.g. a worker
    span whose remote parent lives in another process's collector)
    are promoted to roots rather than dropped.
    """
    items = [
        span if isinstance(span, Span) else Span.from_dict(span) for span in spans
    ]
    if not items:
        return "(no spans)"
    by_id = {span.span_id: span for span in items}
    children: dict[str | None, list[Span]] = {}
    roots: list[Span] = []
    for span in items:
        if span.parent_id and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    roots.sort(key=lambda s: s.start)
    total = max((span.duration for span in roots), default=0.0) or 1e-9
    bar_width = max(10, width - 40)
    lines = [f"trace {items[0].trace_id} · {len(items)} spans"]

    def walk(span: Span, depth: int) -> None:
        filled = max(1, round(bar_width * min(1.0, span.duration / total)))
        bar = "#" * filled
        label = "  " * depth + span.name
        mark = " !" if span.status != "ok" else ""
        extra = ""
        if span.attrs:
            keys = sorted(span.attrs)[:2]
            extra = " [" + ",".join(f"{k}={span.attrs[k]}" for k in keys) + "]"
        lines.append(
            f"{label:<28} {span.duration * 1000.0:9.2f} ms {bar}{mark}{extra}"
        )
        for child in sorted(children.get(span.span_id, []), key=lambda s: s.start):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
