"""Benchmark history: append-only JSONL records and regression compare.

The smoke benchmark (``benchmarks/smoke.py --history ...``) appends one
schema-versioned line per run to ``benchmarks/results/BENCH_history.jsonl``;
``repro-tlb bench compare`` diffs the newest record against a baseline
window of earlier ones with per-metric tolerances and exits nonzero on
a regression — the perf-regression observatory CI leans on.

Every line carries provenance the *caller* supplies (``git_sha``,
``timestamp``); this module never shells out to git or reads the clock,
so records are reproducible and the diff logic is pure. Comparisons are
only meaningful between records from the same machine — CI therefore
benches twice on one runner and compares with ``--baseline-window 1``
rather than diffing CI wall-clock against a record committed elsewhere.

Three tolerance kinds cover the smoke record's shapes:

- ``higher``: throughput-like, higher is better. Regressed when the
  latest falls more than ``tolerance`` (fractional) below the baseline
  window's mean — ``specs_per_second`` at 0.15 catches a 20% drop.
- ``lower``: latency-like, lower is better; mirrored check.
- ``ceiling``: an absolute budget on the latest value alone (overhead
  fractions); the baseline window is ignored.

Metrics missing from either side are reported as skipped, never
regressed — a record predating a metric must not fail the gate.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ObsError

#: Version stamp on every history line.
BENCH_SCHEMA = "repro.bench/v1"

#: Per-metric regression tolerances for the smoke record. Fractional
#: slack for ratio kinds; the absolute budget for ``ceiling`` kinds.
DEFAULT_TOLERANCES: dict[str, dict[str, float | str]] = {
    "specs_per_second": {"kind": "higher", "tolerance": 0.15},
    "batch_specs_per_second": {"kind": "higher", "tolerance": 0.25},
    "stream_entries_per_second": {"kind": "higher", "tolerance": 0.30},
    "warm_start_speedup": {"kind": "higher", "tolerance": 0.40},
    "store_cold_overhead_fraction": {"kind": "ceiling", "tolerance": 0.05},
    "obs_overhead_fraction": {"kind": "ceiling", "tolerance": 0.05},
}


def append_history(
    path: str | Path,
    record: dict[str, Any],
    git_sha: str | None = None,
    timestamp: float | None = None,
) -> dict[str, Any]:
    """Append one benchmark record as a schema-stamped JSONL line.

    ``git_sha`` and ``timestamp`` are provenance the caller passes in
    (CI knows its SHA; a local run can say ``--git-sha $(git
    rev-parse HEAD)``) — deliberately not computed here. Returns the
    full line written.
    """
    line = {
        "schema": BENCH_SCHEMA,
        "git_sha": git_sha,
        "timestamp": timestamp,
        "record": dict(record),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(json.dumps(line, sort_keys=True) + "\n")
    return line


def load_history(path: str | Path) -> list[dict[str, Any]]:
    """Parse a history file; schema-checked, oldest first.

    Raises :class:`~repro.errors.ObsError` for unreadable JSON or a
    line whose schema stamp is missing/foreign — history is an input
    to a CI gate, so silently skipping corrupt lines could hide the
    very regression the gate exists to catch.
    """
    path = Path(path)
    if not path.exists():
        raise ObsError(f"no benchmark history at {path}")
    records: list[dict[str, Any]] = []
    for number, raw in enumerate(path.read_text().splitlines(), start=1):
        if not raw.strip():
            continue
        try:
            line = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ObsError(f"{path}:{number}: history line is not JSON: {exc}")
        if not isinstance(line, dict) or line.get("schema") != BENCH_SCHEMA:
            raise ObsError(
                f"{path}:{number}: expected schema {BENCH_SCHEMA!r}, "
                f"got {line.get('schema') if isinstance(line, dict) else line!r}"
            )
        if not isinstance(line.get("record"), dict):
            raise ObsError(f"{path}:{number}: history line has no 'record' object")
        records.append(line)
    return records


def compare_history(
    history: list[dict[str, Any]],
    baseline_window: int = 5,
    tolerances: dict[str, dict[str, float | str]] | None = None,
) -> dict[str, Any]:
    """Diff the newest record against the mean of the window before it.

    Returns ``{"regressed": bool, "baseline_runs": n, "metrics": [...]}``
    where each metric entry carries the baseline mean, the latest
    value, the tolerance applied, and its verdict (``ok`` /
    ``regressed`` / ``skipped``). Needs at least two records unless
    every tolerance is a ``ceiling`` (which only reads the latest).
    """
    if tolerances is None:
        tolerances = DEFAULT_TOLERANCES
    if not history:
        raise ObsError("benchmark history is empty; nothing to compare")
    if baseline_window < 1:
        raise ObsError(f"baseline_window must be >= 1, got {baseline_window}")
    latest = history[-1]["record"]
    window = [line["record"] for line in history[-1 - baseline_window:-1]]
    metrics: list[dict[str, Any]] = []
    regressed = False
    for metric, spec in tolerances.items():
        kind = spec["kind"]
        tolerance = float(spec["tolerance"])
        value = latest.get(metric)
        entry: dict[str, Any] = {
            "metric": metric,
            "kind": kind,
            "tolerance": tolerance,
            "latest": value,
            "baseline": None,
            "verdict": "skipped",
        }
        if isinstance(value, (int, float)):
            if kind == "ceiling":
                entry["verdict"] = "regressed" if value > tolerance else "ok"
            else:
                samples = [
                    line[metric]
                    for line in window
                    if isinstance(line.get(metric), (int, float))
                ]
                if samples:
                    baseline = sum(samples) / len(samples)
                    entry["baseline"] = baseline
                    if kind == "higher":
                        bad = value < baseline * (1.0 - tolerance)
                    elif kind == "lower":
                        bad = value > baseline * (1.0 + tolerance)
                    else:
                        raise ObsError(
                            f"tolerance for {metric!r} has unknown kind {kind!r}"
                        )
                    entry["verdict"] = "regressed" if bad else "ok"
        regressed = regressed or entry["verdict"] == "regressed"
        metrics.append(entry)
    return {
        "regressed": regressed,
        "baseline_runs": len(window),
        "latest_git_sha": history[-1].get("git_sha"),
        "metrics": metrics,
    }


def format_compare(report: dict[str, Any]) -> str:
    """Render a compare report as an aligned plain-text table."""
    rows = [("metric", "kind", "baseline", "latest", "tolerance", "verdict")]
    for entry in report["metrics"]:
        rows.append(
            (
                entry["metric"],
                entry["kind"],
                "-" if entry["baseline"] is None else f"{entry['baseline']:.4g}",
                "-" if entry["latest"] is None else f"{entry['latest']:.4g}",
                f"{entry['tolerance']:g}",
                entry["verdict"].upper()
                if entry["verdict"] == "regressed"
                else entry["verdict"],
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]
    sha = report.get("latest_git_sha")
    lines.append(
        f"baseline: mean of {report['baseline_runs']} prior run(s); "
        f"latest sha: {sha if sha else 'unknown'}; "
        f"{'REGRESSED' if report['regressed'] else 'ok'}"
    )
    return "\n".join(lines)
