"""Observability for the repro stack: metrics, traces, logs, profiling.

One import point for every layer (runner, engines, store, service,
scheduler)::

    from repro import obs

    obs.REGISTRY.counter("repro_store_result_hits_total").inc()
    with obs.trace("replay", engine="fast"):
        ...

Everything here is strictly off the determinism path — no metric,
span, or log line influences ``RunSpec.key()``, result rows, or
checkpoint digests. The whole subsystem can be switched off with
:func:`set_enabled` (or the ``REPRO_OBS_DISABLED`` environment
variable) to measure its own overhead; disabled, every update is a
branch-and-return.
"""

from __future__ import annotations

import os

from repro.obs.bench import (
    BENCH_SCHEMA,
    DEFAULT_TOLERANCES,
    append_history,
    compare_history,
    format_compare,
    load_history,
)
from repro.obs.logging import enable_console, get_logger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    parse_prometheus,
)
from repro.obs.journal import (
    JOURNAL_FILENAME,
    OBS_SCHEMA,
    MetricsJournal,
    flatten_snapshot,
)
from repro.obs.profiling import PhaseProfiler, peak_rss_bytes
from repro.obs.tracing import (
    COLLECTOR,
    TRACE_HEADER,
    Span,
    SpanCollector,
    bind_context,
    current_context,
    drain_spans,
    render_flame,
    set_tracing_enabled,
    trace,
)

ENV_DISABLED = "REPRO_OBS_DISABLED"

#: The process-wide default registry every layer instruments into.
REGISTRY = MetricsRegistry(
    enabled=os.environ.get(ENV_DISABLED, "").strip() not in ("1", "true", "yes")
)
if not REGISTRY.enabled:
    set_tracing_enabled(False)


def set_enabled(flag: bool) -> None:
    """Enable/disable all telemetry (metrics and tracing) at runtime."""
    REGISTRY.enabled = bool(flag)
    set_tracing_enabled(bool(flag))


def is_enabled() -> bool:
    return REGISTRY.enabled


# Imported after REGISTRY exists: both modules register families
# against the process-wide registry at import time.
from repro.obs.health import HealthWatchdog, component_health  # noqa: E402
from repro.obs.rules import Rule, RuleEngine, default_rules  # noqa: E402

__all__ = [
    "BENCH_SCHEMA",
    "COLLECTOR",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_TOLERANCES",
    "ENV_DISABLED",
    "HealthWatchdog",
    "JOURNAL_FILENAME",
    "MetricFamily",
    "MetricsJournal",
    "MetricsRegistry",
    "OBS_SCHEMA",
    "PhaseProfiler",
    "REGISTRY",
    "Rule",
    "RuleEngine",
    "Span",
    "SpanCollector",
    "TRACE_HEADER",
    "append_history",
    "bind_context",
    "compare_history",
    "component_health",
    "current_context",
    "default_rules",
    "drain_spans",
    "enable_console",
    "flatten_snapshot",
    "format_compare",
    "get_logger",
    "is_enabled",
    "load_history",
    "parse_prometheus",
    "peak_rss_bytes",
    "render_flame",
    "set_enabled",
    "set_tracing_enabled",
    "trace",
]
