"""Persistent telemetry history: registry snapshots as time series.

:class:`MetricsJournal` turns the in-memory
:class:`~repro.obs.metrics.MetricsRegistry` — which forgets everything
on process exit — into a durable SQLite time-series journal. Each
:meth:`record` call flattens one ``registry.snapshot()`` into rows of
``(ts, metric, labels, value)``: counters and gauges keep their name,
histograms are decomposed into ``<name>_count`` / ``<name>_sum`` plus
interpolated ``<name>_p50`` / ``<name>_p99`` quantile series, so SLO
rules can threshold directly on a latency percentile.

The journal lives *beside* the experiment store (the same placement as
the scheduler's ``jobs.sqlite``): a standalone WAL SQLite file the
store's garbage collector never touches, schema-stamped with
:data:`OBS_SCHEMA` so a version mismatch raises
:class:`~repro.errors.ObsError` instead of silently misreading rows.
Samples therefore survive service restarts — a reborn service over the
same store root queries the history its predecessor wrote.

Unbounded history is handled by :meth:`prune`: samples older than
``retention_seconds`` are expired outright, and samples older than
``downsample_after_seconds`` are thinned to the *last* sample per
``downsample_interval_seconds`` bucket per series — a deterministic
rule (no randomness, injectable clock) so tests can assert the exact
surviving rows.

Everything here is strictly off the determinism path, and a disabled
registry (``REPRO_OBS_DISABLED=1``) makes :meth:`record` a no-op.
"""

from __future__ import annotations

import fnmatch
import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.errors import ObsError

#: Version stamp in the journal's ``meta`` table.
OBS_SCHEMA = "repro.obs/v1"

#: Filename of the journal beside a store's ``index.sqlite``.
JOURNAL_FILENAME = "telemetry.sqlite"

#: Quantile series derived from each histogram child at sample time.
_QUANTILES = ((0.50, "p50"), (0.99, "p99"))


def _quantile_from_buckets(
    bounds: list[float], counts: list[int], q: float
) -> float:
    """Linear-interpolated quantile over cumulative bucket counts.

    The same estimator as :meth:`MetricFamily.summary`, applied to the
    raw snapshot lists so the journal does not need a live family.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0.0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if seen + count >= rank:
            lower = 0.0 if index == 0 else bounds[index - 1]
            if index >= len(bounds):
                return lower  # +Inf overflow bucket: report its lower edge
            upper = bounds[index]
            return lower + (upper - lower) * (rank - seen) / count
        seen += count
    return bounds[-1] if bounds else 0.0


def flatten_snapshot(snapshot: dict[str, Any]) -> list[tuple[str, str, float]]:
    """One registry snapshot as ``(metric, labels_json, value)`` rows.

    Labels are serialized as canonical (sorted-key) JSON so equal label
    sets always produce the same string — the journal's series key.
    """
    rows: list[tuple[str, str, float]] = []
    for family in snapshot.values():
        name = family["name"]
        if family["type"] == "histogram":
            bounds = family["bucket_bounds"]
            for child in family["series"]:
                labels = json.dumps(child["labels"], sort_keys=True)
                rows.append((f"{name}_count", labels, float(child["count"])))
                rows.append((f"{name}_sum", labels, float(child["sum"])))
                for q, suffix in _QUANTILES:
                    rows.append(
                        (
                            f"{name}_{suffix}",
                            labels,
                            _quantile_from_buckets(bounds, child["buckets"], q),
                        )
                    )
            continue
        for child in family["series"]:
            labels = json.dumps(child["labels"], sort_keys=True)
            rows.append((name, labels, float(child["value"])))
    return rows


def _labels_match(labels: dict[str, str], want: dict[str, str] | None) -> bool:
    """Subset match with ``fnmatch`` wildcards in the wanted values.

    ``{"status": "5*"}`` matches any series whose ``status`` label
    starts with 5 — how the error-ratio SLO selects server errors
    without enumerating status codes.
    """
    if not want:
        return True
    for key, pattern in want.items():
        value = labels.get(key)
        if value is None or not fnmatch.fnmatchcase(str(value), str(pattern)):
            return False
    return True


class MetricsJournal:
    """A durable time-series journal of metrics-registry snapshots.

    Args:
        path: SQLite file backing the journal (parents created). Place
            it beside the experiment store's ``index.sqlite`` — see
            :attr:`ExperimentStore.journal_path` — so it shares the
            store's lifetime but is invisible to its GC.
        registry: the registry :meth:`record` samples by default; the
            process-wide one if omitted.
        clock: time source (seconds); injectable so retention and
            downsampling tests are deterministic.
        retention_seconds: samples older than this are expired by
            :meth:`prune`.
        downsample_after_seconds: samples older than this (but inside
            retention) are thinned by :meth:`prune`.
        downsample_interval_seconds: bucket width for thinning; the
            last sample of each series in each bucket survives.

    Instances are safe to share between threads (one lock serializes
    the connection) and the on-disk format is safe to share between
    processes (WAL SQLite, short transactions).
    """

    def __init__(
        self,
        path: str | Path,
        registry: "Any | None" = None,
        clock: Callable[[], float] = time.time,
        retention_seconds: float = 24 * 3600.0,
        downsample_after_seconds: float = 600.0,
        downsample_interval_seconds: float = 60.0,
    ) -> None:
        if retention_seconds <= 0:
            raise ObsError(f"retention_seconds must be > 0, got {retention_seconds}")
        if downsample_interval_seconds <= 0:
            raise ObsError(
                "downsample_interval_seconds must be > 0, "
                f"got {downsample_interval_seconds}"
            )
        if registry is None:
            from repro.obs import REGISTRY

            registry = REGISTRY
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.registry = registry
        self.clock = clock
        self.retention_seconds = float(retention_seconds)
        self.downsample_after_seconds = float(downsample_after_seconds)
        self.downsample_interval_seconds = float(downsample_interval_seconds)
        self._lock = threading.RLock()
        self._db = sqlite3.connect(
            self.path,
            timeout=30.0,
            check_same_thread=False,
            isolation_level=None,  # autocommit; explicit BEGIN for batches
        )
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.execute("PRAGMA busy_timeout=30000")
        self._init_schema()
        self._sampler: threading.Thread | None = None
        self._stop = threading.Event()

    # -- lifecycle ---------------------------------------------------------

    def _init_schema(self) -> None:
        with self._lock:
            self._db.execute("BEGIN IMMEDIATE")
            try:
                self._db.execute(
                    "CREATE TABLE IF NOT EXISTS meta "
                    "(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
                )
                self._db.execute(
                    "CREATE TABLE IF NOT EXISTS samples ("
                    " ts REAL NOT NULL,"
                    " metric TEXT NOT NULL,"
                    " labels TEXT NOT NULL,"
                    " value REAL NOT NULL)"
                )
                self._db.execute(
                    "CREATE INDEX IF NOT EXISTS samples_by_metric "
                    "ON samples (metric, ts)"
                )
                row = self._db.execute(
                    "SELECT value FROM meta WHERE key='schema'"
                ).fetchone()
                if row is None:
                    self._db.execute(
                        "INSERT INTO meta (key, value) VALUES ('schema', ?)",
                        (OBS_SCHEMA,),
                    )
                elif row[0] != OBS_SCHEMA:
                    raise ObsError(
                        f"telemetry journal at {self.path} has schema "
                        f"{row[0]!r}; this library reads {OBS_SCHEMA!r} — "
                        "use a fresh file or migrate the journal"
                    )
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise

    def close(self) -> None:
        """Stop the background sampler (if any) and close the file."""
        self.stop()
        with self._lock:
            self._db.close()

    def __enter__(self) -> "MetricsJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"MetricsJournal({str(self.path)!r})"

    # -- writes ------------------------------------------------------------

    def record(
        self, snapshot: dict[str, Any] | None = None, now: float | None = None
    ) -> int:
        """Append one snapshot (the registry's, by default); rows written.

        A disabled registry records nothing — the journal honors the
        same ``REPRO_OBS_DISABLED`` kill-switch as the metrics it
        persists.
        """
        if snapshot is None:
            if not getattr(self.registry, "enabled", True):
                return 0
            snapshot = self.registry.snapshot()
        rows = flatten_snapshot(snapshot)
        if not rows:
            return 0
        ts = self.clock() if now is None else now
        with self._lock:
            self._db.execute("BEGIN IMMEDIATE")
            try:
                self._db.executemany(
                    "INSERT INTO samples (ts, metric, labels, value) "
                    "VALUES (?, ?, ?, ?)",
                    [(ts, metric, labels, value) for metric, labels, value in rows],
                )
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
        return len(rows)

    def prune(self, now: float | None = None) -> dict[str, int]:
        """Expire and downsample old samples; returns a report.

        Deterministic by construction: expiry is a pure cutoff, and
        downsampling keeps the *latest* row of each ``(metric, labels)``
        series in each ``downsample_interval_seconds`` bucket (ties
        broken by insertion order via rowid).
        """
        ts = self.clock() if now is None else now
        expire_before = ts - self.retention_seconds
        thin_before = ts - self.downsample_after_seconds
        with self._lock:
            self._db.execute("BEGIN IMMEDIATE")
            try:
                expired = self._db.execute(
                    "DELETE FROM samples WHERE ts < ?", (expire_before,)
                ).rowcount
                thinned = self._db.execute(
                    "DELETE FROM samples WHERE ts < ? AND rowid NOT IN ("
                    " SELECT MAX(rowid) FROM samples WHERE ts < ?"
                    " GROUP BY metric, labels,"
                    " CAST(ts / ? AS INTEGER))",
                    (
                        thin_before,
                        thin_before,
                        self.downsample_interval_seconds,
                    ),
                ).rowcount
                (remaining,) = self._db.execute(
                    "SELECT COUNT(*) FROM samples"
                ).fetchone()
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
        return {"expired": expired, "downsampled": thinned, "remaining": remaining}

    # -- queries -----------------------------------------------------------

    def query(
        self,
        metric: str,
        labels: dict[str, str] | None = None,
        since: float | None = None,
        until: float | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Samples of one metric, oldest first.

        Args:
            metric: flattened series name (histograms expose
                ``_count``/``_sum``/``_p50``/``_p99`` suffixes).
            labels: label *subset* to match; values may use ``fnmatch``
                wildcards (``{"status": "5*"}``).
            since / until: inclusive time bounds.
            limit: keep only the newest N matching samples.

        Returns dictionaries with ``ts``, ``labels`` (decoded dict) and
        ``value``.
        """
        sql = "SELECT ts, labels, value FROM samples WHERE metric=?"
        params: list[Any] = [metric]
        if since is not None:
            sql += " AND ts >= ?"
            params.append(since)
        if until is not None:
            sql += " AND ts <= ?"
            params.append(until)
        sql += " ORDER BY ts ASC, rowid ASC"
        with self._lock:
            rows = self._db.execute(sql, params).fetchall()
        out = []
        for ts, labels_json, value in rows:
            decoded = json.loads(labels_json)
            if not _labels_match(decoded, labels):
                continue
            out.append({"ts": ts, "labels": decoded, "value": value})
        if limit is not None and len(out) > limit:
            out = out[-limit:]
        return out

    def latest(
        self, metric: str, labels: dict[str, str] | None = None
    ) -> dict[str, Any] | None:
        """The newest matching sample, or ``None``."""
        rows = self.query(metric, labels=labels, limit=1)
        return rows[-1] if rows else None

    def metrics(self) -> list[str]:
        """Distinct flattened series names in the journal, sorted."""
        with self._lock:
            rows = self._db.execute(
                "SELECT DISTINCT metric FROM samples ORDER BY metric"
            ).fetchall()
        return [name for (name,) in rows]

    def aggregate(
        self,
        metric: str,
        window_seconds: float,
        agg: str = "last",
        labels: dict[str, str] | None = None,
        now: float | None = None,
    ) -> float | None:
        """One number over the trailing window, or ``None`` if no data.

        Aggregations:
            - ``last`` / ``max`` / ``min`` / ``avg``: over every
              matching sample's value in the window.
            - ``increase``: per-series newest-minus-oldest delta,
              summed across matching series — the windowed growth of a
              counter (robust to multiple label sets, e.g. statuses).
        """
        ts = self.clock() if now is None else now
        rows = self.query(metric, labels=labels, since=ts - window_seconds, until=ts)
        if not rows:
            return None
        if agg == "increase":
            by_series: dict[str, list[float]] = {}
            for row in rows:
                key = json.dumps(row["labels"], sort_keys=True)
                by_series.setdefault(key, []).append(row["value"])
            return sum(values[-1] - values[0] for values in by_series.values())
        values = [row["value"] for row in rows]
        if agg == "last":
            return values[-1]
        if agg == "max":
            return max(values)
        if agg == "min":
            return min(values)
        if agg == "avg":
            return sum(values) / len(values)
        raise ObsError(
            f"unknown aggregation {agg!r}; expected last/max/min/avg/increase"
        )

    def series(
        self,
        metric: str,
        labels: dict[str, str] | None = None,
        since: float | None = None,
        points: int = 30,
    ) -> list[float]:
        """The newest ``points`` values of one series (for sparklines).

        Samples sharing a timestamp (multiple label sets) are summed,
        so a labeled counter renders as one trend line.
        """
        rows = self.query(metric, labels=labels, since=since)
        by_ts: dict[float, float] = {}
        for row in rows:
            by_ts[row["ts"]] = by_ts.get(row["ts"], 0.0) + row["value"]
        ordered = [by_ts[ts] for ts in sorted(by_ts)]
        return ordered[-points:]

    # -- background sampling ----------------------------------------------

    def start(self, interval_seconds: float = 5.0, prune_every: int = 12) -> None:
        """Sample the registry on a background cadence until :meth:`stop`.

        Every ``prune_every``-th sample also runs :meth:`prune`, so a
        long-lived journal stays inside its retention budget without
        anyone calling prune explicitly.
        """
        if interval_seconds <= 0:
            raise ObsError(f"interval_seconds must be > 0, got {interval_seconds}")
        if self._sampler is not None and self._sampler.is_alive():
            return
        self._stop.clear()

        def loop() -> None:
            ticks = 0
            while not self._stop.wait(interval_seconds):
                try:
                    self.record()
                    ticks += 1
                    if prune_every > 0 and ticks % prune_every == 0:
                        self.prune()
                except sqlite3.ProgrammingError:
                    return  # journal closed under the sampler

        self._sampler = threading.Thread(
            target=loop, name="repro-obs-journal", daemon=True
        )
        self._sampler.start()

    def stop(self) -> None:
        """Stop the background sampler, if one is running."""
        self._stop.set()
        sampler, self._sampler = self._sampler, None
        if sampler is not None and sampler.is_alive():
            sampler.join(timeout=10)
