"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a named collection of metric *families*;
each family owns its label schema and all the label-combination
children under it. The design constraints, in order:

- **Zero dependencies.** Pure stdlib; the exposition format is the
  Prometheus text format, produced by :meth:`MetricsRegistry.render`
  so any scraper (or the bundled ``repro-tlb top``) can read it.
- **Cheap on the hot path.** Updating a metric takes one dict lookup
  and one addition under the *family's own* lock (lock striping:
  different families never contend), and a disabled registry
  short-circuits before touching any lock — the replay engines are
  instrumented per-*replay*, never per-miss-entry, so the measured
  overhead on ``specs_per_second`` stays inside the <5% budget.
- **Snapshot consistency.** :meth:`MetricsRegistry.snapshot` and
  :meth:`render` copy each family under its lock, so a histogram's
  bucket counts, total count and sum always agree with each other even
  while writers are racing the scrape.
- **Strictly off the determinism path.** Nothing here feeds
  ``RunSpec.key()``, result rows, or checkpoint digests; telemetry is
  observation only.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Iterable

#: Default histogram buckets for request/replay latencies in seconds.
#: Upper bounds are inclusive (Prometheus ``le`` semantics); +Inf is
#: implicit as the final overflow bucket.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_VALID_TYPES = ("counter", "gauge", "histogram")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_pairs(label_names: tuple[str, ...], label_values: tuple) -> str:
    if not label_names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(label_names, label_values)
    )
    return "{" + inner + "}"


class _HistogramState:
    """One label-combination's bucket counts, total count, and sum."""

    __slots__ = ("bucket_counts", "count", "sum")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 for +Inf overflow
        self.count = 0
        self.sum = 0.0


class MetricFamily:
    """One named metric with a fixed type and label schema.

    Children (one per label-value combination) are created on first
    touch. All access goes through :meth:`inc` / :meth:`set` /
    :meth:`observe` with labels given as keyword arguments::

        requests = registry.counter(
            "repro_http_requests_total", "Requests served.",
            labels=("method", "route", "status"))
        requests.inc(method="GET", route="/stats", status="200")
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.buckets: tuple[float, ...] = ()
        if kind == "histogram":
            if not buckets:
                buckets = DEFAULT_LATENCY_BUCKETS
            ordered = tuple(sorted(float(bound) for bound in buckets))
            if len(set(ordered)) != len(ordered):
                raise ValueError(f"{name}: duplicate histogram bucket bounds")
            self.buckets = ordered
        self._registry = registry
        self._lock = threading.Lock()
        self._series: dict[tuple, Any] = {}

    # -- label plumbing ----------------------------------------------------

    def _key(self, labels: dict[str, Any]) -> tuple:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _enabled(self) -> bool:
        return self._registry is None or self._registry.enabled

    # -- updates -----------------------------------------------------------

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (counters must only ever grow)."""
        if not self._enabled():
            return
        if self.kind == "histogram":
            raise TypeError(f"metric {self.name} is a histogram; use observe()")
        if self.kind == "counter" and amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def set(self, value: float, **labels: Any) -> None:
        """Set a gauge to an absolute value."""
        if not self._enabled():
            return
        if self.kind != "gauge":
            raise TypeError(f"metric {self.name} is a {self.kind}; set() is gauge-only")
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def observe(self, value: float, **labels: Any) -> None:
        """Record one histogram observation."""
        if not self._enabled():
            return
        if self.kind != "histogram":
            raise TypeError(f"metric {self.name} is a {self.kind}; observe() is histogram-only")
        key = self._key(labels)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = self._series[key] = _HistogramState(len(self.buckets))
            state.bucket_counts[index] += 1
            state.count += 1
            state.sum += value

    # -- reads -------------------------------------------------------------

    def value(self, **labels: Any) -> float:
        """Current value of one counter/gauge child (0.0 if untouched)."""
        if self.kind == "histogram":
            raise TypeError(f"metric {self.name} is a histogram; use summary()")
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def total(self) -> float:
        """Sum over every child (counters/gauges)."""
        if self.kind == "histogram":
            raise TypeError(f"metric {self.name} is a histogram; use summary()")
        with self._lock:
            return float(sum(self._series.values()))

    def summary(self, **labels: Any) -> dict[str, float]:
        """Count/sum/quantiles for one histogram child (or all merged).

        Quantiles are estimated by linear interpolation inside the
        bucket containing the target rank — exact enough for p50/p99
        dashboards, and stable because the buckets are fixed.
        """
        if self.kind != "histogram":
            raise TypeError(f"metric {self.name} is a {self.kind}; summary() is histogram-only")
        with self._lock:
            if labels:
                states = [self._series.get(self._key(labels))]
            else:
                states = list(self._series.values())
            merged = _HistogramState(len(self.buckets))
            for state in states:
                if state is None:
                    continue
                for i, count in enumerate(state.bucket_counts):
                    merged.bucket_counts[i] += count
                merged.count += state.count
                merged.sum += state.sum
        return {
            "count": merged.count,
            "sum": merged.sum,
            "p50": self._quantile(merged, 0.50),
            "p90": self._quantile(merged, 0.90),
            "p99": self._quantile(merged, 0.99),
        }

    def _quantile(self, state: _HistogramState, q: float) -> float:
        if state.count == 0:
            return 0.0
        rank = q * state.count
        seen = 0.0
        for index, count in enumerate(state.bucket_counts):
            if count == 0:
                continue
            if seen + count >= rank:
                lower = 0.0 if index == 0 else self.buckets[index - 1]
                if index >= len(self.buckets):
                    # Overflow bucket: no finite upper bound to
                    # interpolate toward; report its lower edge.
                    return lower
                upper = self.buckets[index]
                fraction = (rank - seen) / count
                return lower + (upper - lower) * fraction
            seen += count
        return self.buckets[-1] if self.buckets else 0.0

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A consistent copy of the family: schema plus every child."""
        with self._lock:
            if self.kind == "histogram":
                series = [
                    {
                        "labels": dict(zip(self.label_names, key)),
                        "buckets": list(state.bucket_counts),
                        "count": state.count,
                        "sum": state.sum,
                    }
                    for key, state in self._series.items()
                ]
            else:
                series = [
                    {"labels": dict(zip(self.label_names, key)), "value": value}
                    for key, value in self._series.items()
                ]
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "bucket_bounds": list(self.buckets),
            "series": series,
        }

    def render(self) -> list[str]:
        """This family in Prometheus text exposition format."""
        lines: list[str] = []
        snap = self.snapshot()
        if not snap["series"]:
            return lines
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for child in sorted(
            snap["series"], key=lambda c: tuple(sorted(c["labels"].items()))
        ):
            key = tuple(child["labels"][name] for name in self.label_names)
            if self.kind != "histogram":
                pairs = _label_pairs(self.label_names, key)
                lines.append(f"{self.name}{pairs} {_format_value(child['value'])}")
                continue
            cumulative = 0
            for bound, count in zip(
                list(self.buckets) + [math.inf], child["buckets"]
            ):
                cumulative += count
                pairs = _label_pairs(
                    self.label_names + ("le",), key + (_format_value(bound),)
                )
                lines.append(f"{self.name}_bucket{pairs} {cumulative}")
            pairs = _label_pairs(self.label_names, key)
            lines.append(f"{self.name}_sum{pairs} {_format_value(child['sum'])}")
            lines.append(f"{self.name}_count{pairs} {child['count']}")
        return lines


class MetricsRegistry:
    """A named set of metric families with a process-wide default.

    Families are get-or-create: calling :meth:`counter` twice with the
    same name returns the same family (a *conflicting* redeclaration —
    different type, labels, or buckets — raises ``ValueError`` instead
    of silently forking the series).

    Args:
        enabled: when False every update is a no-op (reads still work);
            flipped at runtime via :attr:`enabled` — the overhead
            benchmark measures exactly this toggle.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    # -- family constructors -----------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Iterable[str],
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    name, kind, help_text, label_names, buckets, registry=self
                )
                self._families[name] = family
                return family
        if family.kind != kind or family.label_names != label_names:
            raise ValueError(
                f"metric {name} already registered as {family.kind}"
                f"{family.label_names}; cannot redeclare as {kind}{label_names}"
            )
        if kind == "histogram" and buckets is not None:
            if family.buckets != tuple(sorted(float(b) for b in buckets)):
                raise ValueError(
                    f"histogram {name} already registered with buckets "
                    f"{family.buckets}; cannot redeclare with {buckets}"
                )
        return family

    def counter(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> MetricFamily:
        """Get or create a monotonically increasing counter family."""
        return self._family(name, "counter", help_text, labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> MetricFamily:
        """Get or create a set-to-current-value gauge family."""
        return self._family(name, "gauge", help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        """Get or create a fixed-bucket histogram family."""
        return self._family(name, "histogram", help_text, labels, buckets)

    # -- reads and export ----------------------------------------------------

    def get(self, name: str) -> MetricFamily | None:
        """The family registered under ``name``, or None."""
        with self._lock:
            return self._families.get(name)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Every family's consistent snapshot, keyed by name."""
        with self._lock:
            families = list(self._families.values())
        return {family.name: family.snapshot() for family in families}

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        lines: list[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""

    def reset(self) -> None:
        """Drop every family (tests; never called on the hot path)."""
        with self._lock:
            self._families.clear()


def parse_prometheus(text: str) -> dict[str, dict[tuple, float]]:
    """Parse Prometheus text back to ``{metric: {label_tuple: value}}``.

    A deliberately small reader for the round-trip tests and the
    ``repro-tlb top`` scraper — handles exactly what :meth:`render`
    emits (no exemplars, no timestamps). Label tuples are sorted
    ``(name, value)`` pairs so lookups don't depend on emission order.
    """
    metrics: dict[str, dict[tuple, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, rest = line.partition("{")
        if rest:
            label_text, _, value_text = rest.rpartition("} ")
            pairs = []
            for item in _split_labels(label_text):
                key, _, raw = item.partition("=")
                pairs.append((key, raw[1:-1].replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")))
            labels = tuple(sorted(pairs))
        else:
            name, _, value_text = line.partition(" ")
            labels = ()
        value = float("inf") if value_text == "+Inf" else float(value_text)
        metrics.setdefault(name.strip(), {})[labels] = value
    return metrics


def _split_labels(text: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    items: list[str] = []
    depth_quote = False
    current = ""
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\" and depth_quote:
            current += text[index:index + 2]
            index += 2
            continue
        if char == '"':
            depth_quote = not depth_quote
        if char == "," and not depth_quote:
            items.append(current)
            current = ""
        else:
            current += char
        index += 1
    if current:
        items.append(current)
    return items
