"""Declarative SLO rules with firing→resolved alert state tracking.

A :class:`Rule` is a threshold over one journal-backed series (or a
ratio of two): *"the max of ``repro_http_request_seconds_p99`` over
the last 60 s must stay below 1.0"*. The :class:`RuleEngine` evaluates
every rule against a :class:`~repro.obs.journal.MetricsJournal` and
runs each one's alert through a tiny state machine:

    ok ──breach──▶ firing ──recovery──▶ resolved ──breach──▶ firing …

``ok`` means the rule has never fired; ``resolved`` keeps the last
incident visible (when it fired, when it recovered) instead of
silently forgetting it. Each transition is timestamped with the
engine's clock, and the ``repro_alerts_firing`` gauge mirrors the
firing set so ``GET /metrics`` scrapes see active alerts without
calling ``GET /alerts``.

A rule with *no data in its window* does not fire — an idle service
with an empty journal is healthy, not alarming. Everything here is
observation only: no rule influences results, keys, or checkpoints.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ObsError
from repro.obs import REGISTRY
from repro.obs.journal import MetricsJournal

_OBS_ALERTS_FIRING = REGISTRY.gauge(
    "repro_alerts_firing",
    "1 while the named SLO alert is firing, 0 otherwise.",
    labels=("alert",),
)

_OPS: dict[str, Callable[[float, float], bool]] = {
    ">": lambda value, threshold: value > threshold,
    "<": lambda value, threshold: value < threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<=": lambda value, threshold: value <= threshold,
}


@dataclass(frozen=True)
class Rule:
    """One declarative SLO threshold over journal-backed series.

    Args:
        name: stable alert identifier (``service_p99_latency``).
        metric: flattened journal series name.
        op: comparison that *fires* the alert (``value op threshold``).
        threshold: the SLO bound.
        window_seconds: trailing window the aggregation covers.
        aggregate: ``last`` / ``max`` / ``min`` / ``avg`` /
            ``increase`` (see :meth:`MetricsJournal.aggregate`).
        labels: label subset filter; values may use ``fnmatch``
            wildcards.
        denominator_metric: when set, the evaluated value is
            ``metric / denominator_metric`` (both aggregated the same
            way) — how the error-*ratio* rule divides 5xx growth by
            total request growth.
        denominator_labels: label filter for the denominator.
        min_denominator: below this denominator the ratio is treated
            as no-data (three errors out of three requests at boot is
            noise, not an outage).
        component: the ``/healthz`` component this rule degrades.
        severity: free-form label (``warning`` / ``critical``).
        description: one line shown by ``repro-tlb alerts``.
    """

    name: str
    metric: str
    op: str
    threshold: float
    window_seconds: float = 60.0
    aggregate: str = "last"
    labels: dict[str, str] | None = None
    denominator_metric: str | None = None
    denominator_labels: dict[str, str] | None = None
    min_denominator: float = 1.0
    component: str = "service"
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ObsError(
                f"rule {self.name!r}: unknown op {self.op!r}; "
                f"expected one of {tuple(_OPS)}"
            )
        if self.window_seconds <= 0:
            raise ObsError(
                f"rule {self.name!r}: window_seconds must be > 0, "
                f"got {self.window_seconds}"
            )

    def evaluate(
        self, journal: MetricsJournal, now: float | None = None
    ) -> float | None:
        """The rule's current value, or ``None`` when there is no data."""
        value = journal.aggregate(
            self.metric,
            self.window_seconds,
            agg=self.aggregate,
            labels=self.labels,
            now=now,
        )
        if self.denominator_metric is None or value is None:
            return value
        denominator = journal.aggregate(
            self.denominator_metric,
            self.window_seconds,
            agg=self.aggregate,
            labels=self.denominator_labels,
            now=now,
        )
        if denominator is None or denominator < self.min_denominator:
            return None
        return value / denominator

    def breached(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)


@dataclass
class AlertState:
    """Mutable per-rule alert record the engine maintains."""

    rule: Rule
    state: str = "ok"  # ok | firing | resolved
    since: float | None = None  # when the current state was entered
    fired_at: float | None = None  # start of the most recent incident
    resolved_at: float | None = None  # end of the most recent incident
    value: float | None = None  # last evaluated value
    transitions: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.rule.name,
            "state": self.state,
            "since": self.since,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "value": self.value,
            "threshold": self.rule.threshold,
            "op": self.rule.op,
            "metric": self.rule.metric,
            "window_seconds": self.rule.window_seconds,
            "aggregate": self.rule.aggregate,
            "component": self.rule.component,
            "severity": self.rule.severity,
            "description": self.rule.description,
            "transitions": self.transitions,
        }


def default_rules(
    p99_latency_seconds: float = 1.0,
    queue_age_seconds: float = 120.0,
    heartbeat_overdue_seconds: float = 5.0,
    error_ratio: float = 0.10,
    idle_sessions: int = 64,
    shed_per_minute: float = 30.0,
) -> list[Rule]:
    """The service's stock SLO rule set (thresholds overridable).

    Six rules, one per failure mode: slow requests, a backed-up queue,
    workers that stopped heartbeating, a 5xx error ratio, streaming
    sessions piling up idle, and sustained admission load-shedding.
    """
    return [
        Rule(
            name="service_p99_latency",
            metric="repro_http_request_seconds_p99",
            op=">",
            threshold=p99_latency_seconds,
            window_seconds=60.0,
            aggregate="max",
            component="service",
            severity="warning",
            description="service p99 request latency above SLO",
        ),
        Rule(
            name="queue_oldest_claimable_age",
            metric="repro_sched_oldest_queued_age_seconds",
            op=">",
            threshold=queue_age_seconds,
            window_seconds=60.0,
            aggregate="last",
            component="queue",
            severity="warning",
            description="oldest claimable job has waited too long",
        ),
        Rule(
            name="worker_heartbeat_stale",
            metric="repro_sched_lease_overdue_seconds",
            op=">",
            threshold=heartbeat_overdue_seconds,
            window_seconds=60.0,
            aggregate="last",
            component="workers",
            severity="critical",
            description="a running job's lease expired without a heartbeat",
        ),
        Rule(
            name="service_error_ratio",
            metric="repro_http_requests_total",
            op=">",
            threshold=error_ratio,
            window_seconds=120.0,
            aggregate="increase",
            labels={"status": "5*"},
            denominator_metric="repro_http_requests_total",
            min_denominator=10.0,
            component="service",
            severity="critical",
            description="5xx responses above the error-ratio SLO",
        ),
        Rule(
            name="stream_sessions_idle_pileup",
            metric="repro_stream_sessions",
            op=">",
            threshold=float(idle_sessions),
            window_seconds=60.0,
            aggregate="last",
            labels={"state": "active"},
            component="sessions",
            severity="warning",
            description="streaming sessions piling up without eviction",
        ),
        Rule(
            name="admission_shed_rate",
            metric="repro_admission_requests_total",
            op=">",
            threshold=shed_per_minute,
            window_seconds=60.0,
            aggregate="increase",
            labels={"outcome": "shed"},
            component="admission",
            severity="warning",
            description="load shedding above the admission SLO",
        ),
    ]


class RuleEngine:
    """Evaluates a rule set against a journal and tracks alert state.

    Args:
        journal: the series source.
        rules: the SLO rule set; duplicate names are rejected.
        clock: time source for transition timestamps; defaults to the
            journal's clock so injected-clock tests stay consistent.

    Thread-safe via the GIL discipline of its callers: :meth:`evaluate`
    is invoked from the watchdog thread *and* from ``GET /healthz``
    handlers, so state mutation happens under an internal lock.
    """

    def __init__(
        self,
        journal: MetricsJournal,
        rules: list[Rule],
        clock: Callable[[], float] | None = None,
    ) -> None:
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ObsError(f"duplicate rule names in {sorted(names)}")
        self.journal = journal
        self.clock = clock if clock is not None else journal.clock
        self._lock = threading.RLock()
        self._states = {rule.name: AlertState(rule) for rule in rules}

    @property
    def rules(self) -> list[Rule]:
        return [state.rule for state in self._states.values()]

    def evaluate(self, now: float | None = None) -> list[dict[str, Any]]:
        """Evaluate every rule once; returns the alert records."""
        ts = self.clock() if now is None else now
        with self._lock:
            for state in self._states.values():
                value = state.rule.evaluate(self.journal, now=ts)
                state.value = value
                breached = value is not None and state.rule.breached(value)
                if breached and state.state != "firing":
                    state.state = "firing"
                    state.since = ts
                    state.fired_at = ts
                    state.transitions += 1
                elif not breached and state.state == "firing":
                    state.state = "resolved"
                    state.since = ts
                    state.resolved_at = ts
                    state.transitions += 1
                _OBS_ALERTS_FIRING.set(
                    1.0 if state.state == "firing" else 0.0,
                    alert=state.rule.name,
                )
            return [state.to_dict() for state in self._states.values()]

    def alerts(self) -> list[dict[str, Any]]:
        """Current alert records without re-evaluating."""
        with self._lock:
            return [state.to_dict() for state in self._states.values()]

    def firing(self) -> list[str]:
        """Names of the alerts currently firing."""
        with self._lock:
            return [
                name
                for name, state in self._states.items()
                if state.state == "firing"
            ]

    def components_degraded(self) -> dict[str, list[str]]:
        """Firing alert names grouped by the component they degrade."""
        with self._lock:
            degraded: dict[str, list[str]] = {}
            for state in self._states.values():
                if state.state == "firing":
                    degraded.setdefault(state.rule.component, []).append(
                        state.rule.name
                    )
            return degraded
