"""Timing parameters for the execution-cycle model.

The paper's Table 3 experiment runs sim-outorder with a 4-wide issue
core, charges a constant 100-cycle TLB miss penalty, and services every
prefetch-related operation (RP pointer manipulation or an actual entry
fetch, for either scheme) from main memory at 50 cycles. Those three
numbers — plus the instruction-per-reference density that converts a
reference index into a base cycle count — are the whole timing model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TimingParameters:
    """Cycle costs for :func:`repro.sim.cycle.simulate_cycles`.

    Attributes:
        tlb_miss_penalty: CPU stall cycles for a demand TLB fill (the
            paper assumes a constant 100).
        prefetch_op_cost: cycles per prefetch-related memory operation
            (pointer manipulation or entry fetch; the paper uses 50).
        issue_width: instructions issued per cycle (4 in the paper).
        instructions_per_reference: average instructions between
            successive data references; with ``issue_width`` this sets
            the base (stall-free) cycles between misses. The default of
            12 (3 base cycles per reference at 4-wide issue) calibrates
            the no-prefetch stall fraction of the high-miss apps to the
            plausible range of the paper's sim-outorder runs; the
            normalized-cycle *orderings* are insensitive to it.
        pointer_ops_pipelined: if True, model RP's four stack-pointer
            writes as one pipelined transaction (a single 50-cycle
            channel slot). The paper's default — and this model's —
            serializes them ("RP requires as many as 6 possible memory
            system references upon a TLB miss"), so RP loads the
            prefetch channel with ~300 cycles per miss. That exceeds
            the inter-miss gap of every Table 3 application, which is
            precisely why RP's timed gains evaporate there while its
            sim-cache accuracy stays high.
        max_queue_backlog: maximum outstanding prefetch-channel
            operations; when the backlog is at the limit, further
            operations are dropped (a full hardware write queue
            coalesces/discards stale pointer updates, and prefetch
            issues are suppressed). Bounding the queue keeps in-flight
            stalls finite, which is what pins saturated-RP runs (mcf)
            near the paper's 1.09 instead of diverging.
        stall_exposure: fraction of each stall the CPU actually loses.
            The paper times a 4-wide out-of-order sim-outorder core,
            which overlaps part of every TLB-miss stall with useful
            work; this in-order timeline models that by exposing only
            this fraction (calibration: 2/3).
        walk_contention: fraction of one memory-op time the demand page
            walk loses to pending stack-pointer writes when it finds
            the prefetch channel busy (the pointer writes touch the
            same page-table banks the walk must read). Only mechanisms
            with overhead traffic — RP — ever pay it; it is the loss
            channel that puts saturated RP *above* 1.0 on mcf, as in
            the paper's Table 3.
    """

    tlb_miss_penalty: int = 100
    prefetch_op_cost: int = 50
    issue_width: int = 4
    instructions_per_reference: float = 12.0
    pointer_ops_pipelined: bool = False
    max_queue_backlog: int = 8
    stall_exposure: float = 2.0 / 3.0
    walk_contention: float = 0.25

    def __post_init__(self) -> None:
        if self.tlb_miss_penalty < 0:
            raise ConfigurationError("tlb_miss_penalty must be >= 0")
        if self.prefetch_op_cost < 0:
            raise ConfigurationError("prefetch_op_cost must be >= 0")
        if self.issue_width <= 0:
            raise ConfigurationError("issue_width must be > 0")
        if self.instructions_per_reference <= 0:
            raise ConfigurationError("instructions_per_reference must be > 0")

    @property
    def cycles_per_reference(self) -> float:
        """Base pipeline cycles consumed per memory reference."""
        return self.instructions_per_reference / self.issue_width


#: The paper's Table 3 parameters.
PAPER_TIMING = TimingParameters()
