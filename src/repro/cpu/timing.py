"""A minimal core timeline: base progress plus accumulated stalls.

The cycle experiment does not need a full out-of-order core model —
normalized cycles depend only on (a) how far apart misses are in base
cycles and (b) how long each miss stalls the CPU. ``CoreTimeline``
tracks exactly that: ``now = ref_index * cycles_per_reference +
total_stall``, with :meth:`stall` accumulating miss and in-flight
delays.
"""

from __future__ import annotations

from repro.cpu.costs import TimingParameters


class CoreTimeline:
    """Monotonic CPU clock over a reference stream.

    Args:
        params: cycle-cost parameters.

    The timeline is advanced in two ways: :meth:`advance_to_reference`
    moves base time forward to a reference index, and :meth:`stall`
    charges stall cycles (which shift everything after them).
    """

    def __init__(self, params: TimingParameters) -> None:
        self.params = params
        self.total_stall_cycles = 0.0
        self._base_cycles = 0.0

    def advance_to_reference(self, ref_index: int) -> float:
        """Move base time to ``ref_index``; returns the current clock."""
        self._base_cycles = ref_index * self.params.cycles_per_reference
        return self.now

    def stall(self, cycles: float) -> None:
        """Charge the CPU ``cycles`` of stall (non-negative)."""
        if cycles > 0:
            self.total_stall_cycles += cycles

    @property
    def now(self) -> float:
        """Current cycle count: base progress plus all stalls so far."""
        return self._base_cycles + self.total_stall_cycles

    def finish(self, total_references: int) -> float:
        """Total cycles after the last reference retires."""
        return (
            total_references * self.params.cycles_per_reference
            + self.total_stall_cycles
        )
