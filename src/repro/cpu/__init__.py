"""CPU-side timing substrate for the execution-cycle experiments.

- :mod:`repro.cpu.costs` — the timing parameters of the paper's
  sim-outorder experiment (Section 3.2, Table 3).
- :mod:`repro.cpu.timing` — the in-order core abstraction that spaces
  TLB misses in time and accumulates stalls.
"""

from repro.cpu.costs import TimingParameters
from repro.cpu.timing import CoreTimeline

__all__ = ["CoreTimeline", "TimingParameters"]
