"""The persistent, concurrent-safe experiment store.

On-disk layout (everything lives under one root directory)::

    <root>/
        index.sqlite          # entry index + persistent counters
        results/<key>.json    # one executed RunSpec, by RunSpec.key()
        streams/<digest>.npz  # one filtered miss stream (trace_io format)
        ckpt/<key>.bin        # one checkpoint blob (repro.ckpt format)

Design points:

- **Content addressing.** Result artifacts are named by the spec's
  stable :meth:`~repro.run.spec.RunSpec.key` (engine excluded — engines
  are bit-identical by contract, so one copy serves both). Stream
  artifacts are named by a digest of the stream identity
  (:func:`stream_digest_for_spec` / :func:`stream_digest_for_trace`).
- **Atomic writes.** Every artifact is written to a temporary file in
  the same directory and ``os.replace``-d into place, so concurrent
  writers of the same key race to an *identical* final state and a
  reader never observes a torn file.
- **Schema versioning.** The index records :data:`STORE_SCHEMA`; both
  the index and every artifact are checked on read, and a mismatch
  raises :class:`~repro.errors.StoreError` rather than guessing.
- **LRU garbage collection.** Entries carry sizes and access times;
  :meth:`ExperimentStore.gc` evicts least-recently-used entries until
  the store fits ``max_bytes``, skipping entries pinned by a reader.
- **Accounting.** Hits, misses, evictions and bytes moved are kept in
  the index (persistent across processes) and exposed by
  :meth:`ExperimentStore.stats` — the counters the resumable-sweep
  guarantees are verified against.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import re
import sqlite3
import threading
import time
import zipfile
from collections import Counter
from contextlib import contextmanager
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.errors import StoreError, TraceError
from repro.mem.trace import MissTrace
from repro.mem.trace_io import load_miss_trace, save_miss_trace
from repro.obs import REGISTRY, trace
from repro.run.results import ResultSet
from repro.sim.stats import PrefetchRunStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner -> store)
    from repro.run.spec import RunSpec
    from repro.sim.config import TLBConfig

#: Version stamp shared by the SQLite index and every result artifact.
STORE_SCHEMA = "repro.store/v1"

_RESULT = "result"
_STREAM = "stream"
_CKPT = "ckpt"
_KINDS = (_RESULT, _STREAM, _CKPT)

#: Characters allowed verbatim in a checkpoint artifact filename; any
#: other key is stored under a digest of itself instead.
_SAFE_CKPT_KEY = re.compile(r"^[A-Za-z0-9._-]+$")

#: Errors that mean "this artifact is damaged", translated to StoreError.
_ARTIFACT_ERRORS = (
    json.JSONDecodeError,
    zipfile.BadZipFile,
    TraceError,
    ValueError,
    KeyError,
    EOFError,
    OSError,
)

_tmp_counter = itertools.count()

#: This process's share of the persistent index counters (hits, misses,
#: evictions, bytes moved), mirrored into the metrics registry at
#: ``_bump`` time so ``GET /metrics`` sees live deltas without reading
#: SQLite. The persistent counters in the index remain authoritative.
_OBS_COUNTERS = REGISTRY.counter(
    "repro_store_events_total",
    "Store accounting events (hits, misses, evictions, bytes) this process.",
    labels=("name",),
)
_OBS_LOOKUPS = REGISTRY.counter(
    "repro_store_lookups_total",
    "Keyed store lookups by artifact kind (each resolves to a hit or miss).",
    labels=("kind",),
)
_OBS_OP_SECONDS = REGISTRY.histogram(
    "repro_store_op_seconds",
    "Store operation latency by operation.",
    labels=("op",),
)

#: Temporary files younger than this survive the GC sweep: they may be
#: an in-flight write from a live process in the tmp→rename window, and
#: unlinking one would crash that writer's ``os.replace``. Anything
#: older is an abandoned write from a crashed process.
_TMP_SWEEP_AGE_SECONDS = 3600.0


def stream_digest_for_spec(spec: "RunSpec") -> str:
    """Stable digest of the miss stream a registry-workload spec replays.

    Derived from :meth:`RunSpec.stream_key` — every field that affects
    phase-1 TLB filtering and nothing else, so specs differing only in
    mechanism/buffer/clamp share one stored stream.
    """
    canonical = "stream;" + ";".join(repr(part) for part in spec.stream_key())
    return hashlib.sha256(canonical.encode()).hexdigest()[:24]


def stream_digest_for_trace(
    content_key: str, tlb: "TLBConfig", warmup_fraction: float
) -> str:
    """Stable digest for an ad-hoc trace's filtered stream.

    Mirrors the in-memory cache key the :class:`~repro.run.runner.Runner`
    uses for :class:`~repro.mem.trace.ReferenceTrace` sources: the trace
    *content* digest (page size is already baked into the content) plus
    the filtering TLB shape and warm-up window.
    """
    canonical = (
        f"trace-stream;content={content_key};"
        f"tlb={tlb.entries},{tlb.ways};warmup={warmup_fraction!r}"
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:24]


class ExperimentStore:
    """A durable, content-addressed cache of runs and miss streams.

    Args:
        root: store directory; created (with parents) if missing.
        max_bytes: optional size bound — when set, every write is
            followed by an LRU :meth:`gc` pass down to this budget.

    Instances are safe to share between threads (one internal lock
    serializes index access) and the on-disk format is safe to share
    between processes (WAL SQLite + atomic artifact writes).
    """

    def __init__(self, root: str | Path, max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise StoreError(f"max_bytes must be >= 0, got {max_bytes}")
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise StoreError(f"store root {self.root} exists and is not a directory")
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self._pins: Counter[tuple[str, str]] = Counter()
        (self.root / "results").mkdir(parents=True, exist_ok=True)
        (self.root / "streams").mkdir(parents=True, exist_ok=True)
        (self.root / "ckpt").mkdir(parents=True, exist_ok=True)
        self._db = sqlite3.connect(
            self.root / "index.sqlite",
            timeout=30.0,
            check_same_thread=False,
            isolation_level=None,  # autocommit; explicit BEGIN for batches
        )
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.execute("PRAGMA busy_timeout=30000")
        self._init_schema()

    # -- lifecycle ---------------------------------------------------------

    def _init_schema(self) -> None:
        with self._lock:
            self._db.execute("BEGIN IMMEDIATE")
            try:
                self._db.execute(
                    "CREATE TABLE IF NOT EXISTS meta "
                    "(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
                )
                self._db.execute(
                    "CREATE TABLE IF NOT EXISTS entries ("
                    " kind TEXT NOT NULL,"
                    " key TEXT NOT NULL,"
                    " path TEXT NOT NULL,"
                    " size_bytes INTEGER NOT NULL,"
                    " created_at REAL NOT NULL,"
                    " last_access REAL NOT NULL,"
                    " workload TEXT,"
                    " mechanism TEXT,"
                    " PRIMARY KEY (kind, key))"
                )
                self._db.execute(
                    "CREATE TABLE IF NOT EXISTS counters "
                    "(name TEXT PRIMARY KEY, value INTEGER NOT NULL)"
                )
                # Tenant visibility grants (multi-tenant service). This
                # is a *lazy migration*: artifacts stay shared and
                # content-addressed (dedup and byte-identity untouched);
                # the table only records which tenant namespaces may
                # *see* which keys. Pre-tenant stores gain the empty
                # table on their next open — no version bump needed,
                # because absent rows simply mean "no grants yet".
                self._db.execute(
                    "CREATE TABLE IF NOT EXISTS tenant_keys ("
                    " tenant TEXT NOT NULL,"
                    " kind TEXT NOT NULL,"
                    " key TEXT NOT NULL,"
                    " PRIMARY KEY (tenant, kind, key))"
                )
                seq = self._db.execute(
                    "SELECT value FROM counters WHERE name='access_seq'"
                ).fetchone()
                if seq is None:
                    # Migrate a pre-counter store: seed the LRU clock
                    # just past the largest wall-clock recency already
                    # recorded, so existing entries keep their relative
                    # order and every new access sorts after them.
                    seed = self._db.execute(
                        "SELECT CAST(MAX(last_access) AS INTEGER) FROM entries"
                    ).fetchone()[0]
                    self._db.execute(
                        "INSERT INTO counters (name, value) "
                        "VALUES ('access_seq', ?)",
                        (int(seed or 0),),
                    )
                row = self._db.execute(
                    "SELECT value FROM meta WHERE key='schema'"
                ).fetchone()
                if row is None:
                    self._db.execute(
                        "INSERT INTO meta (key, value) VALUES ('schema', ?)",
                        (STORE_SCHEMA,),
                    )
                elif row[0] != STORE_SCHEMA:
                    raise StoreError(
                        f"store at {self.root} has schema {row[0]!r}; this "
                        f"library reads {STORE_SCHEMA!r} — use a fresh "
                        "directory or migrate the store"
                    )
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise

    def close(self) -> None:
        """Close the index connection (artifacts need no teardown)."""
        with self._lock:
            self._db.close()

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ExperimentStore({str(self.root)!r}, max_bytes={self.max_bytes})"

    @property
    def journal_path(self) -> Path:
        """Where the telemetry journal lives: beside ``index.sqlite``.

        The journal is operational history, not an artifact — it sits
        next to the indexes (like ``jobs.sqlite``) rather than inside
        ``results/``/``streams/``/``ckpt/``, so :meth:`gc` never
        considers it and a budget-pressured store keeps its telemetry.
        """
        return self.root / "telemetry.sqlite"

    # -- small internals ---------------------------------------------------

    def _bump(self, name: str, delta: int = 1) -> None:
        self._db.execute(
            "INSERT INTO counters (name, value) VALUES (?, ?) "
            "ON CONFLICT(name) DO UPDATE SET value = value + excluded.value",
            (name, delta),
        )
        if name != "access_seq":
            _OBS_COUNTERS.inc(delta, name=name)

    def _next_access(self) -> int:
        """Advance the persistent LRU clock and return its new value.

        Entry recency used to be wall-clock ``time.time()``: an NTP
        step (or two touches inside one clock tick) could reorder —
        or tie — entries and make :meth:`gc` eviction order depend on
        the host clock, occasionally evicting the most-recently-used
        artifact. The monotonic ``access_seq`` counter lives in the
        ``counters`` table, so recency survives reopens, is shared
        across processes (the upsert is serialized by SQLite), and
        never ties.
        """
        return self._db.execute(
            "INSERT INTO counters (name, value) VALUES ('access_seq', 1) "
            "ON CONFLICT(name) DO UPDATE SET value = value + 1 "
            "RETURNING value"
        ).fetchone()[0]

    def _write_atomic(self, final: Path, data: bytes) -> None:
        tmp = final.parent / f".{final.name}.{os.getpid()}.{next(_tmp_counter)}.tmp"
        tmp.write_bytes(data)
        os.replace(tmp, final)

    def _record_entry(
        self,
        kind: str,
        key: str,
        rel_path: str,
        size: int,
        workload: str | None,
        mechanism: str | None,
    ) -> None:
        self._db.execute(
            "INSERT INTO entries "
            "(kind, key, path, size_bytes, created_at, last_access, workload,"
            " mechanism) VALUES (?, ?, ?, ?, ?, ?, ?, ?) "
            "ON CONFLICT(kind, key) DO UPDATE SET path=excluded.path,"
            " size_bytes=excluded.size_bytes, last_access=excluded.last_access,"
            " workload=excluded.workload, mechanism=excluded.mechanism",
            (
                kind,
                key,
                rel_path,
                size,
                time.time(),
                self._next_access(),
                workload,
                mechanism,
            ),
        )
        self._bump("bytes_written", size)

    def _touch(self, kind: str, key: str) -> None:
        self._db.execute(
            "UPDATE entries SET last_access=? WHERE kind=? AND key=?",
            (self._next_access(), kind, key),
        )

    def _drop_entry(self, kind: str, key: str) -> None:
        self._db.execute(
            "DELETE FROM entries WHERE kind=? AND key=?", (kind, key)
        )

    @contextmanager
    def pinned(self, key: str, kind: str = _RESULT) -> Iterator[None]:
        """Protect one entry from :meth:`gc` for the duration of a read.

        Reads performed through the store's own methods hold the index
        lock and are already atomic with respect to in-process GC; this
        context manager is for callers that hold on to an artifact path
        across their own multi-step read.

        Pins are **process-local**: they guard against GC run through
        any handle in this process (threads included), not against a
        ``cache gc`` launched from another process. Cross-process, the
        store's own read methods stay safe anyway — an artifact deleted
        between index lookup and file read is reported as an honest
        miss, never a torn read — but a path held across a multi-step
        external read can dangle if another process collects it.
        """
        handle = (kind, key)
        with self._lock:
            self._pins[handle] += 1
        try:
            yield
        finally:
            with self._lock:
                self._pins[handle] -= 1
                if self._pins[handle] <= 0:
                    del self._pins[handle]

    # -- results -----------------------------------------------------------

    def has_result(self, key: str) -> bool:
        """Index-only presence probe: no counters, no artifact read.

        For callers that need to *report* on cache state (e.g. the
        service's per-request hit accounting) without perturbing the
        hit/miss counters or paying a file read.
        """
        with self._lock:
            return (
                self._db.execute(
                    "SELECT 1 FROM entries WHERE kind=? AND key=?", (_RESULT, key)
                ).fetchone()
                is not None
            )

    def get_result(self, key: str) -> PrefetchRunStats | None:
        """Stored row for a spec key, or ``None`` (counted as hit/miss).

        Raises :class:`~repro.errors.StoreError` if the artifact exists
        but cannot be decoded (truncated/corrupt file).
        """
        _OBS_LOOKUPS.inc(kind=_RESULT)
        with self._lock:
            row = self._db.execute(
                "SELECT path FROM entries WHERE kind=? AND key=?", (_RESULT, key)
            ).fetchone()
            if row is None:
                self._bump("result_misses")
                return None
            path = self.root / row[0]
            try:
                data = path.read_bytes()
            except FileNotFoundError:
                # Another process GC'd the artifact after we indexed it:
                # drop the stale row and report an honest miss.
                self._drop_entry(_RESULT, key)
                self._bump("result_misses")
                return None
            stats = self._decode_result(path, data)
            self._touch(_RESULT, key)
            self._bump("result_hits")
            self._bump("bytes_read", len(data))
            return stats

    @staticmethod
    def _decode_result(path: Path, data: bytes) -> PrefetchRunStats:
        try:
            payload = json.loads(data)
            schema = payload["schema"]
            run = payload["run"]
            if schema != STORE_SCHEMA:
                raise StoreError(
                    f"{path}: artifact schema {schema!r} is not {STORE_SCHEMA!r}"
                )
            if not isinstance(run, dict):
                raise StoreError(f"{path}: 'run' is not an object")
            return PrefetchRunStats(**run)
        except StoreError:
            raise
        except (_ARTIFACT_ERRORS + (TypeError,)) as exc:
            raise StoreError(
                f"{path}: corrupt result artifact "
                f"({type(exc).__name__}: {exc}); delete it or run gc"
            ) from exc

    def put_result(self, spec: "RunSpec", stats: PrefetchRunStats) -> str:
        """Store one executed spec; returns its key."""
        return self.put_results([(spec, stats)])[0]

    def put_results(
        self, pairs: Iterable[tuple["RunSpec", PrefetchRunStats]]
    ) -> list[str]:
        """Store a batch of executed specs in one index transaction.

        The cold-sweep write-back path, kept inside the smoke bench's
        <5% ``store_cold_overhead_fraction`` budget: rows are
        serialized compactly up front (a shallow field copy — every
        stats field is a JSON scalar except ``extra`` — instead of
        ``dataclasses.asdict``'s deep recursion), artifacts are written
        before the transaction opens so the index write lock is never
        held across file I/O, and the whole batch costs three index
        statements (one LRU-clock advance, one ``executemany`` of entry
        rows, one byte-counter bump) rather than three per spec.
        """
        pairs = list(pairs)
        began = time.perf_counter()
        keys: list[str] = []
        encoded: list[tuple[str, str, bytes, str, str]] = []
        for spec, stats in pairs:
            key = spec.key()
            rel = f"results/{key}.json"
            run = dict(vars(stats))
            run["extra"] = dict(run["extra"])
            payload = {
                "schema": STORE_SCHEMA,
                "key": key,
                "spec": spec.to_dict(),
                "run": run,
            }
            data = (
                json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
            ).encode()
            encoded.append((key, rel, data, spec.workload, spec.mechanism.label))
            keys.append(key)
        with trace("store.put_results", count=len(pairs)), self._lock:
            for _, rel, data, _, _ in encoded:
                self._write_atomic(self.root / rel, data)
            now = time.time()
            self._db.execute("BEGIN IMMEDIATE")
            try:
                if encoded:
                    # One LRU-clock advance covers the batch; entry i
                    # takes seq base+i+1, preserving relative recency.
                    base = (
                        self._db.execute(
                            "INSERT INTO counters (name, value) "
                            "VALUES ('access_seq', ?) "
                            "ON CONFLICT(name) DO UPDATE SET "
                            "value = value + excluded.value RETURNING value",
                            (len(encoded),),
                        ).fetchone()[0]
                        - len(encoded)
                    )
                    self._db.executemany(
                        "INSERT INTO entries "
                        "(kind, key, path, size_bytes, created_at, last_access,"
                        " workload, mechanism) VALUES (?, ?, ?, ?, ?, ?, ?, ?) "
                        "ON CONFLICT(kind, key) DO UPDATE SET path=excluded.path,"
                        " size_bytes=excluded.size_bytes,"
                        " last_access=excluded.last_access,"
                        " workload=excluded.workload,"
                        " mechanism=excluded.mechanism",
                        [
                            (
                                _RESULT, key, rel, len(data), now, base + i + 1,
                                workload, mechanism,
                            )
                            for i, (key, rel, data, workload, mechanism)
                            in enumerate(encoded)
                        ],
                    )
                    self._bump(
                        "bytes_written", sum(len(data) for _, _, data, _, _ in encoded)
                    )
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
        _OBS_OP_SECONDS.observe(time.perf_counter() - began, op="put_results")
        if self.max_bytes is not None:
            self.gc()
        return keys

    def count_results(self) -> int:
        """Number of stored runs (index-only; backs pagination totals)."""
        with self._lock:
            (count,) = self._db.execute(
                "SELECT COUNT(*) FROM entries WHERE kind=?", (_RESULT,)
            ).fetchone()
        return count

    def load_results(
        self, limit: int | None = None, offset: int = 0
    ) -> ResultSet:
        """Stored runs as one :class:`ResultSet` (insertion order).

        The bulk read behind ``GET /results``; does not touch the
        hit/miss counters (those account keyed lookups). ``limit`` /
        ``offset`` page at the *index* level, so reading one page costs
        one page of artifact reads, not the whole store.
        """
        query = (
            "SELECT path FROM entries WHERE kind=? "
            "ORDER BY created_at ASC, key ASC"
        )
        params: list = [_RESULT]
        if limit is not None or offset:
            # SQLite requires a LIMIT clause to use OFFSET; -1 = no limit.
            query += " LIMIT ? OFFSET ?"
            params += [-1 if limit is None else limit, offset]
        with self._lock:
            rows = self._db.execute(query, params).fetchall()
        # Read artifacts outside the index lock: a bulk read must not
        # stall concurrent keyed lookups. An artifact GC'd between the
        # snapshot and its read is simply skipped.
        runs: list[PrefetchRunStats] = []
        total = 0
        for (rel,) in rows:
            path = self.root / rel
            try:
                data = path.read_bytes()
            except FileNotFoundError:
                continue
            runs.append(self._decode_result(path, data))
            total += len(data)
        with self._lock:
            self._bump("bytes_read", total)
        return ResultSet(runs)

    # -- miss streams ------------------------------------------------------

    def get_stream(self, digest: str) -> MissTrace | None:
        """Stored miss stream for a digest, or ``None``."""
        _OBS_LOOKUPS.inc(kind=_STREAM)
        with self._lock:
            row = self._db.execute(
                "SELECT path FROM entries WHERE kind=? AND key=?",
                (_STREAM, digest),
            ).fetchone()
            if row is None:
                self._bump("stream_misses")
                return None
            path = self.root / row[0]
            if not path.exists():
                self._drop_entry(_STREAM, digest)
                self._bump("stream_misses")
                return None
            try:
                stream = load_miss_trace(path)
            except _ARTIFACT_ERRORS as exc:
                raise StoreError(
                    f"{path}: corrupt miss-stream artifact "
                    f"({type(exc).__name__}: {exc}); delete it or run gc"
                ) from exc
            self._touch(_STREAM, digest)
            self._bump("stream_hits")
            self._bump("bytes_read", path.stat().st_size)
            return stream

    def put_stream(self, digest: str, stream: MissTrace) -> str:
        """Store one filtered miss stream under ``digest``."""
        rel = f"streams/{digest}.npz"
        final = self.root / rel
        began = time.perf_counter()
        with self._lock:
            tmp = (
                final.parent
                / f".{final.name}.{os.getpid()}.{next(_tmp_counter)}.tmp.npz"
            )
            save_miss_trace(stream, tmp)
            os.replace(tmp, final)
            size = final.stat().st_size
            self._db.execute("BEGIN IMMEDIATE")
            try:
                self._record_entry(_STREAM, digest, rel, size, stream.name, None)
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
        _OBS_OP_SECONDS.observe(time.perf_counter() - began, op="put_stream")
        if self.max_bytes is not None:
            self.gc()
        return digest

    # -- checkpoint blobs --------------------------------------------------

    @staticmethod
    def _ckpt_rel(key: str) -> str:
        """Artifact path for a checkpoint key.

        Filesystem-safe keys (content digests, mostly) map to
        ``ckpt/<key>.bin`` directly; anything else — continuation and
        session record keys contain ``:`` — is filed under a digest of
        the key so no key can escape the ``ckpt/`` directory.
        """
        if _SAFE_CKPT_KEY.match(key):
            return f"ckpt/{key}.bin"
        return f"ckpt/{hashlib.sha256(key.encode()).hexdigest()[:32]}.bin"

    def put_ckpt(self, key: str, blob: bytes) -> str:
        """Store one opaque checkpoint blob under ``key``; returns it.

        The store does not interpret the bytes — framing, schema and
        integrity are :mod:`repro.ckpt`'s concern — it only files,
        indexes, and garbage-collects them like any other artifact.
        """
        rel = self._ckpt_rel(key)
        with self._lock:
            self._write_atomic(self.root / rel, blob)
            self._db.execute("BEGIN IMMEDIATE")
            try:
                self._record_entry(_CKPT, key, rel, len(blob), None, None)
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
        if self.max_bytes is not None:
            self.gc()
        return key

    def get_ckpt(self, key: str) -> bytes | None:
        """Stored checkpoint blob for ``key``, or ``None`` (counted)."""
        _OBS_LOOKUPS.inc(kind=_CKPT)
        with self._lock:
            row = self._db.execute(
                "SELECT path FROM entries WHERE kind=? AND key=?", (_CKPT, key)
            ).fetchone()
            if row is None:
                self._bump("ckpt_misses")
                return None
            path = self.root / row[0]
            try:
                blob = path.read_bytes()
            except FileNotFoundError:
                self._drop_entry(_CKPT, key)
                self._bump("ckpt_misses")
                return None
            self._touch(_CKPT, key)
            self._bump("ckpt_hits")
            self._bump("bytes_read", len(blob))
            return blob

    def has_ckpt(self, key: str) -> bool:
        """Index-only presence probe (no counters, no artifact read)."""
        with self._lock:
            return (
                self._db.execute(
                    "SELECT 1 FROM entries WHERE kind=? AND key=?", (_CKPT, key)
                ).fetchone()
                is not None
            )

    def delete_ckpt(self, key: str) -> bool:
        """Remove one checkpoint blob; True if it existed."""
        with self._lock:
            row = self._db.execute(
                "SELECT path FROM entries WHERE kind=? AND key=?", (_CKPT, key)
            ).fetchone()
            if row is None:
                return False
            (self.root / row[0]).unlink(missing_ok=True)
            self._drop_entry(_CKPT, key)
            return True

    def ckpt_keys(self, prefix: str = "") -> list[str]:
        """Stored checkpoint keys (optionally prefix-filtered), sorted."""
        with self._lock:
            rows = self._db.execute(
                "SELECT key FROM entries WHERE kind=? ORDER BY key ASC", (_CKPT,)
            ).fetchall()
        return [key for (key,) in rows if key.startswith(prefix)]

    # -- tenant visibility grants ------------------------------------------

    def grant(self, tenant: str, kind: str, keys: Iterable[str]) -> None:
        """Make ``keys`` of ``kind`` visible to ``tenant``.

        Grants are an ACL over the shared content-addressed artifacts,
        not copies: two tenants submitting the same spec share one
        stored row and each holds a grant to it. Granting an existing
        pair is a no-op (idempotent, like the artifact writes).
        """
        if not tenant:
            raise StoreError("tenant must be a non-empty string")
        if kind not in _KINDS:
            raise StoreError(f"unknown entry kind {kind!r}; expected {_KINDS}")
        rows = [(tenant, kind, key) for key in keys]
        if not rows:
            return
        with self._lock:
            self._db.execute("BEGIN IMMEDIATE")
            try:
                self._db.executemany(
                    "INSERT OR IGNORE INTO tenant_keys (tenant, kind, key) "
                    "VALUES (?, ?, ?)",
                    rows,
                )
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise

    def is_granted(self, tenant: str, kind: str, key: str) -> bool:
        """Whether ``tenant`` may see ``kind``/``key``."""
        with self._lock:
            row = self._db.execute(
                "SELECT 1 FROM tenant_keys WHERE tenant=? AND kind=? AND key=?",
                (tenant, kind, key),
            ).fetchone()
        return row is not None

    def granted_keys(self, tenant: str, kind: str) -> set[str]:
        """Every ``kind`` key visible to ``tenant``."""
        with self._lock:
            rows = self._db.execute(
                "SELECT key FROM tenant_keys WHERE tenant=? AND kind=?",
                (tenant, kind),
            ).fetchall()
        return {key for (key,) in rows}

    # -- introspection -----------------------------------------------------

    def entries(self, kind: str | None = None) -> list[dict[str, Any]]:
        """Index rows as dictionaries, most recently used first."""
        if kind is not None and kind not in _KINDS:
            raise StoreError(f"unknown entry kind {kind!r}; expected {_KINDS}")
        query = (
            "SELECT kind, key, path, size_bytes, created_at, last_access,"
            " workload, mechanism FROM entries"
        )
        params: tuple = ()
        if kind is not None:
            query += " WHERE kind=?"
            params = (kind,)
        query += " ORDER BY last_access DESC, key ASC"
        with self._lock:
            rows = self._db.execute(query, params).fetchall()
        names = (
            "kind", "key", "path", "size_bytes", "created_at", "last_access",
            "workload", "mechanism",
        )
        return [dict(zip(names, row)) for row in rows]

    def stats(self) -> dict[str, Any]:
        """Counts, sizes and the persistent hit/miss/bytes counters."""
        with self._lock:
            per_kind = {
                kind: (count, size)
                for kind, count, size in self._db.execute(
                    "SELECT kind, COUNT(*), COALESCE(SUM(size_bytes), 0) "
                    "FROM entries GROUP BY kind"
                ).fetchall()
            }
            counters = dict(
                self._db.execute("SELECT name, value FROM counters").fetchall()
            )
        result_count, result_bytes = per_kind.get(_RESULT, (0, 0))
        stream_count, stream_bytes = per_kind.get(_STREAM, (0, 0))
        ckpt_count, ckpt_bytes = per_kind.get(_CKPT, (0, 0))
        return {
            "schema": STORE_SCHEMA,
            "root": str(self.root),
            "max_bytes": self.max_bytes,
            "result_entries": result_count,
            "stream_entries": stream_count,
            "ckpt_entries": ckpt_count,
            "total_bytes": result_bytes + stream_bytes + ckpt_bytes,
            "result_hits": counters.get("result_hits", 0),
            "result_misses": counters.get("result_misses", 0),
            "stream_hits": counters.get("stream_hits", 0),
            "stream_misses": counters.get("stream_misses", 0),
            "ckpt_hits": counters.get("ckpt_hits", 0),
            "ckpt_misses": counters.get("ckpt_misses", 0),
            "evictions": counters.get("evictions", 0),
            "bytes_read": counters.get("bytes_read", 0),
            "bytes_written": counters.get("bytes_written", 0),
        }

    # -- garbage collection ------------------------------------------------

    def gc(self, max_bytes: int | None = None) -> dict[str, int]:
        """Evict least-recently-used entries down to a byte budget.

        Args:
            max_bytes: budget for this pass; defaults to the store's
                configured :attr:`max_bytes`. ``None`` for both means
                only stale temporary files are swept.

        Entries currently :meth:`pinned` by a reader in this process are
        never evicted, whatever the budget. Returns a report dictionary
        with ``evicted``, ``reclaimed_bytes`` and ``total_bytes``.
        """
        limit = self.max_bytes if max_bytes is None else max_bytes
        evicted = 0
        reclaimed = 0
        with self._lock:
            # Sweep temporaries abandoned by a crashed writer — but only
            # old ones: a *fresh* tmp file may belong to a concurrent
            # writer between its write and its atomic rename.
            now = time.time()
            for subdir in ("results", "streams", "ckpt"):
                for stale in (self.root / subdir).glob(".*.tmp*"):
                    try:
                        if now - stale.stat().st_mtime >= _TMP_SWEEP_AGE_SECONDS:
                            stale.unlink(missing_ok=True)
                    except OSError:
                        continue  # vanished mid-sweep (the writer renamed it)
            rows = self._db.execute(
                "SELECT kind, key, path, size_bytes FROM entries "
                "ORDER BY last_access ASC, key ASC"
            ).fetchall()
            total = sum(row[3] for row in rows)
            if limit is not None:
                self._db.execute("BEGIN IMMEDIATE")
                try:
                    for kind, key, rel, size in rows:
                        if total <= limit:
                            break
                        if self._pins.get((kind, key)):
                            continue
                        (self.root / rel).unlink(missing_ok=True)
                        self._drop_entry(kind, key)
                        total -= size
                        reclaimed += size
                        evicted += 1
                    if evicted:
                        self._bump("evictions", evicted)
                    self._db.execute("COMMIT")
                except BaseException:
                    self._db.execute("ROLLBACK")
                    raise
        return {
            "evicted": evicted,
            "reclaimed_bytes": reclaimed,
            "total_bytes": total,
        }
