"""Persistent experiment store: content-addressed runs and miss streams.

The store turns the process-local caches of :mod:`repro.run` into a
durable, concurrent-safe layer on disk:

- **Results** — one JSON artifact per executed
  :class:`~repro.run.spec.RunSpec`, addressed by the spec's stable
  :meth:`~repro.run.spec.RunSpec.key`, so a sweep re-run against the
  same store replays only the specs it has never seen.
- **Miss streams** — the expensive phase-1 intermediates, persisted in
  the versioned ``trace_io`` ``.npz`` format and addressed by a digest
  of the stream identity (workload/scale/TLB/warm-up/page size, or a
  :meth:`~repro.mem.trace.ReferenceTrace.content_key` for ad-hoc
  traces).

A SQLite index tracks sizes and access times for size-bounded LRU
garbage collection; artifact writes are atomic (tmp + rename) so two
processes racing on one key leave exactly one intact copy.

:class:`~repro.run.runner.Runner` accepts ``store=`` and consults it
before filtering or replaying; :mod:`repro.service` serves the same
store over HTTP.
"""

from repro.store.store import (
    STORE_SCHEMA,
    ExperimentStore,
    stream_digest_for_spec,
    stream_digest_for_trace,
)

__all__ = [
    "ExperimentStore",
    "STORE_SCHEMA",
    "stream_digest_for_spec",
    "stream_digest_for_trace",
]
