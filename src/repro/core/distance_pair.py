"""Extension: Distance Prefetching indexed by the last *two* distances.

The second of the paper's Section 4 "ongoing work" directions ("using
... several previous distances"). Keying on the pair (previous distance,
current distance) gives second-order history: stride cycles that look
ambiguous to first-order DP — e.g. the distance string 1,2,1,3,1,2,1,3
where "after 1" is sometimes 2 and sometimes 3 — become deterministic
when the predecessor distance is part of the key. The cost is slower
warm-up (each pair must be seen once) and more distinct keys competing
for the same number of rows.
"""

from __future__ import annotations

from repro.core.prediction_table import PredictionTable, SlotList
from repro.prefetch.base import HardwareDescription, Prefetcher

#: Width of each two's-complement distance field inside the packed key.
_DISTANCE_BITS = 24
_DISTANCE_MASK = (1 << _DISTANCE_BITS) - 1
#: Odd multiplier folding the first distance into the low (set-index)
#: bits; injective because the first distance also occupies the high
#: bits, so the XOR can be undone.
_FOLD = 0x9E37


def pack_distance_pair(first: int, second: int) -> int:
    """Combine two signed distances into one injective table key."""
    return ((first & _DISTANCE_MASK) << _DISTANCE_BITS) | (
        (second ^ (first * _FOLD)) & _DISTANCE_MASK
    )


class DistancePairPrefetcher(Prefetcher):
    """DP variant keyed by the two most recent distances.

    Args:
        rows: prediction-table rows.
        ways: associativity (1 = direct mapped, 0 = fully associative).
        slots: predicted distances per row.
    """

    name = "DP-2"

    def __init__(self, rows: int = 256, ways: int = 1, slots: int = 2) -> None:
        super().__init__()
        self.table: PredictionTable[SlotList] = PredictionTable(rows, ways)
        self.slots = slots
        self._prev_page: int | None = None
        self._prev_distance: int | None = None
        self._prev_key: int | None = None

    def _new_row(self) -> SlotList:
        return SlotList(self.slots)

    def on_miss(self, pc: int, page: int, evicted: int, pb_hit: bool) -> list[int]:
        prev_page = self._prev_page
        self._prev_page = page
        if prev_page is None:
            return self.account([])

        distance = page - prev_page
        prev_distance = self._prev_distance
        self._prev_distance = distance
        if prev_distance is None:
            return self.account([])

        key = pack_distance_pair(prev_distance, distance)
        entry, allocated = self.table.lookup_or_insert(key, self._new_row)
        prefetches: list[int] = []
        if not allocated:
            for predicted in entry.values():
                target = page + predicted
                if target >= 0:
                    prefetches.append(target)

        prev_key = self._prev_key
        if prev_key is not None:
            prev_entry, _ = self.table.lookup_or_insert(prev_key, self._new_row)
            prev_entry.add(distance)
        self._prev_key = key
        return self.account(prefetches)

    def flush(self) -> None:
        self.table.flush()
        self._prev_page = None
        self._prev_distance = None
        self._prev_key = None

    def has_prediction_state(self) -> bool:
        return (
            len(self.table) > 0
            or self._prev_page is not None
            or self._prev_distance is not None
            or self._prev_key is not None
        )

    @property
    def label(self) -> str:
        return f"{self.name},{self.table.rows},{self.table.assoc_label}"

    def describe_hardware(self) -> HardwareDescription:
        return HardwareDescription(
            name=self.name,
            rows="r",
            row_contents=f"Distance-pair Tag, {self.slots} Prediction Distances",
            location="On-Chip",
            index_source="2 consecutive Distances",
            memory_ops_per_miss=0,
            max_prefetches=str(self.slots),
        )
