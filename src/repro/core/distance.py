"""Distance Prefetching (DP) — the paper's contribution (Section 2.5).

DP keeps track of *differences between successive missed addresses*
("distances"), not the addresses themselves. The prediction table is
indexed by the current distance; each row's ``s`` slots hold the
distances that followed this distance on earlier misses. On a miss:

1. Compute the current distance = missed page − previously missed page.
2. Index the table by that distance; on a tag hit, prefetch
   ``missed page + d`` for each predicted distance ``d`` in the slots.
3. Record the current distance in a slot of the *previous* distance's
   row (LRU within the slots), so the change between strides itself
   becomes the learned pattern.
4. The current distance becomes the previous distance.

Why this wins (the paper's Section 1 taxonomy): a pure sequential scan
collapses to one row ("1 follows 1"); a repeating stride cycle such as
the reference string 1, 2, 4, 5, 7, 8 collapses to two rows ("1 follows
2", "2 follows 1") where MP would need a row per page; and when strides
are irregular but their *changes* repeat, the history of distances still
predicts — giving DP stride-class space costs with history-class
coverage.
"""

from __future__ import annotations

from repro.core.prediction_table import PredictionTable, SlotList
from repro.prefetch.base import HardwareDescription, Prefetcher


class DistancePrefetcher(Prefetcher):
    """Distance-indexed prediction over the TLB miss stream.

    Args:
        rows: prediction-table rows ``r`` (a direct-mapped 32–256-entry
            table suffices per the paper's sensitivity study).
        ways: associativity (1 = direct mapped — the paper's default —
            2/4-way, or 0 = fully associative).
        slots: predicted distances ``s`` per row (2 by default).
    """

    name = "DP"

    def __init__(self, rows: int = 256, ways: int = 1, slots: int = 2) -> None:
        super().__init__()
        self.table: PredictionTable[SlotList] = PredictionTable(rows, ways)
        self.slots = slots
        self._prev_page: int | None = None
        self._prev_distance: int | None = None

    def _new_row(self) -> SlotList:
        return SlotList(self.slots)

    def on_miss(self, pc: int, page: int, evicted: int, pb_hit: bool) -> list[int]:
        prev_page = self._prev_page
        self._prev_page = page
        if prev_page is None:
            return self.account([])

        distance = page - prev_page
        entry, allocated = self.table.lookup_or_insert(distance, self._new_row)
        prefetches: list[int] = []
        if not allocated:
            for predicted in entry.values():
                target = page + predicted
                if target >= 0:
                    prefetches.append(target)

        prev_distance = self._prev_distance
        if prev_distance is not None:
            prev_entry, _ = self.table.lookup_or_insert(prev_distance, self._new_row)
            prev_entry.add(distance)
        self._prev_distance = distance
        return self.account(prefetches)

    def flush(self) -> None:
        self.table.flush()
        self._prev_page = None
        self._prev_distance = None

    def has_prediction_state(self) -> bool:
        return (
            len(self.table) > 0
            or self._prev_page is not None
            or self._prev_distance is not None
        )

    @property
    def label(self) -> str:
        return f"{self.name},{self.table.rows},{self.table.assoc_label}"

    def describe_hardware(self) -> HardwareDescription:
        return HardwareDescription(
            name=self.name,
            rows="r",
            row_contents=f"Distance Tag, {self.slots} Prediction Distances",
            location="On-Chip",
            index_source="Distance",
            memory_ops_per_miss=0,
            max_prefetches=str(self.slots),
        )
