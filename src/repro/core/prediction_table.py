"""The generic on-chip prediction table of the paper's Section 2.

ASP, MP and DP all keep their state in a table with ``r`` rows, an
associativity (direct-mapped, 2-way, 4-way or fully associative — the
paper's D/2/4/F labels), a tag per row for lookup, and — for MP and DP —
``s`` prediction slots per row kept in LRU order.

The table is generic over the row payload:

- MP rows hold a :class:`SlotList` of predicted *pages*.
- DP rows hold a :class:`SlotList` of predicted *distances*.
- ASP rows hold a ``(previous page, stride, state)`` tuple (one slot, by
  definition of the mechanism).

Keys may be negative (DP indexes by distance, which is signed); the
row-index hash uses Python's non-negative ``%`` so any integer key maps
to a valid set.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Iterator
from typing import Generic, TypeVar

from repro.errors import ConfigurationError

#: Associativity value selecting one row per set.
DIRECT_MAPPED = 1
#: Associativity value selecting a single set spanning all rows.
FULLY_ASSOCIATIVE_TABLE = 0

PayloadT = TypeVar("PayloadT")


class SlotList:
    """Up to ``s`` prediction values in LRU order (MRU first).

    MP keeps the next pages seen after a page; DP keeps the next
    distances seen after a distance. Adding a value already present
    refreshes its recency; adding to a full list evicts the LRU value
    (the paper: "If all the slots are occupied, then we evict one based
    on LRU policy").
    """

    __slots__ = ("_slots", "capacity")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"slot capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._slots: list[int] = []

    def add(self, value: int) -> int | None:
        """Record ``value`` as the most recent successor; return eviction."""
        slots = self._slots
        try:
            slots.remove(value)
        except ValueError:
            pass
        slots.insert(0, value)
        if len(slots) > self.capacity:
            return slots.pop()
        return None

    def values(self) -> list[int]:
        """Current predictions, most recently confirmed first."""
        return list(self._slots)

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, value: int) -> bool:
        return value in self._slots

    def __repr__(self) -> str:
        return f"SlotList({self._slots}, capacity={self.capacity})"


class PredictionTable(Generic[PayloadT]):
    """Set-associative, tagged prediction table with LRU row replacement.

    Args:
        rows: total rows ``r`` (the paper sweeps 32..1024).
        ways: row associativity; :data:`DIRECT_MAPPED` (1) by default,
            :data:`FULLY_ASSOCIATIVE_TABLE` (0) for one set of ``r`` ways.

    Each set maps ``key -> payload`` in an :class:`OrderedDict` whose
    order is the set's LRU order. The *full key* serves as the tag: a
    lookup only matches the exact key, as tag comparison would ensure in
    hardware.
    """

    def __init__(self, rows: int, ways: int = DIRECT_MAPPED) -> None:
        if rows <= 0:
            raise ConfigurationError(f"rows must be > 0, got {rows}")
        if ways < 0:
            raise ConfigurationError(f"ways must be >= 0, got {ways}")
        if ways == FULLY_ASSOCIATIVE_TABLE:
            ways = rows
        if rows % ways:
            raise ConfigurationError(f"rows ({rows}) must be a multiple of ways ({ways})")
        self.rows = rows
        self.ways = ways
        self.num_sets = rows // ways
        self._sets: list[OrderedDict[int, PayloadT]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        # Maintained incrementally so ``len(table)`` — and through it
        # every freshness probe — is O(1) instead of a sum over what
        # can be a thousand sets.
        self._occupied = 0
        self.lookups = 0
        self.tag_hits = 0
        self.row_evictions = 0

    @property
    def assoc_label(self) -> str:
        """The paper's associativity label: ``D``, ``2``, ``4`` or ``F``."""
        if self.ways == 1:
            return "D"
        if self.ways == self.rows:
            return "F"
        return str(self.ways)

    @property
    def label(self) -> str:
        """Configuration label matching the paper's legends, e.g. ``256,D``."""
        return f"{self.rows},{self.assoc_label}"

    def set_index(self, key: int) -> int:
        """Set a key maps to (non-negative even for negative keys)."""
        return key % self.num_sets

    def lookup(self, key: int) -> PayloadT | None:
        """Return the payload tagged ``key``, promoting it to MRU."""
        self.lookups += 1
        table_set = self._sets[key % self.num_sets]
        payload = table_set.get(key)
        if payload is not None:
            table_set.move_to_end(key)
            self.tag_hits += 1
        return payload

    def peek(self, key: int) -> PayloadT | None:
        """Like :meth:`lookup` but without LRU promotion or stats."""
        return self._sets[key % self.num_sets].get(key)

    def insert(self, key: int, payload: PayloadT) -> int | None:
        """Install ``payload`` under ``key``; return any evicted key.

        Inserting an existing key replaces its payload and promotes it.
        """
        table_set = self._sets[key % self.num_sets]
        evicted = None
        if key in table_set:
            table_set.move_to_end(key)
        elif len(table_set) >= self.ways:
            evicted, _ = table_set.popitem(last=False)
            self.row_evictions += 1
        else:
            self._occupied += 1
        table_set[key] = payload
        return evicted

    def lookup_or_insert(
        self, key: int, factory: Callable[[], PayloadT]
    ) -> tuple[PayloadT, bool]:
        """Fetch the row for ``key``, allocating via ``factory`` if absent.

        Returns ``(payload, allocated)`` where ``allocated`` is True when
        a new row was created (possibly evicting an LRU row).
        """
        payload = self.lookup(key)
        if payload is not None:
            return payload, False
        payload = factory()
        self.insert(key, payload)
        return payload, True

    def __contains__(self, key: int) -> bool:
        return key in self._sets[key % self.num_sets]

    def __len__(self) -> int:
        return self._occupied

    def items(self) -> Iterator[tuple[int, PayloadT]]:
        """All ``(key, payload)`` pairs (set order; LRU first per set)."""
        for table_set in self._sets:
            yield from table_set.items()

    def flush(self) -> int:
        """Drop every row (context switch); returns rows dropped."""
        dropped = len(self)
        for table_set in self._sets:
            table_set.clear()
        self._occupied = 0
        return dropped

    def __repr__(self) -> str:
        return f"PredictionTable({self.label}, occupied={len(self)}/{self.rows})"
