"""Extension: Distance Prefetching indexed by (PC, distance).

The paper's Section 4 lists "using other information (PC, several
previous distances, etc.)" as ongoing work. This variant concatenates
the missing instruction's PC with the current distance to form the table
key, so two instructions that happen to produce the same distance no
longer alias into one history — at the cost of needing separate rows
(and separate warm-up) per instruction.

The key packs the distance into a fixed-width two's-complement field
below the PC, which is what indexing/tagging hardware would do.
"""

from __future__ import annotations

from repro.core.prediction_table import PredictionTable, SlotList
from repro.prefetch.base import HardwareDescription, Prefetcher

#: Width of the two's-complement distance field inside the packed key.
_DISTANCE_BITS = 24
_DISTANCE_MASK = (1 << _DISTANCE_BITS) - 1
#: Odd multiplier folding the PC into the low (set-index) bits so
#: direct-mapped tables don't alias every PC with the same distance
#: onto one set. The fold is injective: the PC occupies the high bits,
#: so the XOR can always be undone.
_FOLD = 0x9E37


def pack_pc_distance(pc: int, distance: int) -> int:
    """Combine a PC and a signed distance into one injective table key."""
    return (pc << _DISTANCE_BITS) | ((distance ^ (pc * _FOLD)) & _DISTANCE_MASK)


class PCDistancePrefetcher(Prefetcher):
    """DP variant keyed by (PC, distance) instead of distance alone.

    Args:
        rows: prediction-table rows.
        ways: associativity (1 = direct mapped, 0 = fully associative).
        slots: predicted distances per row.
    """

    name = "DP-PC"

    def __init__(self, rows: int = 256, ways: int = 1, slots: int = 2) -> None:
        super().__init__()
        self.table: PredictionTable[SlotList] = PredictionTable(rows, ways)
        self.slots = slots
        self._prev_page: int | None = None
        self._prev_key: int | None = None

    def _new_row(self) -> SlotList:
        return SlotList(self.slots)

    def on_miss(self, pc: int, page: int, evicted: int, pb_hit: bool) -> list[int]:
        prev_page = self._prev_page
        self._prev_page = page
        if prev_page is None:
            return self.account([])

        distance = page - prev_page
        key = pack_pc_distance(pc, distance)
        entry, allocated = self.table.lookup_or_insert(key, self._new_row)
        prefetches: list[int] = []
        if not allocated:
            for predicted in entry.values():
                target = page + predicted
                if target >= 0:
                    prefetches.append(target)

        prev_key = self._prev_key
        if prev_key is not None:
            prev_entry, _ = self.table.lookup_or_insert(prev_key, self._new_row)
            prev_entry.add(distance)
        self._prev_key = key
        return self.account(prefetches)

    def flush(self) -> None:
        self.table.flush()
        self._prev_page = None
        self._prev_key = None

    def has_prediction_state(self) -> bool:
        return (
            len(self.table) > 0
            or self._prev_page is not None
            or self._prev_key is not None
        )

    @property
    def label(self) -> str:
        return f"{self.name},{self.table.rows},{self.table.assoc_label}"

    def describe_hardware(self) -> HardwareDescription:
        return HardwareDescription(
            name=self.name,
            rows="r",
            row_contents=f"PC+Distance Tag, {self.slots} Prediction Distances",
            location="On-Chip",
            index_source="PC, Distance",
            memory_ops_per_miss=0,
            max_prefetches=str(self.slots),
        )
