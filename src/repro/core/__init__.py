"""The paper's primary contribution: Distance Prefetching and its table.

- :mod:`repro.core.prediction_table` — the generic ``r``-row, ``s``-slot
  set-associative prediction table all on-chip mechanisms share.
- :mod:`repro.core.distance` — Distance Prefetching (DP), Section 2.5.
- :mod:`repro.core.pc_distance` — extension: DP indexed by (PC, distance)
  (the paper's Section 4 "ongoing work").
- :mod:`repro.core.distance_pair` — extension: DP indexed by the last two
  distances.
"""

from repro.core.distance import DistancePrefetcher
from repro.core.distance_pair import DistancePairPrefetcher
from repro.core.pc_distance import PCDistancePrefetcher
from repro.core.prediction_table import (
    DIRECT_MAPPED,
    FULLY_ASSOCIATIVE_TABLE,
    PredictionTable,
    SlotList,
)

__all__ = [
    "DIRECT_MAPPED",
    "DistancePairPrefetcher",
    "DistancePrefetcher",
    "FULLY_ASSOCIATIVE_TABLE",
    "PCDistancePrefetcher",
    "PredictionTable",
    "SlotList",
]
