"""Distributed sweep scheduler: lease-based job queue + worker fleet.

The scheduler shards a RunSpec batch across any number of worker
processes — on one machine or many — coordinated entirely through the
HTTP experiment service, with the repo's invariant intact: a
distributed sweep returns a :class:`~repro.run.results.ResultSet`
byte-identical to the serial one.

=====================================  ================================
:class:`~repro.sched.queue.JobQueue`   persistent SQLite queue: leases,
                                       heartbeats, bounded retries,
                                       dead-worker requeue
:class:`~repro.sched.worker.Worker`    claim → store-first replay →
                                       complete loop (``repro-tlb
                                       worker``)
:class:`~repro.sched.client.SchedulerClient`
                                       job-queue endpoints +
                                       :meth:`submit_sweep`
:class:`~repro.sched.executor.DistributedExecutor`
                                       ``Runner(executor="distributed")``
                                       backend
=====================================  ================================

Quickstart — a server, two workers, one sweep::

    repro-tlb serve  --store .repro-store --port 8321
    repro-tlb worker --url http://127.0.0.1:8321 --store .repro-store &
    repro-tlb worker --url http://127.0.0.1:8321 --store .repro-store &
    repro-tlb submit --url http://127.0.0.1:8321 --app galgel \\
        --app swim --mechanism DP --wait
"""

from repro.sched.client import SchedulerClient
from repro.sched.executor import DistributedExecutor
from repro.sched.queue import JOB_STATES, SCHED_SCHEMA, JobQueue
from repro.sched.worker import Worker, default_worker_id, run_worker

__all__ = [
    "DistributedExecutor",
    "JOB_STATES",
    "JobQueue",
    "SCHED_SCHEMA",
    "SchedulerClient",
    "Worker",
    "default_worker_id",
    "run_worker",
]
