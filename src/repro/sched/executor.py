"""The Runner's distributed execution backend.

:class:`DistributedExecutor` adapts the scheduler protocol to the shape
:class:`~repro.run.runner.Runner` needs from an execution backend — a
list of specs in, an aligned list of result rows out — so
``Runner(executor="distributed", service_url=...)`` (and therefore
``ExperimentContext(executor="distributed", ...)`` and every table or
figure built on it) fans a batch out to the worker fleet instead of a
local process pool, with no change to the results: rows come back in
input order and byte-identical to serial execution.
"""

from __future__ import annotations

from repro.run.spec import RunSpec
from repro.sched.client import SchedulerClient
from repro.sim.stats import PrefetchRunStats


class DistributedExecutor:
    """Executes RunSpec batches through a scheduler service.

    Args:
        service_url: address of a ``repro-tlb serve`` instance with a
            worker fleet polling it.
        poll_interval: sweep-progress polling cadence.
        timeout: overall sweep deadline in seconds (None = wait).
        max_attempts: per-job claim budget forwarded to the queue.
        request_timeout: per-HTTP-request socket timeout in seconds —
            distinct from ``timeout``, the whole-sweep deadline.
        token: API token for a tenant-mode service.
        client: injectable :class:`SchedulerClient` (tests).
    """

    def __init__(
        self,
        service_url: str,
        poll_interval: float = 0.25,
        timeout: float | None = None,
        max_attempts: int | None = None,
        request_timeout: float = 30.0,
        token: str | None = None,
        client: SchedulerClient | None = None,
    ) -> None:
        self.client = (
            client
            if client is not None
            else SchedulerClient(service_url, timeout=request_timeout, token=token)
        )
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.max_attempts = max_attempts

    def run(self, specs: list[RunSpec]) -> list[PrefetchRunStats]:
        """Submit one sweep and block until the fleet drains it."""
        if not specs:
            return []
        results = self.client.submit_sweep(
            specs,
            max_attempts=self.max_attempts,
            poll_interval=self.poll_interval,
            timeout=self.timeout,
        )
        return list(results)
