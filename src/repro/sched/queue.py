"""Persistent lease-based job queue for distributed sweeps.

One :class:`JobQueue` is one SQLite file (WAL mode, same atomicity
idioms as :class:`~repro.store.ExperimentStore`) holding every job the
scheduler has ever been asked to run. Jobs move through a small state
machine::

    queued --claim--> running --complete--> done
      ^                  |                   ^
      |            lease expired /           |
      +---- retry --- worker fail            |
      |                  |            stored result found
      |        attempts exhausted     (precompleted at submit
      |                  v             or claim time)
      +--cancel    failed

Design points:

- **Leases, not locks.** A claim hands a job to a worker together with
  a lease deadline. Workers extend their leases with heartbeats; a
  worker that dies (SIGKILL, OOM, network partition) simply stops
  heartbeating and the job is requeued when its lease expires — no
  worker registry, no failure detector.
- **Bounded retries.** ``attempts`` counts claims. A job whose lease
  expires (or whose worker reports an error) is requeued until it has
  been claimed ``max_attempts`` times, then parked as ``failed`` with
  the last error recorded.
- **Idempotent completion.** Replays are deterministic and results are
  content-addressed, so a duplicate ``complete`` — a presumed-dead
  worker finishing late, a client retrying over a flaky link — is
  acknowledged and counted, never an error.
- **Resumable sweeps.** Jobs are keyed ``<sweep_id>:<seq>``;
  resubmitting a sweep reuses done jobs, requeues failed/cancelled
  ones, and marks jobs whose ``spec_key`` is already in the experiment
  store as done without ever queueing them (zero re-replays).
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from collections.abc import Callable, Iterable
from pathlib import Path
from typing import Any

from repro.errors import SchedulerError, SweepOwnershipError
from repro.obs import REGISTRY

#: Version stamp on the queue index.
SCHED_SCHEMA = "repro.sched/v1"

#: This process's share of the persistent queue counters (claims,
#: completes, retries, requeues, …), mirrored at ``_bump`` time so
#: ``GET /metrics`` reflects live scheduler activity. The persistent
#: counters table stays authoritative across restarts.
_OBS_EVENTS = REGISTRY.counter(
    "repro_sched_events_total",
    "Scheduler lifecycle events (claims, completes, retries, …) this process.",
    labels=("name",),
)
_OBS_DEPTH = REGISTRY.gauge(
    "repro_sched_jobs",
    "Jobs per state at last queue stats/progress refresh.",
    labels=("state",),
)
#: SLO-facing gauges refreshed by :meth:`JobQueue.slo_snapshot` — the
#: journal-backed series the health watchdog's queue/worker rules
#: threshold on.
_OBS_OLDEST_QUEUED = REGISTRY.gauge(
    "repro_sched_oldest_queued_age_seconds",
    "Age of the oldest claimable (queued) job at last SLO refresh.",
)
_OBS_LEASE_OVERDUE_JOBS = REGISTRY.gauge(
    "repro_sched_lease_overdue_jobs",
    "Running jobs whose lease has lapsed without a heartbeat.",
)
_OBS_LEASE_OVERDUE_SECONDS = REGISTRY.gauge(
    "repro_sched_lease_overdue_seconds",
    "How far past expiry the most overdue running lease is.",
)

#: Job lifecycle states.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

_JOB_COLUMNS = (
    "id", "sweep_id", "seq", "spec_key", "spec_json", "state", "attempts",
    "max_attempts", "worker_id", "lease_expires", "result_source", "error",
    "created_at", "updated_at",
)


def _job_dict(row: tuple) -> dict[str, Any]:
    job = dict(zip(_JOB_COLUMNS, row))
    job["spec"] = json.loads(job.pop("spec_json"))
    return job


class JobQueue:
    """A durable queue of RunSpec jobs with lease-based claims.

    Args:
        path: SQLite file backing the queue (parents created).
        lease_seconds: default lease length for :meth:`claim` and
            :meth:`heartbeat` when the caller does not pass one.
        max_attempts: default claim budget per job.
        clock: time source (seconds); injectable for deterministic
            lease-expiry tests.

    Instances are safe to share between threads (one lock serializes
    access) and the on-disk format is safe to share between processes
    (WAL SQLite, every mutation in one ``BEGIN IMMEDIATE`` transaction).
    """

    def __init__(
        self,
        path: str | Path,
        lease_seconds: float = 30.0,
        max_attempts: int = 3,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if lease_seconds <= 0:
            raise SchedulerError(f"lease_seconds must be > 0, got {lease_seconds}")
        if max_attempts < 1:
            raise SchedulerError(f"max_attempts must be >= 1, got {max_attempts}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self._clock = clock
        self._lock = threading.RLock()
        self._db = sqlite3.connect(
            self.path,
            timeout=30.0,
            check_same_thread=False,
            isolation_level=None,  # autocommit; explicit BEGIN for batches
        )
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.execute("PRAGMA busy_timeout=30000")
        self._init_schema()

    # -- lifecycle ---------------------------------------------------------

    def _init_schema(self) -> None:
        with self._txn():
            self._db.execute(
                "CREATE TABLE IF NOT EXISTS meta "
                "(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            self._db.execute(
                "CREATE TABLE IF NOT EXISTS jobs ("
                " id TEXT PRIMARY KEY,"
                " sweep_id TEXT NOT NULL,"
                " seq INTEGER NOT NULL,"
                " spec_key TEXT NOT NULL,"
                " spec_json TEXT NOT NULL,"
                " state TEXT NOT NULL,"
                " attempts INTEGER NOT NULL DEFAULT 0,"
                " max_attempts INTEGER NOT NULL,"
                " worker_id TEXT,"
                " lease_expires REAL,"
                " result_source TEXT,"
                " error TEXT,"
                " created_at REAL NOT NULL,"
                " updated_at REAL NOT NULL)"
            )
            self._db.execute(
                "CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state)"
            )
            self._db.execute(
                "CREATE INDEX IF NOT EXISTS jobs_by_sweep ON jobs (sweep_id, seq)"
            )
            self._db.execute(
                "CREATE TABLE IF NOT EXISTS counters "
                "(name TEXT PRIMARY KEY, value INTEGER NOT NULL)"
            )
            # Lazily migrated: queue files from before sweep ownership
            # gain the (empty) table on open; their pre-existing sweeps
            # simply have no recorded owner yet.
            self._db.execute(
                "CREATE TABLE IF NOT EXISTS sweeps "
                "(sweep_id TEXT PRIMARY KEY, owner TEXT)"
            )
            row = self._db.execute(
                "SELECT value FROM meta WHERE key='schema'"
            ).fetchone()
            if row is None:
                self._db.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema', ?)",
                    (SCHED_SCHEMA,),
                )
            elif row[0] != SCHED_SCHEMA:
                raise SchedulerError(
                    f"job queue at {self.path} has schema {row[0]!r}; this "
                    f"library reads {SCHED_SCHEMA!r} — use a fresh file or "
                    "migrate the queue"
                )

    def close(self) -> None:
        """Close the SQLite connection."""
        with self._lock:
            self._db.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"JobQueue({str(self.path)!r})"

    # -- small internals ---------------------------------------------------

    def _txn(self):
        return _Transaction(self._lock, self._db)

    def _bump(self, name: str, delta: int = 1) -> None:
        self._db.execute(
            "INSERT INTO counters (name, value) VALUES (?, ?) "
            "ON CONFLICT(name) DO UPDATE SET value = value + excluded.value",
            (name, delta),
        )
        _OBS_EVENTS.inc(delta, name=name)

    def _fetch_job(self, job_id: str) -> tuple | None:
        return self._db.execute(
            f"SELECT {', '.join(_JOB_COLUMNS)} FROM jobs WHERE id=?", (job_id,)
        ).fetchone()

    def _expire_leases_locked(self, now: float) -> dict[str, int]:
        """Requeue (or park) running jobs whose lease has lapsed.

        Must run inside an open transaction. A lapsed job whose claim
        budget is spent goes to ``failed``; otherwise it returns to
        ``queued`` for another worker to pick up.
        """
        rows = self._db.execute(
            "SELECT id, attempts, max_attempts FROM jobs "
            "WHERE state='running' AND lease_expires < ?",
            (now,),
        ).fetchall()
        requeued = exhausted = 0
        for job_id, attempts, max_attempts in rows:
            if attempts >= max_attempts:
                self._db.execute(
                    "UPDATE jobs SET state='failed', updated_at=?, "
                    "error=COALESCE(error, ?) WHERE id=?",
                    (
                        now,
                        f"lease expired after {attempts} attempt(s)",
                        job_id,
                    ),
                )
                exhausted += 1
            else:
                self._db.execute(
                    "UPDATE jobs SET state='queued', worker_id=NULL, "
                    "lease_expires=NULL, updated_at=? WHERE id=?",
                    (now, job_id),
                )
                requeued += 1
        if requeued:
            self._bump("leases_requeued", requeued)
        if exhausted:
            self._bump("leases_exhausted", exhausted)
        return {"requeued": requeued, "exhausted": exhausted}

    # -- submission --------------------------------------------------------

    def submit(
        self,
        sweep_id: str,
        specs: Iterable[tuple[str, dict]],
        precompleted: Iterable[str] = (),
        max_attempts: int | None = None,
        owner: str | None = None,
    ) -> list[dict[str, Any]]:
        """Enqueue one sweep: ``(spec_key, spec_dict)`` per job.

        Jobs are keyed ``<sweep_id>:<seq>``, so resubmitting the same
        sweep is a *resume*: done and in-flight jobs are left alone,
        failed/cancelled jobs are requeued with a fresh claim budget,
        and jobs whose ``spec_key`` is in ``precompleted`` (the caller
        probed the experiment store) are marked done with
        ``result_source='store'`` without ever being queued.

        ``owner`` scopes the sweep to one tenant, durably (the record
        rides in the queue file, so it survives restarts). The first
        submission claims the id; a later scoped submission under a
        different owner raises :class:`SweepOwnershipError` inside the
        same transaction that would have enqueued jobs — ownership can
        never be stolen by racing the check. ``owner=None`` is the
        unscoped (admin / open-mode) caller: it may resume any sweep
        and never overwrites a recorded owner.

        Returns the aligned list of job dictionaries.
        """
        if not sweep_id or "/" in sweep_id:
            raise SchedulerError(f"malformed sweep id {sweep_id!r}")
        budget = self.max_attempts if max_attempts is None else int(max_attempts)
        if budget < 1:
            raise SchedulerError(f"max_attempts must be >= 1, got {budget}")
        done_keys = set(precompleted)
        jobs: list[dict[str, Any]] = []
        now = self._clock()
        with self._txn():
            row = self._db.execute(
                "SELECT owner FROM sweeps WHERE sweep_id=?", (sweep_id,)
            ).fetchone()
            if row is None:
                self._db.execute(
                    "INSERT INTO sweeps (sweep_id, owner) VALUES (?, ?)",
                    (sweep_id, owner),
                )
            elif owner is not None and row[0] != owner:
                raise SweepOwnershipError(
                    f"sweep {sweep_id!r} is owned by another tenant"
                )
            submitted = reused = stored = 0
            for seq, (spec_key, spec_dict) in enumerate(specs):
                job_id = f"{sweep_id}:{seq}"
                spec_json = json.dumps(spec_dict, sort_keys=True)
                existing = self._fetch_job(job_id)
                if existing is None:
                    state = "done" if spec_key in done_keys else "queued"
                    source = "store" if spec_key in done_keys else None
                    self._db.execute(
                        "INSERT INTO jobs (id, sweep_id, seq, spec_key,"
                        " spec_json, state, attempts, max_attempts, worker_id,"
                        " lease_expires, result_source, error, created_at,"
                        " updated_at) VALUES (?, ?, ?, ?, ?, ?, 0, ?, NULL,"
                        " NULL, ?, NULL, ?, ?)",
                        (job_id, sweep_id, seq, spec_key, spec_json, state,
                         budget, source, now, now),
                    )
                    submitted += 1
                    stored += state == "done"
                else:
                    job = _job_dict(existing)
                    if job["spec_key"] != spec_key:
                        raise SchedulerError(
                            f"job {job_id} already holds spec {job['spec_key']} "
                            f"but the resubmission carries {spec_key}; use a "
                            "fresh sweep_id for a different spec list"
                        )
                    if job["state"] in ("failed", "cancelled"):
                        state = "done" if spec_key in done_keys else "queued"
                        source = "store" if spec_key in done_keys else None
                        self._db.execute(
                            "UPDATE jobs SET state=?, attempts=0,"
                            " max_attempts=?, worker_id=NULL,"
                            " lease_expires=NULL, result_source=?, error=NULL,"
                            " updated_at=? WHERE id=?",
                            (state, budget, source, now, job_id),
                        )
                        stored += state == "done"
                    reused += 1
                jobs.append(_job_dict(self._fetch_job(job_id)))
            if submitted:
                self._bump("jobs_submitted", submitted)
            if reused:
                self._bump("jobs_reused", reused)
            if stored:
                self._bump("jobs_precompleted", stored)
        return jobs

    def sweep_owner(self, sweep_id: str) -> tuple[bool, str | None]:
        """``(known, owner)`` for one sweep id.

        ``known`` is whether the sweep has ever been submitted through
        this queue file; ``owner`` is the tenant recorded at first
        submission (``None`` for unscoped submissions — and for sweeps
        predating the ownership table, which lazy migration leaves
        unowned).
        """
        with self._lock:
            row = self._db.execute(
                "SELECT owner FROM sweeps WHERE sweep_id=?", (sweep_id,)
            ).fetchone()
        return (row is not None, row[0] if row is not None else None)

    # -- worker protocol ---------------------------------------------------

    def claim(
        self,
        worker_id: str,
        limit: int = 1,
        lease_seconds: float | None = None,
    ) -> list[dict[str, Any]]:
        """Lease up to ``limit`` queued jobs to ``worker_id``.

        Expired leases are swept first, so a dead worker's jobs become
        claimable the moment their lease lapses. Claiming increments
        each job's ``attempts``.
        """
        if not worker_id:
            raise SchedulerError("worker_id must be a non-empty string")
        if limit < 1:
            raise SchedulerError(f"limit must be >= 1, got {limit}")
        lease = self.lease_seconds if lease_seconds is None else float(lease_seconds)
        if lease <= 0:
            raise SchedulerError(f"lease_seconds must be > 0, got {lease}")
        now = self._clock()
        claimed: list[dict[str, Any]] = []
        with self._txn():
            self._expire_leases_locked(now)
            rows = self._db.execute(
                "SELECT id FROM jobs WHERE state='queued' "
                "ORDER BY created_at ASC, sweep_id ASC, seq ASC LIMIT ?",
                (limit,),
            ).fetchall()
            for (job_id,) in rows:
                self._db.execute(
                    "UPDATE jobs SET state='running', worker_id=?,"
                    " lease_expires=?, attempts=attempts+1, updated_at=?"
                    " WHERE id=?",
                    (worker_id, now + lease, now, job_id),
                )
                claimed.append(_job_dict(self._fetch_job(job_id)))
            if claimed:
                self._bump("claims", len(claimed))
        return claimed

    def heartbeat(
        self,
        worker_id: str,
        job_ids: Iterable[str],
        lease_seconds: float | None = None,
    ) -> dict[str, list[str]]:
        """Extend the leases of ``worker_id``'s in-flight jobs.

        Returns which jobs are still ``owned`` and which were ``lost``
        (requeued and possibly reclaimed elsewhere after a lease lapse)
        so a worker can abandon work that is no longer its own.
        """
        lease = self.lease_seconds if lease_seconds is None else float(lease_seconds)
        now = self._clock()
        owned: list[str] = []
        lost: list[str] = []
        with self._txn():
            for job_id in job_ids:
                cursor = self._db.execute(
                    "UPDATE jobs SET lease_expires=?, updated_at=? "
                    "WHERE id=? AND worker_id=? AND state='running'",
                    (now + lease, now, job_id, worker_id),
                )
                (owned if cursor.rowcount else lost).append(job_id)
        return {"owned": owned, "lost": lost}

    def complete(
        self,
        job_id: str,
        worker_id: str | None = None,
        source: str = "worker",
    ) -> dict[str, Any] | None:
        """Mark a job done; idempotent. Returns ``None`` for unknown ids.

        Any live state is accepted: replays are deterministic, so a
        result arriving from a presumed-dead worker (lease lapsed, job
        requeued or even already re-completed) is still valid. The
        returned dictionary carries ``duplicate=True`` when the job was
        already done — the second of two completions is acknowledged,
        never an error.
        """
        now = self._clock()
        with self._txn():
            row = self._fetch_job(job_id)
            if row is None:
                return None
            job = _job_dict(row)
            if job["state"] == "done":
                self._bump("duplicate_completes")
                job["duplicate"] = True
                return job
            self._db.execute(
                "UPDATE jobs SET state='done', result_source=?, worker_id=?,"
                " lease_expires=NULL, error=NULL, updated_at=? WHERE id=?",
                (source, worker_id, now, job_id),
            )
            self._bump("completes")
            job = _job_dict(self._fetch_job(job_id))
            job["duplicate"] = False
            return job

    def fail(
        self, job_id: str, worker_id: str | None = None, error: str = ""
    ) -> dict[str, Any] | None:
        """Record a worker-reported failure; requeue within the budget.

        Returns the job (with its new state) or ``None`` for unknown
        ids. Done/cancelled jobs are left untouched — and so is a job
        the reporting worker no longer owns: a failure arriving after
        the lease lapsed and another worker took over must not requeue
        (or park) work that is live elsewhere. Completions are the
        asymmetric case — a late *result* is still valid, a late
        failure is just stale news.
        """
        now = self._clock()
        with self._txn():
            row = self._fetch_job(job_id)
            if row is None:
                return None
            job = _job_dict(row)
            if job["state"] in ("done", "cancelled"):
                return job
            if worker_id is not None and job["worker_id"] != worker_id:
                # Covers both a live lease held by someone else (state
                # running) and a lapsed-and-requeued job (state queued,
                # worker cleared): either way the reporter lost this job.
                self._bump("stale_failures")
                return job
            if job["attempts"] >= job["max_attempts"]:
                self._db.execute(
                    "UPDATE jobs SET state='failed', error=?, updated_at=?"
                    " WHERE id=?",
                    (error or "worker reported failure", now, job_id),
                )
                self._bump("failures")
            else:
                self._db.execute(
                    "UPDATE jobs SET state='queued', worker_id=NULL,"
                    " lease_expires=NULL, error=?, updated_at=? WHERE id=?",
                    (error or "worker reported failure", now, job_id),
                )
                self._bump("retries")
            return _job_dict(self._fetch_job(job_id))

    # -- control and introspection ----------------------------------------

    def cancel(self, sweep_id: str) -> int:
        """Cancel a sweep's queued jobs; running jobs finish normally."""
        now = self._clock()
        with self._txn():
            cursor = self._db.execute(
                "UPDATE jobs SET state='cancelled', updated_at=? "
                "WHERE sweep_id=? AND state='queued'",
                (now, sweep_id),
            )
            if cursor.rowcount:
                self._bump("cancelled", cursor.rowcount)
            return cursor.rowcount

    def expire_leases(self) -> dict[str, int]:
        """Sweep lapsed leases now (claim and progress do this lazily)."""
        with self._txn():
            return self._expire_leases_locked(self._clock())

    def job(self, job_id: str) -> dict[str, Any] | None:
        """One job by id, or ``None``."""
        with self._lock:
            row = self._fetch_job(job_id)
        return _job_dict(row) if row is not None else None

    def jobs(
        self,
        sweep_id: str | None = None,
        state: str | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Jobs in submission order, optionally filtered."""
        if state is not None and state not in JOB_STATES:
            raise SchedulerError(
                f"unknown job state {state!r}; expected one of {JOB_STATES}"
            )
        query = f"SELECT {', '.join(_JOB_COLUMNS)} FROM jobs"
        clauses, params = [], []
        if sweep_id is not None:
            clauses.append("sweep_id=?")
            params.append(sweep_id)
        if state is not None:
            clauses.append("state=?")
            params.append(state)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY created_at ASC, sweep_id ASC, seq ASC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            rows = self._db.execute(query, params).fetchall()
        return [_job_dict(row) for row in rows]

    def progress(self, sweep_id: str | None = None) -> dict[str, Any]:
        """State counts (lapsed leases swept first) for one sweep or all.

        ``pending = queued + running`` is the number the sweep driver
        polls to zero; when jobs failed, the first few are inlined so a
        client can report *why* without extra round trips.
        """
        now = self._clock()
        with self._txn():
            self._expire_leases_locked(now)
            query = "SELECT state, COUNT(*) FROM jobs"
            params: tuple = ()
            if sweep_id is not None:
                query += " WHERE sweep_id=?"
                params = (sweep_id,)
            counts = dict(self._db.execute(query + " GROUP BY state", params))
        report: dict[str, Any] = {"sweep_id": sweep_id}
        report.update({state: counts.get(state, 0) for state in JOB_STATES})
        report["total"] = sum(counts.values())
        report["pending"] = report["queued"] + report["running"]
        if report["failed"]:
            report["failed_jobs"] = [
                {"id": job["id"], "spec_key": job["spec_key"], "error": job["error"]}
                for job in self.jobs(sweep_id=sweep_id, state="failed", limit=10)
            ]
        return report

    def stats(self) -> dict[str, Any]:
        """State counts plus the persistent scheduler counters."""
        with self._lock:
            counts = dict(
                self._db.execute("SELECT state, COUNT(*) FROM jobs GROUP BY state")
            )
            counters = dict(
                self._db.execute("SELECT name, value FROM counters").fetchall()
            )
        for state in JOB_STATES:
            _OBS_DEPTH.set(counts.get(state, 0), state=state)
        return {
            "schema": SCHED_SCHEMA,
            "path": str(self.path),
            **{state: counts.get(state, 0) for state in JOB_STATES},
            "total": sum(counts.values()),
            "counters": counters,
        }

    def slo_snapshot(self, now: float | None = None) -> dict[str, Any]:
        """Read-only SLO probe: queue lag and heartbeat staleness.

        Deliberately does *not* sweep lapsed leases — a worker that
        stopped heartbeating must stay visible as an overdue running
        job until a claim or progress poll requeues it, otherwise the
        health layer could never observe the outage it alerts on.
        Refreshes the ``repro_sched_oldest_queued_age_seconds`` and
        ``repro_sched_lease_overdue_*`` gauges as a side effect.
        """
        ts = self._clock() if now is None else now
        with self._lock:
            oldest = self._db.execute(
                "SELECT MIN(created_at) FROM jobs WHERE state='queued'"
            ).fetchone()[0]
            overdue_jobs, most_overdue = self._db.execute(
                "SELECT COUNT(*), MAX(? - lease_expires) FROM jobs "
                "WHERE state='running' AND lease_expires IS NOT NULL "
                "AND lease_expires < ?",
                (ts, ts),
            ).fetchone()
            queued, running = (
                self._db.execute(
                    "SELECT "
                    " SUM(CASE WHEN state='queued' THEN 1 ELSE 0 END),"
                    " SUM(CASE WHEN state='running' THEN 1 ELSE 0 END)"
                    " FROM jobs"
                ).fetchone()
            )
        oldest_age = None if oldest is None else max(0.0, ts - oldest)
        overdue_seconds = float(most_overdue or 0.0)
        _OBS_OLDEST_QUEUED.set(oldest_age or 0.0)
        _OBS_LEASE_OVERDUE_JOBS.set(overdue_jobs or 0)
        _OBS_LEASE_OVERDUE_SECONDS.set(overdue_seconds)
        return {
            "oldest_queued_age_seconds": oldest_age,
            "lease_overdue_jobs": int(overdue_jobs or 0),
            "lease_overdue_seconds": overdue_seconds,
            "queued": int(queued or 0),
            "running": int(running or 0),
        }


class _Transaction:
    """``with queue._txn():`` — lock + BEGIN IMMEDIATE + commit/rollback."""

    def __init__(self, lock: threading.RLock, db: sqlite3.Connection) -> None:
        self._lock = lock
        self._db = db

    def __enter__(self) -> None:
        self._lock.acquire()
        self._db.execute("BEGIN IMMEDIATE")

    def __exit__(self, exc_type, *exc_info: object) -> None:
        try:
            self._db.execute("COMMIT" if exc_type is None else "ROLLBACK")
        finally:
            self._lock.release()
