"""Client side of the distributed sweep scheduler.

:class:`SchedulerClient` extends the plain
:class:`~repro.service.client.ServiceClient` with the job-queue
endpoints, and :meth:`SchedulerClient.submit_sweep` is the high-level
entry point: submit a RunSpec batch, poll until the worker fleet has
drained it, and assemble the rows into a :class:`~repro.run.results.ResultSet`
**in submission order** — byte-identical to what a serial
:class:`~repro.run.runner.Runner` would have returned, because replays
are deterministic and every row round-trips through the same
content-addressed store.
"""

from __future__ import annotations

import time
import urllib.parse
import uuid
from collections.abc import Iterable
from typing import Any

from repro.errors import SchedulerError
from repro.obs import drain_spans, trace
from repro.run.results import ResultSet
from repro.run.spec import RunSpec
from repro.service.client import ServiceClient, ServiceError
from repro.sim.stats import PrefetchRunStats


class SchedulerClient(ServiceClient):
    """ServiceClient plus the lease-based job-queue protocol."""

    # -- endpoint wrappers -------------------------------------------------

    def submit_jobs(
        self,
        specs: list[dict],
        sweep_id: str | None = None,
        max_attempts: int | None = None,
    ) -> dict:
        """``POST /jobs``: enqueue a sweep of spec dicts."""
        body: dict[str, Any] = {"specs": specs}
        if sweep_id is not None:
            body["sweep_id"] = sweep_id
        if max_attempts is not None:
            body["max_attempts"] = max_attempts
        return self.request("/jobs", body)

    def claim(
        self,
        worker_id: str,
        limit: int = 1,
        lease_seconds: float | None = None,
    ) -> list[dict]:
        """``POST /claim``: lease up to ``limit`` jobs.

        Retried on transport failure (marked idempotent): a claim the
        server processed but whose response was lost is recovered by
        lease expiry, and results stay correct — content-addressed
        rows, idempotent completion. The recovery is not free, though:
        an orphaned claim consumes one of the job's ``max_attempts``
        (the server cannot tell a lost response from a worker that
        died mid-replay), so persistent response loss can park a job
        as failed; resubmitting the sweep resets the budget.
        """
        body: dict[str, Any] = {"worker_id": worker_id, "limit": limit}
        if lease_seconds is not None:
            body["lease_seconds"] = lease_seconds
        return self.request("/claim", body, idempotent=True)["jobs"]

    def complete(
        self,
        job_id: str,
        worker_id: str,
        run: dict | None = None,
        error: str | None = None,
    ) -> dict:
        """``POST /complete``: deliver a result row (or report failure).

        Idempotent server-side, so marked retryable here.
        """
        body: dict[str, Any] = {"job_id": job_id, "worker_id": worker_id}
        if run is not None:
            body["run"] = run
        if error is not None:
            body["error"] = error
        return self.request("/complete", body, idempotent=True)

    def heartbeat(
        self,
        worker_id: str,
        job_ids: list[str],
        lease_seconds: float | None = None,
    ) -> dict:
        """``POST /heartbeat``: extend leases; reports owned vs lost."""
        body: dict[str, Any] = {"worker_id": worker_id, "job_ids": job_ids}
        if lease_seconds is not None:
            body["lease_seconds"] = lease_seconds
        return self.request("/heartbeat", body, idempotent=True)

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>``: one job's full record."""
        return self.request(f"/jobs/{urllib.parse.quote(job_id, safe='')}")

    def progress(self, sweep_id: str | None = None) -> dict:
        """``GET /progress``: state counts for one sweep (or the queue)."""
        suffix = (
            "?" + urllib.parse.urlencode({"sweep_id": sweep_id})
            if sweep_id is not None
            else ""
        )
        return self.request("/progress" + suffix)

    def cancel(self, sweep_id: str) -> dict:
        """``POST /cancel``: cancel a sweep's queued jobs."""
        return self.request("/cancel", {"sweep_id": sweep_id})

    def push_spans(self, spans: list[dict]) -> dict:
        """``POST /trace``: ship locally collected spans to the service.

        Idempotent in effect (span ids dedupe nothing server-side, but
        workers only push freshly drained spans, so retry-after-success
        is the only duplication risk and is cosmetic) — still marked
        non-idempotent to keep the failure mode a clean drop.
        """
        return self.request("/trace", {"spans": spans})

    def fetch_trace(self, trace_id: str | None = None) -> dict:
        """``GET /trace``: one trace's spans, or summaries of all."""
        suffix = (
            "?" + urllib.parse.urlencode({"trace_id": trace_id})
            if trace_id is not None
            else ""
        )
        return self.request("/trace" + suffix)

    # -- the high-level sweep driver ---------------------------------------

    def submit_sweep(
        self,
        specs: Iterable[RunSpec | dict],
        sweep_id: str | None = None,
        max_attempts: int | None = None,
        poll_interval: float = 0.25,
        timeout: float | None = None,
    ) -> ResultSet:
        """Run a sweep on the worker fleet; block until it drains.

        Specs already in the service's experiment store never reach the
        queue (zero re-replays on a warm resubmit); the rest are leased
        out to whatever workers are polling ``/claim``. Pass an explicit
        ``sweep_id`` to make the submission resumable — a crashed driver
        re-running ``submit_sweep`` with the same id reuses every job
        the fleet already finished.

        Returns the rows in submission order (duplicate specs share a
        row), byte-identical to a serial Runner run of the same batch.
        Raises :class:`~repro.errors.SchedulerError` if any job ends
        failed or cancelled, or the deadline passes.
        """
        spec_dicts = [
            spec.to_dict() if isinstance(spec, RunSpec) else spec for spec in specs
        ]
        if not spec_dicts:
            return ResultSet()
        sweep_id = sweep_id or f"sweep-{uuid.uuid4().hex[:12]}"
        # One root span for the whole sweep: every request below rides
        # under it (the client injects X-Repro-Trace), so the service
        # and every worker that touches this sweep's jobs contribute
        # spans to a single connected trace.
        with trace("sweep", sweep_id=sweep_id, specs=len(spec_dicts)):
            self.submit_jobs(
                spec_dicts, sweep_id=sweep_id, max_attempts=max_attempts
            )
            deadline = None if timeout is None else time.monotonic() + timeout
            while True:
                progress = self.progress(sweep_id)
                if progress["failed"] or progress["cancelled"]:
                    details = "; ".join(
                        f"{job['id']} ({job['spec_key']}): {job['error']}"
                        for job in progress.get("failed_jobs", [])
                    ) or f"{progress['cancelled']} job(s) cancelled"
                    raise SchedulerError(
                        f"sweep {sweep_id} finished with {progress['failed']} failed "
                        f"and {progress['cancelled']} cancelled job(s): {details}"
                    )
                if progress["pending"] == 0:
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    raise SchedulerError(
                        f"sweep {sweep_id} timed out with {progress['pending']} "
                        f"job(s) still pending (of {progress['total']})"
                    )
                time.sleep(poll_interval)
            # One batch fetch for the whole sweep: every key is in the
            # store now, so the store-backed ``POST /runs`` serves the
            # rows in submission order (duplicates sharing one row)
            # without simulating anything — and without N per-key round
            # trips.
            fetched = self.submit(spec_dicts)
        # Ship the locally recorded spans — including the sweep root
        # that just closed — to the service, so the assembled trace is
        # complete server-side (workers pushed theirs the same way).
        # Best-effort: a lost push never fails a drained sweep.
        spans = drain_spans()
        if spans:
            try:
                self.push_spans(spans)
            except ServiceError:
                pass
        return ResultSet(PrefetchRunStats(**run) for run in fetched["runs"])
