"""The sweep worker: claim specs, replay them, deliver rows.

A :class:`Worker` is one member of the fleet behind a scheduler-enabled
service (``repro-tlb serve``). Its loop is deliberately dumb — all
coordination state lives in the server's :class:`~repro.sched.queue.JobQueue`:

1. ``POST /claim`` a batch of jobs (polling while the queue is empty);
2. for each job, **consult the store first** — a worker given a local
   ``store=`` (shared filesystem with the server) runs its specs
   through a store-backed :class:`~repro.run.runner.Runner`, so a spec
   another worker already landed costs one index probe, not a replay;
3. replay the rest through the engine the spec names (``auto`` → the
   vectorized fast path for every built-in mechanism);
4. ``POST /complete`` with the result row — the server writes it back
   through its :class:`~repro.store.ExperimentStore`, content-addressed
   and deduplicated.

A background thread heartbeats the in-flight jobs; if the worker dies,
the heartbeats stop and the leases lapse, so the scheduler requeues its
jobs onto the rest of the fleet. Constructor knobs double as the fault
injectors the scheduler tests drive: ``crash_after_claims`` makes the
worker vanish mid-lease exactly like a SIGKILL (claims kept, no
completes, no further heartbeats), and ``fail_keys`` makes it report
failures for chosen specs to exercise the bounded-retry path.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro.obs import REGISTRY, bind_context, drain_spans, get_logger, trace
from repro.run.runner import MissStreamCache, Runner
from repro.run.spec import RunSpec
from repro.sched.client import SchedulerClient
from repro.service.client import ServiceError
from repro.store import ExperimentStore

_OBS_CLAIM_SECONDS = REGISTRY.histogram(
    "repro_worker_claim_seconds",
    "Wall-clock per claim round trip (including empty claims).",
)
_OBS_HEARTBEAT_SECONDS = REGISTRY.histogram(
    "repro_worker_heartbeat_seconds",
    "Wall-clock per heartbeat round trip.",
)
_OBS_HEARTBEATS = REGISTRY.counter(
    "repro_worker_heartbeats_total",
    "Heartbeats sent, by outcome.",
    labels=("outcome",),
)
_OBS_JOB_SECONDS = REGISTRY.histogram(
    "repro_worker_job_seconds",
    "Wall-clock per processed job, by outcome.",
    labels=("outcome",),
)

_LOG = get_logger("worker")


def default_worker_id() -> str:
    """Host- and process-unique worker identity."""
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:6]}"


class Worker:
    """One claim→replay→complete loop against a scheduler service.

    Args:
        base_url: scheduler service address.
        worker_id: fleet-unique identity; defaults to host:pid:nonce.
        store: optional *local* experiment store (a path or instance) —
            for workers sharing the server's filesystem; specs found
            there are served without replaying.
        lease_seconds: lease length requested on claim and heartbeat.
        poll_interval: sleep between empty claims.
        batch: jobs claimed per request (amortizes HTTP overhead).
        max_jobs: stop after processing this many jobs (None = forever).
        fail_keys: spec keys to report as failures (fault injection).
        crash_after_claims: vanish (stop heartbeating, abandon leases,
            return) once this many jobs have been claimed (fault
            injection — behaves like a SIGKILL).
        slow_seconds: sleep this long before each replay (fault
            injection — simulates expensive jobs so kill-mid-sweep
            tests are deterministic; heartbeats keep running).
        request_timeout: per-HTTP-request socket timeout in seconds —
            a hung service socket fails the request (and lets lease
            expiry recover) instead of wedging the worker forever.
        token: API token for a tenant-mode service (the tenant must be
            worker-capable, or ``/claim`` answers 403).
        client: injectable :class:`SchedulerClient` (tests).
    """

    def __init__(
        self,
        base_url: str,
        worker_id: str | None = None,
        store: "ExperimentStore | str | Path | None" = None,
        lease_seconds: float = 15.0,
        poll_interval: float = 0.25,
        batch: int = 4,
        max_jobs: int | None = None,
        fail_keys: frozenset[str] | set[str] = frozenset(),
        crash_after_claims: int | None = None,
        slow_seconds: float = 0.0,
        request_timeout: float = 30.0,
        token: str | None = None,
        client: SchedulerClient | None = None,
    ) -> None:
        self.client = (
            client
            if client is not None
            else SchedulerClient(base_url, timeout=request_timeout, token=token)
        )
        self.worker_id = worker_id or default_worker_id()
        self.runner = Runner(cache=MissStreamCache(), store=store)
        self.lease_seconds = lease_seconds
        self.poll_interval = poll_interval
        self.batch = max(1, int(batch))
        self.max_jobs = max_jobs
        self.fail_keys = frozenset(fail_keys)
        self.crash_after_claims = crash_after_claims
        self.slow_seconds = slow_seconds
        self.claimed = 0
        self.completed = 0
        self.failed = 0
        self.report_errors = 0
        self.crashed = False
        self._stop = threading.Event()
        self._inflight_lock = threading.Lock()
        self._inflight: set[str] = set()

    # -- control -----------------------------------------------------------

    def stop(self) -> None:
        """Ask the loop to exit after the current job."""
        self._stop.set()

    # -- the loop ----------------------------------------------------------

    def run(self) -> dict[str, Any]:
        """Claim and process jobs until stopped; returns a summary."""
        heartbeater = threading.Thread(target=self._heartbeat_loop, daemon=True)
        heartbeater.start()
        try:
            while not self._stop.is_set() and not self._budget_spent():
                limit = self.batch
                if self.max_jobs is not None:
                    # Never claim jobs the budget won't let us process —
                    # they would sit leased until expiry after we exit.
                    limit = min(
                        limit, self.max_jobs - (self.completed + self.failed)
                    )
                claim_began = time.perf_counter()
                try:
                    jobs = self.client.claim(
                        self.worker_id,
                        limit=limit,
                        lease_seconds=self.lease_seconds,
                    )
                    _OBS_CLAIM_SECONDS.observe(time.perf_counter() - claim_began)
                except ServiceError as exc:
                    if exc.status == 0:  # service down/restarting: keep polling
                        self._stop.wait(self.poll_interval)
                        continue
                    raise
                if not jobs:
                    self._stop.wait(self.poll_interval)
                    continue
                self.claimed += len(jobs)
                if (
                    self.crash_after_claims is not None
                    and self.claimed >= self.crash_after_claims
                ):
                    # Fault injection: die with the leases held, exactly
                    # like a SIGKILL between claim and complete.
                    self.crashed = True
                    return self.summary()
                # The whole claimed batch is in flight from this moment:
                # heartbeats must cover the jobs *waiting* behind a slow
                # replay too, or their leases lapse mid-batch and burn
                # their retry budgets while the worker is healthy.
                with self._inflight_lock:
                    self._inflight.update(job["id"] for job in jobs)
                for job in jobs:
                    if self._stop.is_set():
                        break
                    self._process(job)
                    if self._budget_spent():
                        break
                with self._inflight_lock:
                    self._inflight.clear()
                self._push_spans()
        finally:
            self._stop.set()
            heartbeater.join(timeout=5.0)
        return self.summary()

    def summary(self) -> dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "claimed": self.claimed,
            "completed": self.completed,
            "failed": self.failed,
            "report_errors": self.report_errors,
            "crashed": self.crashed,
        }

    def _budget_spent(self) -> bool:
        return (
            self.max_jobs is not None
            and self.completed + self.failed >= self.max_jobs
        )

    # -- one job -----------------------------------------------------------

    def _process(self, job: dict[str, Any]) -> None:
        job_id = job["id"]
        began = time.perf_counter()
        # A job claimed from a traced sweep carries the sweep's trace
        # context; binding it makes this worker's spans (job → replay →
        # store-write) part of that one distributed trace.
        try:
            with bind_context(job.get("trace")):
                with trace("worker.job", job_id=job_id, worker=self.worker_id):
                    try:
                        if self.slow_seconds:
                            self._stop.wait(self.slow_seconds)
                        spec = RunSpec.from_dict(job["spec"])
                        if spec.key() in self.fail_keys:
                            raise RuntimeError(
                                f"injected failure for spec {spec.key()}"
                            )
                        # Store-backed runner: consult the store first,
                        # replay only on a miss, persist the fresh row
                        # locally too.
                        stats = self.runner.run([spec])[0]
                    except Exception as exc:  # noqa: BLE001 - report, don't die
                        self.failed += 1
                        _OBS_JOB_SECONDS.observe(
                            time.perf_counter() - began, outcome="failed"
                        )
                        _LOG.warning(
                            "worker %s job %s failed: %s",
                            self.worker_id, job_id, exc,
                        )
                        self._report(
                            job_id, error=f"{type(exc).__name__}: {exc}"
                        )
                        return
                    self.completed += 1
                    _OBS_JOB_SECONDS.observe(
                        time.perf_counter() - began, outcome="completed"
                    )
                    self._report(job_id, run=asdict(stats))
        finally:
            with self._inflight_lock:
                self._inflight.discard(job_id)

    def _report(self, job_id: str, **outcome: Any) -> None:
        try:
            self.client.complete(job_id, self.worker_id, **outcome)
        except ServiceError:
            # The result (or failure report) is lost; lease expiry will
            # requeue the job, and replays are deterministic, so the
            # sweep still converges. Count it for observability.
            self.report_errors += 1

    def _push_spans(self) -> None:
        """Ship this worker's freshly collected spans to the service.

        Guarded with ``getattr``: tests inject stub clients without the
        trace endpoints, and a plain :class:`ServiceClient` predates
        them — span shipping is strictly best-effort.
        """
        push = getattr(self.client, "push_spans", None)
        if not callable(push):
            return
        spans = drain_spans()
        if not spans:
            return
        try:
            push(spans)
        except ServiceError:
            pass  # spans are observability, never worth failing the loop

    # -- heartbeats --------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        interval = max(0.05, self.lease_seconds / 3.0)
        while not self._stop.wait(interval):
            with self._inflight_lock:
                inflight = sorted(self._inflight)
            if not inflight:
                continue
            began = time.perf_counter()
            try:
                self.client.heartbeat(
                    self.worker_id, inflight, lease_seconds=self.lease_seconds
                )
            except ServiceError:
                _OBS_HEARTBEATS.inc(outcome="error")
                continue  # transient; the next beat (or lease slack) covers it
            _OBS_HEARTBEAT_SECONDS.observe(time.perf_counter() - began)
            _OBS_HEARTBEATS.inc(outcome="ok")


def run_worker(
    base_url: str,
    store: str | None = None,
    lease_seconds: float = 15.0,
    poll_interval: float = 0.25,
    batch: int = 4,
    max_jobs: int | None = None,
    worker_id: str | None = None,
    crash_after_claims: int | None = None,
    slow_seconds: float = 0.0,
    request_timeout: float = 30.0,
    token: str | None = None,
) -> int:
    """Blocking CLI entry point (``repro-tlb worker``)."""
    worker = Worker(
        base_url,
        worker_id=worker_id,
        store=store,
        lease_seconds=lease_seconds,
        poll_interval=poll_interval,
        batch=batch,
        max_jobs=max_jobs,
        crash_after_claims=crash_after_claims,
        slow_seconds=slow_seconds,
        request_timeout=request_timeout,
        token=token,
    )
    print(
        f"repro-tlb worker {worker.worker_id} polling {worker.client.base_url} "
        f"(lease {lease_seconds}s, batch {batch})",
        flush=True,
    )
    started = time.monotonic()
    try:
        summary = worker.run()
    except KeyboardInterrupt:
        worker.stop()
        summary = worker.summary()
    elapsed = time.monotonic() - started
    print(
        f"worker {worker.worker_id}: {summary['completed']} completed, "
        f"{summary['failed']} failed of {summary['claimed']} claimed "
        f"in {elapsed:.1f}s",
        flush=True,
    )
    return 0 if summary["failed"] == 0 else 1
