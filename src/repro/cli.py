"""Command-line interface: regenerate any experiment from a shell.

Examples::

    repro-tlb list-apps
    repro-tlb run --app galgel --mechanism DP --rows 256 --scale 0.25
    repro-tlb run --app galgel --mechanism DP --engine reference
    repro-tlb run --app galgel --save galgel_dp.json
    repro-tlb table1
    repro-tlb table2 --scale 0.5
    repro-tlb table3 --scale 0.5
    repro-tlb figure7 --scale 0.25 --workers 4
    repro-tlb figure8 --scale 0.25
    repro-tlb figure9 --scale 0.25 --panel tables
    repro-tlb validate --scale 0.2
    repro-tlb report --out report.md --scale 0.25
    repro-tlb export-trace --app swim --out swim.npz --scale 0.25
    repro-tlb run --trace-file swim.npz --mechanism DP

Persistent store + service (see README "Persistent store & service")::

    repro-tlb run --app galgel --mechanism DP --store .repro-store
    repro-tlb figure7 --scale 0.25 --store .repro-store   # resumable sweep
    repro-tlb cache stats --store .repro-store
    repro-tlb cache ls --store .repro-store
    repro-tlb cache gc --store .repro-store --max-bytes 100000000
    repro-tlb serve --store .repro-store --port 8321

Distributed sweeps (see README "Distributed sweeps")::

    repro-tlb serve --store .repro-store --port 8321      # scheduler + store
    repro-tlb worker --url http://127.0.0.1:8321 --store .repro-store
    repro-tlb submit --url http://127.0.0.1:8321 --app galgel --app swim --wait
    repro-tlb jobs status --url http://127.0.0.1:8321
    repro-tlb jobs cancel --url http://127.0.0.1:8321 --sweep SWEEP_ID
    repro-tlb figure7 --scale 0.25 --service-url http://127.0.0.1:8321

Observability (see README "Observability")::

    repro-tlb top --url http://127.0.0.1:8321             # live summary + trends
    repro-tlb health --url http://127.0.0.1:8321          # GET /healthz
    repro-tlb alerts --url http://127.0.0.1:8321          # SLO alert states
    repro-tlb bench compare --history benchmarks/results/BENCH_history.jsonl
    repro-tlb trace --url http://127.0.0.1:8321           # list traces
    repro-tlb trace --url http://127.0.0.1:8321 --trace-id ID
    repro-tlb trace --file spans.json --json

(Equivalently ``python -m repro.cli ...``.)
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from repro.analysis.experiments import ExperimentContext
from repro.analysis.tables import compare_table2, compare_table3
from repro.errors import ReproError
from repro.mem.trace_io import load_reference_trace, save_reference_trace
from repro.prefetch.factory import PREFETCHER_NAMES, create_prefetcher
from repro.run import ResultSet, Runner, RunSpec
from repro.sim.engine import ENGINES
from repro.sim.two_phase import evaluate
from repro.workloads.registry import SUITES, all_app_names, get_app, get_trace


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="workload volume multiplier (1.0 = full traces; default 0.25)",
    )


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-pool size for batch execution (0 = serial)",
    )


def _add_store(parser: argparse.ArgumentParser, required: bool = False) -> None:
    parser.add_argument(
        "--store",
        required=required,
        help=(
            "persistent experiment store directory (created if missing); "
            "previously executed specs are served from it and new results "
            "are written back"
        ),
    )


def _add_request_timeout(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help=(
            "per-HTTP-request socket timeout in seconds for service "
            "requests (default 30); a hung service fails fast instead "
            "of blocking forever"
        ),
    )


def _add_token(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--token",
        help=(
            "API token for a tenant-mode service (sent as "
            "'Authorization: Bearer <token>'); omit for an open service"
        ),
    )


def _add_service_url(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--service-url",
        help=(
            "scheduler service address (repro-tlb serve); when given, the "
            "batch is submitted as a distributed sweep and replayed by the "
            "service's worker fleet instead of locally"
        ),
    )
    _add_request_timeout(parser)
    _add_token(parser)


def _add_url(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--url", required=True, help="scheduler service address (repro-tlb serve)"
    )
    _add_request_timeout(parser)
    _add_token(parser)


def _add_engine(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="auto",
        help=(
            "replay engine: auto (fast path when eligible; batches "
            "stream-sharing groups in one pass), reference "
            "(authoritative object-driven replay), fast (forced fast "
            "path), or batch (forced one-pass multi-mechanism replay); "
            "all engines are bit-identical"
        ),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tlb",
        description=(
            "Reproduction harness for 'Going the Distance for TLB "
            "Prefetching' (ISCA 2002)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list the 56 application models")

    run = sub.add_parser("run", help="run one mechanism on one application")
    source = run.add_mutually_exclusive_group(required=True)
    source.add_argument("--app", help="application name (see list-apps)")
    source.add_argument(
        "--trace-file", help="path to a .npz reference trace (see export-trace)"
    )
    run.add_argument(
        "--mechanism", default="DP", choices=sorted(PREFETCHER_NAMES),
        help="prefetch mechanism",
    )
    run.add_argument("--rows", type=int, default=256, help="prediction table rows r")
    run.add_argument("--slots", type=int, default=2, help="prediction slots s")
    run.add_argument("--buffer", type=int, default=16, help="prefetch buffer entries b")
    run.add_argument(
        "--save", help="also write the run as a ResultSet JSON file (path)"
    )
    _add_scale(run)
    _add_engine(run)
    _add_store(run)

    export = sub.add_parser(
        "export-trace", help="write an application's reference trace to .npz"
    )
    export.add_argument("--app", required=True, help="application name")
    export.add_argument("--out", required=True, help="output path (.npz)")
    _add_scale(export)

    validate = sub.add_parser(
        "validate", help="check every app model against its paper claims"
    )
    validate.add_argument("--app", action="append", dest="apps",
                          help="validate only this app (repeatable)")
    _add_scale(validate)

    report = sub.add_parser(
        "report", help="run every experiment and write a Markdown report"
    )
    report.add_argument("--out", required=True, help="output path (.md)")
    report.add_argument(
        "--no-figures", action="store_true",
        help="tables only (much faster)",
    )
    _add_scale(report)

    characterize = sub.add_parser(
        "characterize",
        help="miss rates across the TLB grid (the [18] companion table)",
    )
    characterize.add_argument(
        "--app", action="append", dest="apps",
        help="characterize only this app (repeatable; default: all 56)",
    )
    _add_scale(characterize)

    sub.add_parser("table1", help="regenerate Table 1 (hardware comparison)")

    table2 = sub.add_parser("table2", help="regenerate Table 2 (accuracy averages)")
    _add_scale(table2)
    _add_workers(table2)
    _add_engine(table2)
    _add_store(table2)
    _add_service_url(table2)

    table3 = sub.add_parser("table3", help="regenerate Table 3 (normalized cycles)")
    _add_scale(table3)

    for figure, description in (
        ("figure7", "prediction accuracy, SPEC CPU2000"),
        ("figure8", "prediction accuracy, MediaBench/Etch/PtrDist"),
    ):
        fig = sub.add_parser(figure, help=f"regenerate {figure} ({description})")
        _add_scale(fig)
        _add_workers(fig)
        _add_engine(fig)
        _add_store(fig)
        _add_service_url(fig)

    figure9 = sub.add_parser("figure9", help="regenerate Figure 9 (DP sensitivity)")
    figure9.add_argument(
        "--panel",
        choices=("tables", "slots", "buffers", "tlbs", "all"),
        default="all",
        help="which sensitivity panel to run",
    )
    _add_scale(figure9)
    _add_workers(figure9)
    _add_engine(figure9)
    _add_store(figure9)
    _add_service_url(figure9)

    cache = sub.add_parser(
        "cache", help="inspect and maintain a persistent experiment store"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_ls = cache_sub.add_parser("ls", help="list store entries (LRU order)")
    _add_store(cache_ls, required=True)
    cache_ls.add_argument(
        "--kind", choices=("result", "stream"), help="only entries of this kind"
    )
    cache_stats = cache_sub.add_parser(
        "stats", help="store counters + in-memory miss-stream cache counters"
    )
    _add_store(cache_stats, required=True)
    cache_gc = cache_sub.add_parser(
        "gc", help="evict least-recently-used entries down to a byte budget"
    )
    _add_store(cache_gc, required=True)
    cache_gc.add_argument(
        "--max-bytes",
        type=int,
        required=True,
        help="byte budget to shrink the store to (0 evicts everything unpinned)",
    )

    serve = sub.add_parser(
        "serve", help="serve a store over HTTP (POST /runs, GET /results, ...)"
    )
    _add_store(serve, required=True)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8321, help="TCP port (0 = any)")
    serve.add_argument(
        "--verbose", action="store_true", help="log every request to stderr"
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help=(
            "concurrent requests allowed past admission (default 64); "
            "overload beyond the wait queue is shed with 429 + Retry-After"
        ),
    )
    serve.add_argument(
        "--tenant-config",
        help=(
            "JSON file of tenant objects ({name, token, rate, burst, "
            "cost_rate, cost_burst, worker}); when given, every request "
            "must present a configured token and is scoped to its tenant"
        ),
    )
    _add_workers(serve)

    worker = sub.add_parser(
        "worker", help="run one sweep worker against a scheduler service"
    )
    _add_url(worker)
    _add_store(worker)
    worker.add_argument(
        "--lease", type=float, default=15.0,
        help="job lease length in seconds (heartbeats extend it; default 15)",
    )
    worker.add_argument(
        "--poll", type=float, default=0.25,
        help="seconds between empty claim polls (default 0.25)",
    )
    worker.add_argument(
        "--batch", type=int, default=4,
        help="jobs claimed per request (default 4)",
    )
    worker.add_argument(
        "--max-jobs", type=int, default=None,
        help="exit after processing this many jobs (default: run until killed)",
    )
    worker.add_argument("--worker-id", help="override the host:pid:nonce identity")
    worker.add_argument(
        "--crash-after-claims", type=int, default=None, help=argparse.SUPPRESS
    )  # fault injection for the scheduler tests: vanish mid-lease
    worker.add_argument(
        "--slow", type=float, default=0.0, dest="slow_seconds",
        help=argparse.SUPPRESS,
    )  # fault injection: sleep before each replay (kill-mid-sweep tests)

    submit = sub.add_parser(
        "submit", help="submit a sweep to a scheduler service"
    )
    _add_url(submit)
    source = submit.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--app", action="append", dest="apps",
        help="application name (repeatable; crossed with every --mechanism)",
    )
    source.add_argument(
        "--specs-file",
        help="JSON file holding a list of RunSpec dicts (RunSpec.to_dict form)",
    )
    submit.add_argument(
        "--mechanism", action="append", dest="mechanisms",
        choices=sorted(PREFETCHER_NAMES),
        help="prefetch mechanism (repeatable; default DP)",
    )
    submit.add_argument("--rows", type=int, default=256, help="prediction table rows r")
    submit.add_argument("--slots", type=int, default=2, help="prediction slots s")
    submit.add_argument(
        "--buffer", type=int, default=16, help="prefetch buffer entries b"
    )
    submit.add_argument(
        "--sweep-id",
        help="explicit sweep id — resubmitting it resumes the sweep",
    )
    submit.add_argument(
        "--max-attempts", type=int, default=None,
        help="per-job claim budget before a job is parked as failed",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the fleet drains the sweep and print the rows",
    )
    _add_scale(submit)
    _add_engine(submit)

    trace = sub.add_parser(
        "trace", help="inspect distributed traces (ASCII flame or JSON)"
    )
    trace_source = trace.add_mutually_exclusive_group(required=True)
    trace_source.add_argument(
        "--url", help="scheduler service address (repro-tlb serve)"
    )
    trace_source.add_argument(
        "--file", help="JSON span dump (a list of spans, or {'spans': [...]})"
    )
    trace.add_argument(
        "--trace-id",
        help="trace to render; omitted with --url, lists trace summaries",
    )
    trace.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the raw span JSON instead of the flame rendering",
    )
    _add_request_timeout(trace)
    _add_token(trace)

    top = sub.add_parser(
        "top", help="live one-screen service summary (rps, latency, queues)"
    )
    _add_url(top)
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes (default 2)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (no screen clearing)",
    )

    health = sub.add_parser(
        "health", help="componentwise service health (GET /healthz)"
    )
    _add_url(health)

    alerts = sub.add_parser(
        "alerts", help="SLO alert states (GET /alerts); exit 1 if any fire"
    )
    _add_url(alerts)

    bench = sub.add_parser(
        "bench", help="benchmark-history tools (BENCH_history.jsonl)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_compare = bench_sub.add_parser(
        "compare",
        help="diff the newest history record against a baseline window; "
        "exit 1 on a perf regression",
    )
    bench_compare.add_argument(
        "--history",
        default="benchmarks/results/BENCH_history.jsonl",
        help="history file written by benchmarks/smoke.py --history",
    )
    bench_compare.add_argument(
        "--baseline-window", type=int, default=5,
        help="how many prior records the baseline mean averages "
        "(default 5; use 1 to compare against just the previous run)",
    )

    jobs = sub.add_parser("jobs", help="inspect or cancel scheduler sweeps")
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)
    jobs_status = jobs_sub.add_parser(
        "status", help="queue progress (optionally one sweep)"
    )
    _add_url(jobs_status)
    jobs_status.add_argument("--sweep", help="sweep id to report on")
    jobs_cancel = jobs_sub.add_parser(
        "cancel", help="cancel a sweep's queued jobs"
    )
    _add_url(jobs_cancel)
    jobs_cancel.add_argument("--sweep", required=True, help="sweep id to cancel")

    return parser


def _cmd_list_apps() -> int:
    for suite, specs in SUITES.items():
        print(f"{suite} ({len(specs)} applications):")
        for spec in specs:
            tags = f"  [{','.join(sorted(spec.tags))}]" if spec.tags else ""
            print(f"  {spec.name:<14} {spec.behavior.value}{tags}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.trace_file:
        from repro.sim.config import SimulationConfig

        prefetcher = create_prefetcher(args.mechanism, rows=args.rows, slots=args.slots)
        trace = load_reference_trace(args.trace_file)
        stats = evaluate(
            trace,
            prefetcher,
            SimulationConfig(buffer_entries=args.buffer),
            engine=args.engine,
        )
        results = ResultSet([stats])
    else:
        get_app(args.app)  # validate name early with a helpful error
        spec = RunSpec.of(
            args.app,
            args.mechanism,
            scale=args.scale,
            buffer_entries=args.buffer,
            engine=args.engine,
            rows=args.rows,
            slots=args.slots,
        )
        results = Runner(store=args.store).run([spec])
        stats = results[0]
    if args.save:
        path = results.save(args.save)
        print(f"result set written to {path}")
    print(stats.one_line())
    print(
        f"  misses={stats.tlb_misses} pb_hits={stats.pb_hits} "
        f"inserted={stats.buffer_inserted} evicted_unused={stats.buffer_evicted_unused} "
        f"overhead_ops={stats.overhead_memory_ops}"
    )
    return 0


def _cmd_export_trace(args: argparse.Namespace) -> int:
    get_app(args.app)
    trace = get_trace(args.app, args.scale)
    path = save_reference_trace(trace, args.out)
    print(f"wrote {trace} to {path}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.workloads.validation import render_report, validate_all

    context = ExperimentContext(scale=args.scale)
    results = validate_all(context, apps=args.apps)
    print(render_report(results))
    return 0 if all(result.passed for result in results) else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    text = generate_report(scale=args.scale, include_figures=not args.no_figures)
    with open(args.out, "w") as handle:
        handle.write(text)
    print(f"report written to {args.out}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.analysis.characterization import (
        associativity_anomalies,
        miss_rate_table,
        render_miss_rates,
    )

    apps = args.apps if args.apps else all_app_names()
    table = miss_rate_table(apps, scale=args.scale)
    print(render_miss_rates(table))
    anomalies = associativity_anomalies(table)
    if anomalies:
        print("\nassociativity anomalies (legitimate LRU behaviour):")
        for anomaly in anomalies:
            print(f"  {anomaly}")
    return 0


def _format_bytes(size: int) -> str:
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{int(size)} B"  # pragma: no cover - loop always returns


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.run.runner import SHARED_CACHE
    from repro.store import ExperimentStore

    store = ExperimentStore(args.store)
    if args.cache_command == "ls":
        entries = store.entries(kind=getattr(args, "kind", None))
        if not entries:
            print("store is empty")
            return 0
        print(f"{'kind':<8} {'key':<26} {'size':>10}  workload / mechanism")
        for entry in entries:
            what = entry["workload"] or ""
            if entry["mechanism"]:
                what += f" / {entry['mechanism']}"
            print(
                f"{entry['kind']:<8} {entry['key']:<26} "
                f"{_format_bytes(entry['size_bytes']):>10}  {what}"
            )
        print(f"{len(entries)} entries")
    elif args.cache_command == "stats":
        print("persistent store:")
        for name, value in store.stats().items():
            print(f"  {name:<16} {value}")
        print("in-memory miss-stream cache (this process):")
        for name, value in SHARED_CACHE.stats().items():
            print(f"  {name:<16} {value}")
    elif args.cache_command == "gc":
        report = store.gc(max_bytes=args.max_bytes)
        print(
            f"evicted {report['evicted']} entries, reclaimed "
            f"{_format_bytes(report['reclaimed_bytes'])}; store now "
            f"{_format_bytes(report['total_bytes'])}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    return serve(
        args.store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        verbose=args.verbose,
        max_inflight=args.max_inflight,
        tenant_config=args.tenant_config,
    )


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.sched import run_worker

    return run_worker(
        args.url,
        store=args.store,
        lease_seconds=args.lease,
        poll_interval=args.poll,
        batch=args.batch,
        max_jobs=args.max_jobs,
        worker_id=args.worker_id,
        crash_after_claims=args.crash_after_claims,
        slow_seconds=args.slow_seconds,
        request_timeout=args.request_timeout,
        token=args.token,
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.sched import SchedulerClient

    if args.specs_file:
        specs = json_module.loads(open(args.specs_file).read())
        if not isinstance(specs, list):
            print(f"{args.specs_file}: expected a JSON list of RunSpec dicts")
            return 1
        specs = [RunSpec.from_dict(raw) for raw in specs]
    else:
        mechanisms = args.mechanisms or ["DP"]
        specs = [
            RunSpec.of(
                app,
                mechanism,
                scale=args.scale,
                buffer_entries=args.buffer,
                engine=args.engine,
                rows=args.rows,
                slots=args.slots,
            )
            for app in args.apps
            for mechanism in mechanisms
        ]
    client = SchedulerClient(args.url, timeout=args.request_timeout, token=args.token)
    if args.wait:
        results = client.submit_sweep(
            specs, sweep_id=args.sweep_id, max_attempts=args.max_attempts
        )
        for stats in results:
            print(stats.one_line())
        print(f"{len(results)} rows")
        return 0
    batch = client.submit_jobs(
        [spec.to_dict() for spec in specs],
        sweep_id=args.sweep_id,
        max_attempts=args.max_attempts,
    )
    print(
        f"sweep {batch['sweep_id']}: {batch['total']} jobs "
        f"({batch['queued']} queued, {batch['precompleted']} already stored)"
    )
    print(f"watch it: repro-tlb jobs status --url {args.url} --sweep {batch['sweep_id']}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.obs import render_flame

    if args.file:
        with open(args.file) as handle:
            payload = json_module.load(handle)
        spans = payload.get("spans", []) if isinstance(payload, dict) else payload
        if args.trace_id:
            spans = [
                span for span in spans if span.get("trace_id") == args.trace_id
            ]
    else:
        from repro.sched import SchedulerClient

        client = SchedulerClient(
            args.url, timeout=args.request_timeout, token=args.token
        )
        if not args.trace_id:
            traces = client.fetch_trace()["traces"]
            if not traces:
                print("no traces collected")
                return 0
            print(f"{'trace id':<18} {'spans':>6} {'duration':>10}  root")
            for summary in traces:
                print(
                    f"{summary['trace_id']:<18} {summary['spans']:>6} "
                    f"{summary['duration'] * 1000.0:>8.1f}ms  {summary['root']}"
                )
            print(f"{len(traces)} trace(s); rerun with --trace-id to render one")
            return 0
        spans = client.fetch_trace(args.trace_id)["spans"]
    if args.as_json:
        print(json_module.dumps(spans, indent=2))
        return 0
    if not spans:
        print("no spans" + (f" for trace {args.trace_id}" if args.trace_id else ""))
        return 1
    print(render_flame(spans))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time as time_module
    from collections import deque

    from repro.obs.console import render_top
    from repro.sched import SchedulerClient

    client = SchedulerClient(args.url, timeout=args.request_timeout, token=args.token)
    previous: dict | None = None
    previous_at: float | None = None
    # Per-refresh trend series rendered as sparklines; bounded to the
    # sparkline window so an all-day top never grows.
    trends: dict[str, deque] = {
        name: deque(maxlen=30) for name in ("p99_ms", "rps", "queued")
    }
    try:
        while True:
            stats = client.stats()
            now = time_module.monotonic()
            interval = (
                now - previous_at if previous_at is not None else None
            )
            metrics = stats.get("metrics", {})
            trends["p99_ms"].append(float(metrics.get("http_p99_ms", 0.0)))
            trends["queued"].append(float(stats.get("queue", {}).get("queued", 0)))
            if previous is not None and interval:
                delta = metrics.get("http_requests", 0) - (
                    previous.get("metrics", {}).get("http_requests", 0)
                )
                trends["rps"].append(max(0.0, delta / interval))
            frame = render_top(
                stats,
                previous=previous,
                interval=interval,
                history={name: list(series) for name, series in trends.items()},
            )
            if not args.once:
                # Clear-and-home rather than scroll: one refreshing screen.
                print("\x1b[2J\x1b[H", end="")
            print(frame, flush=True)
            if args.once:
                return 0
            previous, previous_at = stats, now
            time_module.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        return 0


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=args.request_timeout, token=args.token)
    try:
        report = client.healthz()
        degraded = False
    except ServiceError as exc:
        if exc.status != 503:
            raise
        report = exc.payload
        degraded = True
    print(f"service {args.url}: {report.get('status', 'unknown')}")
    for name, component in sorted(report.get("components", {}).items()):
        detail = "  ".join(
            f"{key}={value}"
            for key, value in component.items()
            if key not in ("status",)
        )
        print(f"  {name:<10} {component.get('status', '?'):<10} {detail}")
    firing = report.get("firing", [])
    if firing:
        print(f"firing alerts: {', '.join(firing)}")
    return 1 if degraded else 0


def _cmd_alerts(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(args.url, timeout=args.request_timeout, token=args.token)
    payload = client.alerts()
    if not payload.get("enabled", False):
        print("telemetry disabled: no alert engine on this service")
        return 0
    alerts = payload.get("alerts", [])
    print(f"{'alert':<30} {'state':<9} {'value':>10} {'threshold':>10}  component")
    for alert in alerts:
        value = alert.get("value")
        print(
            f"{alert['name']:<30} {alert['state']:<9} "
            f"{'-' if value is None else format(value, '.4g'):>10} "
            f"{alert['op']}{alert['threshold']:<9g}  {alert['component']}"
        )
    firing = payload.get("firing", [])
    print(f"{len(alerts)} rule(s), {len(firing)} firing")
    return 1 if firing else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import compare_history, format_compare, load_history

    if args.bench_command == "compare":
        report = compare_history(
            load_history(args.history), baseline_window=args.baseline_window
        )
        print(format_compare(report))
        return 1 if report["regressed"] else 0
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.sched import SchedulerClient

    client = SchedulerClient(args.url, timeout=args.request_timeout, token=args.token)
    if args.jobs_command == "status":
        progress = client.progress(getattr(args, "sweep", None))
        scope = progress["sweep_id"] or "all sweeps"
        print(f"{scope}: {progress['total']} jobs")
        for state in ("queued", "running", "done", "failed", "cancelled"):
            print(f"  {state:<10} {progress[state]}")
        for job in progress.get("failed_jobs", []):
            print(f"  failed {job['id']} ({job['spec_key']}): {job['error']}")
        return 0 if not progress["failed"] else 1
    if args.jobs_command == "cancel":
        outcome = client.cancel(args.sweep)
        print(f"sweep {args.sweep}: cancelled {outcome['cancelled']} queued job(s)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Library validation errors (unknown engine names in a specs file,
    bad knob values, unreachable services, ...) are reported as one
    ``error:`` line on stderr instead of a traceback from deep inside
    dispatch.
    """
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: the Unix-conventional
        # quiet exit, not a traceback. Detach stdout so the interpreter
        # shutdown flush doesn't raise the same error again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list-apps":
        return _cmd_list_apps()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "export-trace":
        return _cmd_export_trace(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "characterize":
        return _cmd_characterize(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "health":
        return _cmd_health(args)
    if args.command == "alerts":
        return _cmd_alerts(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "jobs":
        return _cmd_jobs(args)
    if args.command == "table1":
        print(ExperimentContext(scale=0.05).run_table1())
        return 0

    context = ExperimentContext(
        scale=args.scale,
        workers=getattr(args, "workers", 0),
        engine=getattr(args, "engine", "auto"),
        store=getattr(args, "store", None),
        service_url=getattr(args, "service_url", None),
        request_timeout=getattr(args, "request_timeout", 30.0),
        service_token=getattr(args, "token", None),
    )
    if args.command == "table2":
        print(compare_table2(context.run_table2()))
    elif args.command == "table3":
        print(compare_table3(context.run_table3()))
    elif args.command == "figure7":
        print(context.render_figure(context.run_figure7(), "Figure 7: SPEC CPU2000"))
    elif args.command == "figure8":
        print(
            context.render_figure(
                context.run_figure8(), "Figure 8: MediaBench / Etch / PtrDist"
            )
        )
    elif args.command == "figure9":
        panels = {
            "tables": ("Figure 9a: DP table size x associativity", context.run_figure9_tables),
            "slots": ("Figure 9b: DP prediction slots", context.run_figure9_slots),
            "buffers": ("Figure 9c: prefetch buffer size", context.run_figure9_buffers),
            "tlbs": ("Figure 9d: TLB size", context.run_figure9_tlbs),
        }
        selected = panels if args.panel == "all" else {args.panel: panels[args.panel]}
        for title, runner in selected.values():
            print(context.render_figure(runner(), title))
    return 0


if __name__ == "__main__":
    sys.exit(main())
