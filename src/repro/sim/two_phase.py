"""Two-phase fast simulation: TLB filter once, replay misses per scheme.

The paper's organization makes prefetching invisible to the TLB: a
prefetch-buffer hit inserts the entry into the TLB exactly as a demand
fetch would, so TLB contents — and therefore the miss stream — are
identical under every mechanism (and under none). That invariance lets
us split simulation into:

1. :func:`filter_tlb` — run the reference trace through the TLB once
   per (workload, TLB shape) and record every miss with its PC, evicted
   page, and position; and
2. :func:`replay_prefetcher` — drive each mechanism + prefetch buffer
   over that recorded miss stream.

With ~20 mechanism configurations per workload (the Figure 7 sweep)
this saves ~95% of simulation work. ``tests/test_two_phase``
property-tests that both paths report identical statistics.

These are the low-level building blocks; batch execution — with the
miss streams cached process-wide and replays optionally fanned out to
worker processes — goes through :class:`repro.run.Runner`.
"""

from __future__ import annotations

import numpy as np

from repro.mem.trace import NO_EVICTION, MissTrace, ReferenceTrace
from repro.prefetch.base import Prefetcher
from repro.sim.config import SimulationConfig, TLBConfig
from repro.sim.stats import PrefetchRunStats
from repro.tlb.prefetch_buffer import PrefetchBuffer


def filter_tlb(
    trace: ReferenceTrace,
    tlb_config: TLBConfig | None = None,
    warmup_fraction: float = 0.0,
) -> MissTrace:
    """Phase 1: produce the TLB miss stream for a reference trace.

    Args:
        trace: RLE page reference stream.
        tlb_config: TLB shape (paper default: 128-entry fully assoc.).
        warmup_fraction: leading fraction of references whose misses
            are flagged as warm-up (they still train mechanisms during
            replay but are excluded from accuracy).
    """
    tlb_config = tlb_config or TLBConfig()
    tlb = tlb_config.build()

    miss_pcs: list[int] = []
    miss_pages: list[int] = []
    miss_evicted: list[int] = []
    miss_ref_index: list[int] = []

    references_seen = 0
    pcs, pages, counts = trace.as_lists()
    # Local bindings keep the hot loop free of attribute lookups.
    probe = tlb.probe
    fill = tlb.fill
    for pc, page, count in zip(pcs, pages, counts):
        if not probe(page):
            evicted = fill(page)
            miss_pcs.append(pc)
            miss_pages.append(page)
            miss_evicted.append(NO_EVICTION if evicted is None else evicted)
            miss_ref_index.append(references_seen)
        references_seen += count

    warmup_limit = int(trace.total_references * warmup_fraction)
    warmup_misses = int(np.searchsorted(np.asarray(miss_ref_index), warmup_limit))
    return MissTrace(
        pcs=np.asarray(miss_pcs, dtype=np.int64),
        pages=np.asarray(miss_pages, dtype=np.int64),
        evicted=np.asarray(miss_evicted, dtype=np.int64),
        ref_index=np.asarray(miss_ref_index, dtype=np.int64),
        total_references=trace.total_references,
        warmup_misses=warmup_misses,
        name=trace.name,
        tlb_label=tlb.label,
    )


def replay_prefetcher(
    miss_trace: MissTrace,
    prefetcher: Prefetcher,
    buffer_entries: int = 16,
    max_prefetches_per_miss: int = 0,
) -> PrefetchRunStats:
    """Phase 2: run one mechanism over a recorded miss stream.

    Semantically identical to the online pipeline: for each miss, probe
    the buffer (removing on hit), inform the mechanism, insert its
    prefetches.
    """
    buffer = PrefetchBuffer(buffer_entries)
    pcs, pages, evicted, _ = miss_trace.as_lists()
    warmup = miss_trace.warmup_misses

    # Mechanism counters are cumulative over the instance's lifetime;
    # snapshot them so a reused (pre-trained) instance reports only
    # this run's activity instead of inflating it with earlier runs'.
    issued_before = prefetcher.prefetches_issued
    overhead_before = prefetcher.overhead_ops_total

    pb_hits_measured = 0
    lookup_remove = buffer.lookup_remove
    insert = buffer.insert
    on_miss = prefetcher.on_miss
    for index, page in enumerate(pages):
        pb_hit = lookup_remove(page)
        if pb_hit and index >= warmup:
            pb_hits_measured += 1
        prefetches = on_miss(pcs[index], page, evicted[index], pb_hit)
        if max_prefetches_per_miss and len(prefetches) > max_prefetches_per_miss:
            prefetches = prefetches[:max_prefetches_per_miss]
        for target in prefetches:
            insert(target)

    return PrefetchRunStats(
        workload=miss_trace.name,
        mechanism=prefetcher.label,
        tlb_label=miss_trace.tlb_label,
        total_references=miss_trace.total_references,
        tlb_misses=miss_trace.num_misses,
        measured_misses=miss_trace.measured_misses,
        pb_hits=pb_hits_measured,
        prefetches_issued=prefetcher.prefetches_issued - issued_before,
        buffer_inserted=buffer.inserted,
        buffer_refreshed=buffer.refreshed,
        buffer_evicted_unused=buffer.evicted_unused,
        overhead_memory_ops=prefetcher.overhead_ops_total - overhead_before,
        # A prefetch already buffered is coalesced, costing no new fetch.
        prefetch_fetch_ops=buffer.inserted,
    )


def evaluate(
    trace: ReferenceTrace,
    prefetcher: Prefetcher,
    config: SimulationConfig | None = None,
    engine: str = "reference",
) -> PrefetchRunStats:
    """Convenience wrapper: filter then replay under one config.

    ``engine`` selects the replay implementation (see
    :mod:`repro.sim.engine`): ``"reference"`` (default), ``"fast"``
    (specialized loops) or ``"auto"``. All engines return bit-identical
    statistics and train the given instance identically.
    """
    config = config or SimulationConfig()
    miss_trace = filter_tlb(trace, config.tlb, config.warmup_fraction)
    # Imported lazily: repro.sim.engine imports this module.
    from repro.sim.engine import replay

    return replay(
        miss_trace,
        prefetcher,
        buffer_entries=config.buffer_entries,
        max_prefetches_per_miss=config.max_prefetches_per_miss,
        engine=engine,
    )
