"""Per-run statistics for prefetching simulations.

The headline metric is the paper's *prediction accuracy*: the fraction
of TLB misses whose translation was waiting in the prefetch buffer. The
remaining counters quantify the costs the paper weighs against accuracy
— prefetch volume, buffer churn, and memory-system operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PrefetchRunStats:
    """Outcome of running one mechanism over one workload.

    Attributes:
        workload: workload name.
        mechanism: mechanism display label (e.g. ``DP,256,D``).
        tlb_label: TLB configuration label (e.g. ``128e-FA``).
        total_references: memory references the TLB observed.
        tlb_misses: total TLB misses (warm-up included).
        measured_misses: misses inside the measurement window.
        pb_hits: measured misses satisfied by the prefetch buffer.
        prefetches_issued: pages the mechanism asked to prefetch.
        buffer_inserted: prefetches accepted as new buffer entries.
        buffer_refreshed: prefetches that merely refreshed an entry.
        buffer_evicted_unused: buffer entries evicted before any use.
        overhead_memory_ops: non-prefetch memory ops (RP pointer writes).
        prefetch_fetch_ops: memory fetches for prefetched entries.
        extra: free-form per-run annotations (sweep parameters etc.).
    """

    workload: str
    mechanism: str
    tlb_label: str
    total_references: int
    tlb_misses: int
    measured_misses: int
    pb_hits: int
    prefetches_issued: int
    buffer_inserted: int
    buffer_refreshed: int
    buffer_evicted_unused: int
    overhead_memory_ops: int
    prefetch_fetch_ops: int
    extra: dict = field(default_factory=dict)

    @property
    def prediction_accuracy(self) -> float:
        """Fraction of measured TLB misses that hit the prefetch buffer."""
        if self.measured_misses == 0:
            return 0.0
        return self.pb_hits / self.measured_misses

    @property
    def miss_rate(self) -> float:
        """TLB misses per reference (the paper's ``m_i``)."""
        if self.total_references == 0:
            return 0.0
        return self.tlb_misses / self.total_references

    @property
    def memory_ops_total(self) -> int:
        """All prefetch-related memory operations (overhead + fetches)."""
        return self.overhead_memory_ops + self.prefetch_fetch_ops

    @property
    def memory_ops_per_miss(self) -> float:
        """Average prefetch-related memory operations per TLB miss."""
        if self.tlb_misses == 0:
            return 0.0
        return self.memory_ops_total / self.tlb_misses

    @property
    def buffer_waste_fraction(self) -> float:
        """Share of accepted prefetches evicted before being used."""
        if self.buffer_inserted == 0:
            return 0.0
        return self.buffer_evicted_unused / self.buffer_inserted

    def one_line(self) -> str:
        """Compact human-readable summary row."""
        return (
            f"{self.workload:<14} {self.mechanism:<12} acc={self.prediction_accuracy:6.3f} "
            f"miss_rate={self.miss_rate:8.5f} prefetches={self.prefetches_issued:>9} "
            f"mem_ops/miss={self.memory_ops_per_miss:5.2f}"
        )
