"""Replay-engine selection: reference semantics or the fast path.

Two engines can replay a mechanism over a TLB miss stream:

- ``"reference"`` — :func:`repro.sim.two_phase.replay_prefetcher`,
  driving live :class:`~repro.prefetch.base.Prefetcher` /
  :class:`~repro.tlb.prefetch_buffer.PrefetchBuffer` objects. This is
  the authoritative engine: the paper's numbers come from it.
- ``"fast"`` — :func:`repro.sim.fastpath.replay_fast`, the specialized
  flat-array loops, bit-identical by contract (and by the
  ``tests/differential/`` harness) but several times faster.
- ``"batch"`` — :func:`repro.sim.batchpath.replay_batch`, the one-pass
  multi-config loop. It amortizes the stream scan across *many* specs,
  so it only pays off at the :class:`~repro.run.runner.Runner` level:
  the runner groups a batch by stream key and replays each group of
  compatible fresh specs in a single pass. For a *single* replay (this
  module's :func:`replay`) there is nothing to amortize, so
  ``engine="batch"`` resolves to the fast engine here — same bits,
  and warm (trained) instances keep their snapshot warm-start.

``"auto"`` picks the fast engine whenever the mechanism has a fast
loop. Warm-started (trained) instances take the fast path too: the
fast engine seeds its tables from a canonical snapshot of the instance
and writes the final state back (:mod:`repro.ckpt`), so the engines
agree on statistics *and* side effects. Only mechanisms without a fast
loop — e.g. user-defined subclasses — fall back to the reference
engine, so ``auto`` is always correct to request.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.mem.trace import MissTrace
from repro.prefetch.base import Prefetcher
from repro.sim import fastpath
from repro.sim.stats import PrefetchRunStats
from repro.sim.two_phase import replay_prefetcher

#: Engine names accepted everywhere an ``engine`` knob appears
#: (``RunSpec``, ``Runner``, ``evaluate``, ``simulate``, the CLI).
ENGINES: tuple[str, ...] = ("auto", "reference", "fast", "batch")


def validate_engine(engine: str) -> str:
    """Return ``engine`` or raise the library's configuration error."""
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose from {ENGINES}"
        )
    return engine


def fast_available(prefetcher: Prefetcher) -> bool:
    """True when ``engine="fast"`` can replay this mechanism at all."""
    return fastpath.supports(prefetcher)


def batch_available(prefetcher: Prefetcher) -> bool:
    """True when the batch engine can include this *fresh* instance.

    The batch loop advances throwaway tables built from specs; it has
    no warm-start path, so trained instances (and mechanisms without a
    batch loop) are replayed per-spec instead — the
    :class:`~repro.run.runner.Runner` applies exactly this predicate
    when it forms one-pass groups.
    """
    from repro.sim import batchpath

    return batchpath.supports(prefetcher) and not prefetcher.has_prediction_state()


def fast_preferred(prefetcher: Prefetcher) -> bool:
    """True when ``engine="auto"`` would pick the fast engine.

    ``auto`` falls back to the reference engine only for mechanisms
    without a fast loop (e.g. user-defined subclasses); trained state
    no longer matters — the fast engine warm-starts from a snapshot of
    the instance and trains it exactly as the reference engine would.
    """
    return fastpath.supports(prefetcher)


def resolve_engine(prefetcher: Prefetcher, engine: str = "auto") -> str:
    """The concrete engine (``reference`` or ``fast``) a replay will use.

    ``"batch"`` is a *runner-level* engine: for a single replay it
    resolves like ``"auto"`` (the batch loop needs multiple specs to
    amortize anything, and the fast engine is bit-identical).
    """
    validate_engine(engine)
    if engine in ("auto", "batch"):
        return "fast" if fast_preferred(prefetcher) else "reference"
    return engine


def replay(
    miss_trace: MissTrace,
    prefetcher: Prefetcher,
    buffer_entries: int = 16,
    max_prefetches_per_miss: int = 0,
    engine: str = "auto",
) -> PrefetchRunStats:
    """Replay one mechanism over a miss stream on the selected engine.

    The engines are observationally identical: same statistics, and
    both train the given instance (warm or fresh) the same way — any
    sequence of replays leaves the instance with the same canonical
    snapshot regardless of which engine ran each one.
    """
    if resolve_engine(prefetcher, engine) == "fast":
        return fastpath.replay_fast(
            miss_trace,
            prefetcher,
            buffer_entries=buffer_entries,
            max_prefetches_per_miss=max_prefetches_per_miss,
        )
    return replay_prefetcher(
        miss_trace,
        prefetcher,
        buffer_entries=buffer_entries,
        max_prefetches_per_miss=max_prefetches_per_miss,
    )
