"""Generic parameter-sweep helpers (sensitivity studies, ablations).

The figure-specific sweeps live in :mod:`repro.analysis.experiments`;
this module holds the reusable pieces: a cartesian sweep driver and the
page-size rescaling used by the superpage sensitivity ablation (the
paper studies page sizes in Section 3.3 / TR [19]).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.mem.address import DEFAULT_PAGE_SHIFT, page_shift_for_size
from repro.mem.trace import ReferenceTrace
from repro.prefetch.base import Prefetcher
from repro.sim.config import SimulationConfig, TLBConfig
from repro.sim.stats import PrefetchRunStats
from repro.sim.two_phase import replay_prefetcher

if TYPE_CHECKING:  # repro.run imports this module; avoid the cycle.
    from repro.run.runner import Runner

#: A named way of building a fresh mechanism for each sweep point.
PrefetcherFactory = Callable[[], Prefetcher]


def rescale_trace(trace: ReferenceTrace, page_size: int) -> ReferenceTrace:
    """Re-express a 4 KiB-page trace at a larger page size.

    Larger pages are exact aggregations of 4 KiB pages (every aligned
    2^k group maps to one page), so shifting page numbers right
    reproduces precisely the reference stream an MMU with that page
    size would see. Adjacent runs that now land on the same page are
    merged to restore RLE compression.
    """
    shift = page_shift_for_size(page_size) - DEFAULT_PAGE_SHIFT
    if shift == 0:
        return trace
    pages = trace.pages >> shift
    # Merge adjacent same-page runs (same pc kept from the first run).
    boundaries = np.flatnonzero(np.diff(pages) != 0) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(pages)]))
    cumulative = np.concatenate(([0], np.cumsum(trace.counts)))
    merged_counts = cumulative[ends] - cumulative[starts]
    return ReferenceTrace(
        trace.pcs[starts],
        pages[starts],
        merged_counts,
        name=f"{trace.name}@{page_size // 1024}K",
    )


def sweep(
    traces: Iterable[ReferenceTrace],
    factories: Sequence[tuple[str, PrefetcherFactory]],
    configs: Sequence[SimulationConfig] | None = None,
    runner: "Runner | None" = None,
) -> list[PrefetchRunStats]:
    """Run every (trace, mechanism factory, config) combination.

    Each sweep point gets a *fresh* mechanism from its factory (no state
    leaks between points) but shares the filtered miss stream for its
    (trace, TLB) pair through the runner's process-wide cache — traces
    are keyed by content, so repeating a sweep (or overlapping it with
    a RunSpec batch over the same data) never refilters.

    This entry point exists for *ad-hoc* traces and factory callables;
    registry workloads are better expressed as
    :class:`~repro.run.spec.RunSpec` batches, which can also execute in
    parallel. Returns the flat list of per-run statistics; each run's
    ``extra`` dict records the sweep coordinates.
    """
    from repro.run.runner import Runner

    runner = runner if runner is not None else Runner()
    configs = list(configs) if configs is not None else [SimulationConfig()]
    results: list[PrefetchRunStats] = []
    for trace in traces:
        for config in configs:
            miss_trace = runner.miss_stream(
                trace, tlb=config.tlb, warmup_fraction=config.warmup_fraction
            )
            for label, factory in factories:
                stats = replay_prefetcher(
                    miss_trace,
                    factory(),
                    buffer_entries=config.buffer_entries,
                    max_prefetches_per_miss=config.max_prefetches_per_miss,
                )
                stats.extra["factory"] = label
                stats.extra["tlb"] = config.tlb.label
                stats.extra["buffer"] = config.buffer_entries
                results.append(stats)
    return results


def page_size_sweep(
    trace: ReferenceTrace,
    factory: PrefetcherFactory,
    page_sizes: Sequence[int] = (4096, 8192, 16384, 65536),
    tlb: TLBConfig | None = None,
    buffer_entries: int = 16,
) -> dict[int, PrefetchRunStats]:
    """Evaluate one mechanism across page sizes (superpage ablation).

    Returns ``page_size -> stats``. Bigger pages shrink the footprint
    in pages (fewer misses) while preserving pattern structure, so a
    robust mechanism's accuracy should be roughly stable — the paper's
    claim that DP "is able to make good predictions across different
    TLB configurations and page sizes".
    """
    from repro.run.runner import Runner

    runner = Runner()
    results: dict[int, PrefetchRunStats] = {}
    for page_size in page_sizes:
        miss_trace = runner.miss_stream(
            trace, tlb=tlb or TLBConfig(), page_size=page_size
        )
        stats = replay_prefetcher(miss_trace, factory(), buffer_entries=buffer_entries)
        stats.extra["page_size"] = page_size
        results[page_size] = stats
    return results
