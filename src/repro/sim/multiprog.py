"""Multiprogrammed (context-switching) prefetching study.

The paper's Section 4 lists "prefetching issues in a multiprogrammed
environment (flushing/switching the prefetch tables)" as ongoing work;
this module builds that experiment. Several application traces share
the machine under round-robin scheduling with a fixed reference
quantum. On every context switch the TLB and prefetch buffer are
flushed (distinct address spaces make stale translations useless); the
policy question is what happens to the *prediction* state:

- ``flush`` — on-chip prediction tables are cleared each switch (cheap
  hardware, cold restart every quantum).
- ``shared`` — tables are left alone and processes overwrite each
  other's entries (pollution, but surviving state may still help).
- ``per_process`` — tables are saved/restored per process (an upper
  bound; models per-process table banks or tagged entries).

RP is unaffected by the policy knob: its prediction state lives in each
process's page table, which is inherently per-process — one of the few
structural advantages the paper grants it.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.errors import ConfigurationError
from repro.mem.trace import ReferenceTrace
from repro.prefetch.base import Prefetcher
from repro.sim.config import SimulationConfig
from repro.sim.functional import build_mmu
from repro.tlb.mmu import TranslationOutcome

#: Page/PC namespace separation between processes.
_PAGE_STRIDE = 1 << 40
_PC_STRIDE = 1 << 32

FLUSH_POLICIES: tuple[str, ...] = ("flush", "shared", "per_process")


@dataclass(frozen=True)
class MultiprogStats:
    """Outcome of one multiprogrammed run.

    Attributes:
        policy: prediction-state policy used.
        total_references: references across all processes.
        tlb_misses: total TLB misses (includes switch-induced misses).
        pb_hits: misses satisfied by the prefetch buffer.
        context_switches: number of quantum expirations.
    """

    policy: str
    total_references: int
    tlb_misses: int
    pb_hits: int
    context_switches: int

    @property
    def prediction_accuracy(self) -> float:
        return self.pb_hits / self.tlb_misses if self.tlb_misses else 0.0

    @property
    def miss_rate(self) -> float:
        if self.total_references == 0:
            return 0.0
        return self.tlb_misses / self.total_references


def _quantum_segments(
    traces: list[ReferenceTrace], quantum: int
) -> list[tuple[int, int, int]]:
    """Round-robin schedule: list of (process, start_run, end_run).

    Segments are cut at run boundaries once the quantum's reference
    budget is met, so every process advances by roughly ``quantum``
    references per turn.
    """
    cursors = [0] * len(traces)
    counts = [trace.counts.tolist() for trace in traces]
    segments: list[tuple[int, int, int]] = []
    active = set(range(len(traces)))
    while active:
        for process in sorted(active):
            runs = counts[process]
            start = cursors[process]
            if start >= len(runs):
                active.discard(process)
                continue
            taken = 0
            end = start
            while end < len(runs) and taken < quantum:
                taken += runs[end]
                end += 1
            segments.append((process, start, end))
            cursors[process] = end
            if end >= len(runs):
                active.discard(process)
    return segments


def simulate_multiprogrammed(
    traces: list[ReferenceTrace],
    prefetcher_factory,
    policy: str = "flush",
    quantum: int = 50_000,
    config: SimulationConfig | None = None,
) -> MultiprogStats:
    """Run several processes round-robin through one MMU.

    Args:
        traces: one reference trace per process (address spaces are
            automatically disjoint via per-process page/PC offsets).
        prefetcher_factory: zero-argument callable building a fresh
            mechanism (one per process under ``per_process``, one
            shared instance otherwise).
        policy: one of :data:`FLUSH_POLICIES`.
        quantum: references per scheduling quantum.
        config: TLB/buffer configuration (paper defaults).
    """
    if policy not in FLUSH_POLICIES:
        raise ConfigurationError(
            f"policy must be one of {FLUSH_POLICIES}, got {policy!r}"
        )
    if quantum <= 0:
        raise ConfigurationError(f"quantum must be > 0, got {quantum}")
    if not traces:
        raise ConfigurationError("need at least one process trace")
    config = config or SimulationConfig()

    if policy == "per_process":
        prefetchers: list[Prefetcher] = [prefetcher_factory() for _ in traces]
    else:
        shared = prefetcher_factory()
        prefetchers = [shared for _ in traces]

    mmu = build_mmu(prefetchers[0], config)
    per_process_lists = [trace.as_lists() for trace in traces]
    segments = _quantum_segments(traces, quantum)

    measured_misses = 0
    measured_hits = 0
    switches = 0
    previous_process: int | None = None
    for process, start, end in segments:
        if previous_process is not None and process != previous_process:
            switches += 1
            mmu.tlb.flush()
            mmu.buffer.flush()
            if policy == "flush":
                mmu.prefetcher.flush()
        mmu.prefetcher = prefetchers[process]
        previous_process = process

        pcs, pages, counts = per_process_lists[process]
        page_base = process * _PAGE_STRIDE
        pc_base = process * _PC_STRIDE
        for index in range(start, end):
            outcome = mmu.translate_run(
                pc_base + pcs[index], page_base + pages[index], counts[index]
            )
            if outcome is not TranslationOutcome.TLB_HIT:
                measured_misses += 1
                if outcome is TranslationOutcome.BUFFER_HIT:
                    measured_hits += 1

    return MultiprogStats(
        policy=policy,
        total_references=int(sum(t.total_references for t in traces)),
        tlb_misses=measured_misses,
        pb_hits=measured_hits,
        context_switches=switches,
    )


def compare_policies(
    traces: list[ReferenceTrace],
    prefetcher_factory,
    quantum: int = 50_000,
    config: SimulationConfig | None = None,
) -> dict[str, MultiprogStats]:
    """Run all three prediction-state policies on the same workload mix."""
    return {
        policy: simulate_multiprogrammed(
            traces, prefetcher_factory, policy=policy, quantum=quantum, config=config
        )
        for policy in FLUSH_POLICIES
    }
