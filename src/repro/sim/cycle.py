"""Execution-cycle simulation — the paper's Table 3 experiment.

Replays a TLB miss stream against a mechanism while modelling the
memory traffic prefetching induces, under the paper's assumptions
(which deliberately favour RP):

- A constant ``tlb_miss_penalty`` (100 cycles) stalls the CPU on every
  demand fill (prefetch-buffer miss).
- A prefetch-buffer hit whose entry is *still in flight* stalls the CPU
  until the entry arrives (possibly longer than a demand fill when the
  prefetch queue is backed up — how RP manages to lose cycles while
  winning accuracy on mcf).
- Every prefetch-related memory operation — RP's stack-pointer
  manipulations and both schemes' entry fetches — costs
  ``prefetch_op_cost`` (50) cycles and is serialized through a single
  prefetch-traffic queue that does **not** contend with demand traffic.
- Optionally (the paper's RP benefit-of-the-doubt), when the queue is
  still busy at miss time, the mechanism's entry *fetches* are skipped
  (no buffer insertion, no traffic) while its overhead pointer ops
  still execute: "there would be only 4 memory transactions instead
  of 6".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.costs import TimingParameters
from repro.cpu.timing import CoreTimeline
from repro.mem.trace import MissTrace
from repro.prefetch.base import Prefetcher
from repro.prefetch.recency import RecencyPrefetcher
from repro.tlb.prefetch_buffer import PrefetchBuffer


@dataclass(frozen=True)
class CycleSimConfig:
    """Parameters of a cycle-timing run.

    Attributes:
        timing: cycle costs (paper defaults).
        buffer_entries: prefetch buffer capacity.
        skip_fetches_when_busy: apply the paper's RP rule — drop entry
            fetches when earlier prefetch traffic is still outstanding.
            ``None`` (default) enables it automatically for RP only,
            matching the paper's description.
        max_prefetches_per_miss: engine clamp (0 = mechanism's bound).
    """

    timing: TimingParameters = TimingParameters()
    buffer_entries: int = 16
    skip_fetches_when_busy: bool | None = None
    max_prefetches_per_miss: int = 0


@dataclass(frozen=True)
class CycleStats:
    """Outcome of a cycle-timing run.

    ``normalized_cycles`` is only meaningful once a baseline (the same
    miss stream under :class:`~repro.prefetch.null.NullPrefetcher`) has
    been divided out — see :func:`normalized_cycles`.
    """

    workload: str
    mechanism: str
    total_cycles: float
    base_cycles: float
    stall_cycles: float
    demand_stall_cycles: float
    in_flight_stall_cycles: float
    memory_ops: int
    pb_hits: int
    tlb_misses: int
    extra: dict = field(default_factory=dict)

    @property
    def prediction_accuracy(self) -> float:
        return self.pb_hits / self.tlb_misses if self.tlb_misses else 0.0


def simulate_cycles(
    miss_trace: MissTrace,
    prefetcher: Prefetcher,
    config: CycleSimConfig | None = None,
) -> CycleStats:
    """Replay ``miss_trace`` with timing, returning cycle statistics."""
    config = config or CycleSimConfig()
    timing = config.timing
    skip_when_busy = config.skip_fetches_when_busy
    if skip_when_busy is None:
        skip_when_busy = isinstance(prefetcher, RecencyPrefetcher)

    timeline = CoreTimeline(timing)
    buffer = PrefetchBuffer(config.buffer_entries)
    arrival_time: dict[int, float] = {}  # page -> when its fetch completes

    queue_free_at = 0.0
    demand_stalls = 0.0
    inflight_stalls = 0.0
    memory_ops = 0
    pb_hits = 0
    op_cost = timing.prefetch_op_cost

    exposure = timing.stall_exposure
    exposed_penalty = exposure * timing.tlb_miss_penalty
    pcs, pages, evicted, ref_index = miss_trace.as_lists()
    for i, page in enumerate(pages):
        now = timeline.advance_to_reference(ref_index[i])

        pb_hit = buffer.lookup_remove(page)
        if pb_hit:
            pb_hits += 1
            arrives = arrival_time.pop(page, 0.0)
            if arrives > now:
                # Wait for the in-flight entry, but never beyond what a
                # fallback demand fetch would cost.
                stall = exposure * min(arrives - now, timing.tlb_miss_penalty)
                timeline.stall(stall)
                inflight_stalls += stall
        else:
            timeline.stall(exposed_penalty)
            demand_stalls += exposed_penalty
        now = timeline.now

        prefetches = prefetcher.on_miss(pcs[i], page, evicted[i], pb_hit)
        if config.max_prefetches_per_miss and len(prefetches) > config.max_prefetches_per_miss:
            prefetches = prefetches[: config.max_prefetches_per_miss]

        # The skip rule keys on traffic from *earlier* misses still
        # being outstanding, so sample the queue before this miss's own
        # operations are enqueued.
        busy_before = queue_free_at > now
        backlog_limit = timing.max_queue_backlog * op_cost

        # Overhead operations (RP pointer writes) execute unless the
        # write queue is full (stale pointer updates coalesce/drop —
        # a timing-only simplification that favours RP).
        overhead = prefetcher.last_overhead_ops
        if overhead and queue_free_at - now < backlog_limit:
            start = max(now, queue_free_at)
            slots = 1 if timing.pointer_ops_pipelined else overhead
            queue_free_at = start + slots * op_cost
            memory_ops += overhead
        if overhead and busy_before and timing.walk_contention > 0.0:
            # Pending pointer writes contend with this miss's page walk.
            contention = timing.walk_contention * exposure * op_cost
            timeline.stall(contention)
            demand_stalls += contention
            now = timeline.now

        if prefetches and skip_when_busy and busy_before:
            # Paper's rule: treat as a wrong prediction but save traffic.
            prefetches = []

        for target in prefetches:
            if queue_free_at - now >= backlog_limit:
                break  # queue full: prefetch issue suppressed
            if target in buffer:
                buffer.insert(target)  # coalesced: refresh, no new fetch
                continue
            start = max(now, queue_free_at)
            queue_free_at = start + op_cost
            memory_ops += 1
            displaced = buffer.insert(target)
            if displaced is not None:
                arrival_time.pop(displaced, None)
            arrival_time[target] = queue_free_at

    total = timeline.finish(miss_trace.total_references)
    return CycleStats(
        workload=miss_trace.name,
        mechanism=prefetcher.label,
        total_cycles=total,
        base_cycles=total - timeline.total_stall_cycles,
        stall_cycles=timeline.total_stall_cycles,
        demand_stall_cycles=demand_stalls,
        in_flight_stall_cycles=inflight_stalls,
        memory_ops=memory_ops,
        pb_hits=pb_hits,
        tlb_misses=miss_trace.num_misses,
    )


def normalized_cycles(stats: CycleStats, baseline: CycleStats) -> float:
    """Cycles relative to a no-prefetching run of the same miss stream
    (the paper's Table 3 metric)."""
    if baseline.total_cycles == 0:
        return 0.0
    return stats.total_cycles / baseline.total_cycles
