"""Simulation engines.

- :mod:`repro.sim.config` — TLB/buffer/warm-up configuration records.
- :mod:`repro.sim.stats` — per-run statistics containers.
- :mod:`repro.sim.functional` — online functional simulation of the
  full MMU pipeline (the sim-cache analogue).
- :mod:`repro.sim.two_phase` — reference two-phase path: filter the
  TLB once per (workload, TLB config), then replay only the miss
  stream per prefetcher. Exactly equivalent to the functional path
  (property-tested) because prefetching cannot change the TLB miss
  stream.
- :mod:`repro.sim.fastpath` — vectorized fast-path replay: each
  mechanism compiled into one flat-array loop, bit-identical to the
  reference replay (enforced by ``tests/differential/``).
- :mod:`repro.sim.engine` — engine selection (``auto`` / ``reference``
  / ``fast``) shared by ``RunSpec``, ``evaluate``, ``simulate`` and
  the CLI.
- :mod:`repro.sim.cycle` — execution-cycle timing model (the
  sim-outorder analogue behind the paper's Table 3).
- :mod:`repro.sim.sweep` — parameter-sweep drivers for the sensitivity
  figures.
- :mod:`repro.sim.multiprog` — multiprogrammed (context-switching)
  simulation, the paper's Section 4 future-work axis.
"""

from repro.sim.config import SimulationConfig, TLBConfig
from repro.sim.cycle import CycleSimConfig, CycleStats, simulate_cycles
from repro.sim.engine import ENGINES, replay, resolve_engine
from repro.sim.fastpath import replay_fast
from repro.sim.functional import simulate
from repro.sim.stats import PrefetchRunStats
from repro.sim.two_phase import filter_tlb, replay_prefetcher

__all__ = [
    "CycleSimConfig",
    "CycleStats",
    "ENGINES",
    "PrefetchRunStats",
    "SimulationConfig",
    "TLBConfig",
    "filter_tlb",
    "replay",
    "replay_fast",
    "replay_prefetcher",
    "resolve_engine",
    "simulate",
    "simulate_cycles",
]
