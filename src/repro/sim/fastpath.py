"""Vectorized fast-path replay engine: flat-array state, no dispatch.

:func:`repro.sim.two_phase.replay_prefetcher` is the *reference*
replay: it drives a live :class:`~repro.prefetch.base.Prefetcher`
object and the real :class:`~repro.tlb.prefetch_buffer.PrefetchBuffer`
miss by miss, paying a stack of method calls, ``OrderedDict``
operations and per-entry objects for every one of the millions of
misses a sweep replays. This module is the *fast* replay: each
mechanism's whole decision procedure is compiled into one specialized
Python loop whose state lives in flat parallel lists indexed by
integers (plus plain dicts for the prefetch buffer and for
set-associative tables), with statistics accumulated in local counters
rather than per-reference objects. The miss stream itself is
precompiled once into flat lists (and, for recency prefetching, a
dense ``numpy`` page-id mapping) before the loop starts.

The contract is **bit-identical statistics**: for a freshly-built
mechanism, :func:`replay_fast` returns exactly the
:class:`~repro.sim.stats.PrefetchRunStats` the reference engine
returns, field for field. That contract is enforced by
``tests/differential/`` — a curated grid over every mechanism family,
workload family and page size, plus seeded randomized traces/specs —
and any change here must keep that suite green.

Unlike the reference engine, the fast engine never mutates the
mechanism instance it is given: the instance serves only as a
*configuration template* (rows, ways, slots, degree...), and replay
state is rebuilt from scratch. Callers who rely on training an
instance across runs must use the reference engine; the
``engine="auto"`` dispatch in :mod:`repro.sim.engine` falls back to it
automatically when an instance has prior state.

Implementation notes shared by every loop below:

- The prefetch buffer is a plain insertion-ordered dict whose first
  key is the LRU entry; its population is tracked in a local integer
  (``buffered``) so the hot path never calls ``len``.
- Each loop replicates, operation for operation, what
  ``replay_prefetcher`` does with the corresponding mechanism class:
  (1) probe the buffer, removing on hit (hits count after warm-up);
  (2) run the decision procedure, counting every page the mechanism
  *asks* to prefetch (pre-clamp, as ``Prefetcher.account`` does);
  (3) clamp to ``max_prefetches_per_miss`` and insert into the buffer
  with refresh-on-duplicate and evicted-unused accounting.
- Prediction tables are flat parallel arrays for the direct-mapped
  case (dict-free integer indexing) and per-set plain dicts — first
  key = LRU, delete/reinsert = promote — for other associativities.
"""

from __future__ import annotations

import numpy as np

from repro.core.distance import DistancePrefetcher
from repro.core.distance_pair import DistancePairPrefetcher, pack_distance_pair
from repro.core.pc_distance import PCDistancePrefetcher, pack_pc_distance
from repro.errors import ConfigurationError
from repro.mem.trace import MissTrace
from repro.prefetch.adaptive_sequential import AdaptiveSequentialPrefetcher
from repro.prefetch.base import Prefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.null import NullPrefetcher
from repro.prefetch.recency import RecencyPrefetcher
from repro.prefetch.sequential import SequentialPrefetcher
from repro.prefetch.stride import ArbitraryStridePrefetcher


def compile_stream(miss_trace: MissTrace) -> tuple[list[int], list[int], list[int], int]:
    """Precompile a miss stream into flat lists for the replay loops.

    Returns ``(pcs, pages, evicted, warmup_misses)`` as plain Python
    int lists (memoized on the trace), which index faster in the hot
    loops than numpy scalars.
    """
    pcs, pages, evicted, _ = miss_trace.as_lists()
    return pcs, pages, evicted, miss_trace.warmup_misses


class _Counters:
    """Per-run statistics accumulated by every fast replay loop."""

    __slots__ = ("pb_hits", "issued", "inserted", "refreshed", "evicted_unused", "overhead")

    def __init__(self) -> None:
        self.pb_hits = 0
        self.issued = 0
        self.inserted = 0
        self.refreshed = 0
        self.evicted_unused = 0
        self.overhead = 0

    def fill(
        self,
        pb_hits: int,
        issued: int,
        inserted: int,
        refreshed: int,
        evicted_unused: int,
        overhead: int = 0,
    ) -> None:
        self.pb_hits = pb_hits
        self.issued = issued
        self.inserted = inserted
        self.refreshed = refreshed
        self.evicted_unused = evicted_unused
        self.overhead = overhead


def _replay_null(pages: list, warmup: int, counters: _Counters) -> None:
    """No prefetching: nothing is ever buffered, so nothing can hit."""


def _replay_sequential(
    pages: list,
    warmup: int,
    cap: int,
    clamp: int,
    counters: _Counters,
    degree: int,
) -> None:
    buf: dict[int, None] = {}
    buffered = pb_hits = issued = inserted = refreshed = evicted_unused = 0
    effective = degree if not clamp else min(degree, clamp)
    offsets = range(1, effective + 1)
    for index, page in enumerate(pages):
        if page in buf:
            del buf[page]
            buffered -= 1
            if index >= warmup:
                pb_hits += 1
        issued += degree
        for offset in offsets:
            target = page + offset
            if target in buf:
                del buf[target]
                buf[target] = None
                refreshed += 1
            else:
                if buffered >= cap:
                    del buf[next(iter(buf))]
                    evicted_unused += 1
                else:
                    buffered += 1
                buf[target] = None
                inserted += 1
    counters.fill(pb_hits, issued, inserted, refreshed, evicted_unused)


def _replay_adaptive_sequential(
    pages: list,
    warmup: int,
    cap: int,
    clamp: int,
    counters: _Counters,
    max_degree: int,
    window: int,
    raise_above: float,
    lower_below: float,
) -> None:
    buf: dict[int, None] = {}
    buffered = pb_hits = issued = inserted = refreshed = evicted_unused = 0
    degree = 1
    window_misses = window_hits = 0
    for index, page in enumerate(pages):
        pb_hit = page in buf
        if pb_hit:
            del buf[page]
            buffered -= 1
            if index >= warmup:
                pb_hits += 1
        window_misses += 1
        window_hits += pb_hit
        if window_misses >= window:
            hit_rate = window_hits / window_misses
            if hit_rate > raise_above:
                degree = min(degree * 2, max_degree)
            elif hit_rate < lower_below:
                degree = max(degree // 2, 1)
            window_misses = window_hits = 0
        issued += degree
        effective = degree if not clamp else min(degree, clamp)
        for offset in range(1, effective + 1):
            target = page + offset
            if target in buf:
                del buf[target]
                buf[target] = None
                refreshed += 1
            else:
                if buffered >= cap:
                    del buf[next(iter(buf))]
                    evicted_unused += 1
                else:
                    buffered += 1
                buf[target] = None
                inserted += 1
    counters.fill(pb_hits, issued, inserted, refreshed, evicted_unused)


def _replay_stride(
    pcs: list,
    pages: list,
    warmup: int,
    cap: int,
    clamp: int,
    counters: _Counters,
    rows: int,
    ways: int,
) -> None:
    buf: dict[int, None] = {}
    buffered = pb_hits = issued = inserted = refreshed = evicted_unused = 0
    # Chen & Baer states: 0=initial 1=transient 2=steady 3=no-prediction.
    if ways == 1:
        # Direct-mapped: flat parallel arrays, dict-free integer indexing.
        occupied = bytearray(rows)
        tags = [0] * rows
        prev_pages = [0] * rows
        strides = [0] * rows
        states = bytearray(rows)
        for index, page in enumerate(pages):
            if page in buf:
                del buf[page]
                buffered -= 1
                if index >= warmup:
                    pb_hits += 1
            pc = pcs[index]
            row = pc % rows
            if not occupied[row] or tags[row] != pc:
                occupied[row] = 1
                tags[row] = pc
                prev_pages[row] = page
                strides[row] = 0
                states[row] = 0
                continue
            new_stride = page - prev_pages[row]
            unchanged = new_stride == strides[row]
            state = states[row]
            if state == 0:
                if unchanged:
                    states[row] = 2
                else:
                    states[row] = 1
                    strides[row] = new_stride
            elif state == 1:
                if unchanged:
                    states[row] = 2
                else:
                    states[row] = 3
                    strides[row] = new_stride
            elif state == 2:
                if not unchanged:
                    states[row] = 0
            else:
                if unchanged:
                    states[row] = 1
                else:
                    strides[row] = new_stride
            prev_pages[row] = page
            if states[row] == 2:
                stride = strides[row]
                if stride:
                    target = page + stride
                    if target >= 0:
                        issued += 1
                        if target in buf:
                            del buf[target]
                            buf[target] = None
                            refreshed += 1
                        else:
                            if buffered >= cap:
                                del buf[next(iter(buf))]
                                evicted_unused += 1
                            else:
                                buffered += 1
                            buf[target] = None
                            inserted += 1
    else:
        # Set-associative: per-set insertion-ordered dicts (first = LRU);
        # each payload is a mutable [prev_page, stride, state] triple.
        num_sets = rows // ways
        sets: list[dict[int, list[int]]] = [{} for _ in range(num_sets)]
        for index, page in enumerate(pages):
            if page in buf:
                del buf[page]
                buffered -= 1
                if index >= warmup:
                    pb_hits += 1
            pc = pcs[index]
            table_set = sets[pc % num_sets]
            entry = table_set.get(pc)
            if entry is None:
                if len(table_set) >= ways:
                    del table_set[next(iter(table_set))]
                table_set[pc] = [page, 0, 0]
                continue
            del table_set[pc]  # promote to MRU
            table_set[pc] = entry
            new_stride = page - entry[0]
            unchanged = new_stride == entry[1]
            state = entry[2]
            if state == 0:
                if unchanged:
                    entry[2] = 2
                else:
                    entry[2] = 1
                    entry[1] = new_stride
            elif state == 1:
                if unchanged:
                    entry[2] = 2
                else:
                    entry[2] = 3
                    entry[1] = new_stride
            elif state == 2:
                if not unchanged:
                    entry[2] = 0
            else:
                if unchanged:
                    entry[2] = 1
                else:
                    entry[1] = new_stride
            entry[0] = page
            if entry[2] == 2:
                stride = entry[1]
                if stride:
                    target = page + stride
                    if target >= 0:
                        issued += 1
                        if target in buf:
                            del buf[target]
                            buf[target] = None
                            refreshed += 1
                        else:
                            if buffered >= cap:
                                del buf[next(iter(buf))]
                                evicted_unused += 1
                            else:
                                buffered += 1
                            buf[target] = None
                            inserted += 1
    counters.fill(pb_hits, issued, inserted, refreshed, evicted_unused)


def _replay_markov(
    pages: list,
    warmup: int,
    cap: int,
    clamp: int,
    counters: _Counters,
    rows: int,
    ways: int,
    slots: int,
) -> None:
    buf: dict[int, None] = {}
    buffered = pb_hits = issued = inserted = refreshed = evicted_unused = 0
    prev_page: int | None = None
    if ways == 1:
        occupied = bytearray(rows)
        tags = [0] * rows
        slot_rows: list[list[int]] = [[] for _ in range(rows)]
        for index, page in enumerate(pages):
            if page in buf:
                del buf[page]
                buffered -= 1
                if index >= warmup:
                    pb_hits += 1
            row = page % rows
            if occupied[row] and tags[row] == page:
                # Aliasing the live slot list is safe: the prev-page
                # update below can never mutate *this* row in place
                # (its tag is `page`, the update's key is `prev_page`,
                # and the two differ on every path that updates).
                prefetches = slot_rows[row]
                issued += len(prefetches)
            else:
                occupied[row] = 1
                tags[row] = page
                slot_rows[row] = []
                prefetches = ()
            if prev_page is not None and prev_page != page:
                prev_row = prev_page % rows
                if occupied[prev_row] and tags[prev_row] == prev_page:
                    successors = slot_rows[prev_row]
                else:
                    occupied[prev_row] = 1
                    tags[prev_row] = prev_page
                    successors = []
                    slot_rows[prev_row] = successors
                # Skip the no-op reorder when page is already MRU
                # (remove + insert-at-0 would rebuild the same list).
                if not successors or successors[0] != page:
                    if page in successors:
                        successors.remove(page)
                    successors.insert(0, page)
                    if len(successors) > slots:
                        successors.pop()
            prev_page = page
            if prefetches:
                if clamp and len(prefetches) > clamp:
                    prefetches = prefetches[:clamp]
                for target in prefetches:
                    if target in buf:
                        del buf[target]
                        buf[target] = None
                        refreshed += 1
                    else:
                        if buffered >= cap:
                            del buf[next(iter(buf))]
                            evicted_unused += 1
                        else:
                            buffered += 1
                        buf[target] = None
                        inserted += 1
    else:
        num_sets = rows // ways
        sets: list[dict[int, list[int]]] = [{} for _ in range(num_sets)]
        for index, page in enumerate(pages):
            if page in buf:
                del buf[page]
                buffered -= 1
                if index >= warmup:
                    pb_hits += 1
            table_set = sets[page % num_sets]
            row = table_set.get(page)
            if row is not None:
                del table_set[page]
                table_set[page] = row
                prefetches = row
                issued += len(prefetches)
            else:
                if len(table_set) >= ways:
                    del table_set[next(iter(table_set))]
                table_set[page] = []
                prefetches = ()
            if prev_page is not None and prev_page != page:
                prev_set = sets[prev_page % num_sets]
                successors = prev_set.get(prev_page)
                if successors is not None:
                    del prev_set[prev_page]
                    prev_set[prev_page] = successors
                else:
                    if len(prev_set) >= ways:
                        del prev_set[next(iter(prev_set))]
                    successors = []
                    prev_set[prev_page] = successors
                # Skip the no-op reorder when page is already MRU
                # (remove + insert-at-0 would rebuild the same list).
                if not successors or successors[0] != page:
                    if page in successors:
                        successors.remove(page)
                    successors.insert(0, page)
                    if len(successors) > slots:
                        successors.pop()
            prev_page = page
            if prefetches:
                if clamp and len(prefetches) > clamp:
                    prefetches = prefetches[:clamp]
                for target in prefetches:
                    if target in buf:
                        del buf[target]
                        buf[target] = None
                        refreshed += 1
                    else:
                        if buffered >= cap:
                            del buf[next(iter(buf))]
                            evicted_unused += 1
                        else:
                            buffered += 1
                        buf[target] = None
                        inserted += 1
    counters.fill(pb_hits, issued, inserted, refreshed, evicted_unused)


def _replay_distance(
    pages: list,
    warmup: int,
    cap: int,
    clamp: int,
    counters: _Counters,
    rows: int,
    ways: int,
    slots: int,
) -> None:
    buf: dict[int, None] = {}
    buffered = pb_hits = issued = inserted = refreshed = evicted_unused = 0
    prev_page: int | None = None
    prev_distance: int | None = None
    if ways == 1:
        occupied = bytearray(rows)
        tags = [0] * rows
        slot_rows: list[list[int]] = [[] for _ in range(rows)]
        for index, page in enumerate(pages):
            if page in buf:
                del buf[page]
                buffered -= 1
                if index >= warmup:
                    pb_hits += 1
            last_page = prev_page
            prev_page = page
            if last_page is None:
                continue
            distance = page - last_page
            row = distance % rows
            if occupied[row] and tags[row] == distance:
                # Targets are materialized *before* the prev-distance
                # update: when prev_distance == distance, that update
                # mutates this very slot list (mirroring the reference
                # engine, which snapshots entry.values() first).
                prefetches = []
                for predicted in slot_rows[row]:
                    target = page + predicted
                    if target >= 0:
                        prefetches.append(target)
                        issued += 1
            else:
                occupied[row] = 1
                tags[row] = distance
                slot_rows[row] = []
                prefetches = ()
            if prev_distance is not None:
                prev_row = prev_distance % rows
                if occupied[prev_row] and tags[prev_row] == prev_distance:
                    successors = slot_rows[prev_row]
                else:
                    occupied[prev_row] = 1
                    tags[prev_row] = prev_distance
                    successors = []
                    slot_rows[prev_row] = successors
                # Skip the no-op reorder when distance is already MRU
                # (remove + insert-at-0 would rebuild the same list).
                if not successors or successors[0] != distance:
                    if distance in successors:
                        successors.remove(distance)
                    successors.insert(0, distance)
                    if len(successors) > slots:
                        successors.pop()
            prev_distance = distance
            if prefetches:
                if clamp and len(prefetches) > clamp:
                    prefetches = prefetches[:clamp]
                for target in prefetches:
                    if target in buf:
                        del buf[target]
                        buf[target] = None
                        refreshed += 1
                    else:
                        if buffered >= cap:
                            del buf[next(iter(buf))]
                            evicted_unused += 1
                        else:
                            buffered += 1
                        buf[target] = None
                        inserted += 1
    else:
        num_sets = rows // ways
        sets: list[dict[int, list[int]]] = [{} for _ in range(num_sets)]
        for index, page in enumerate(pages):
            if page in buf:
                del buf[page]
                buffered -= 1
                if index >= warmup:
                    pb_hits += 1
            last_page = prev_page
            prev_page = page
            if last_page is None:
                continue
            distance = page - last_page
            table_set = sets[distance % num_sets]
            row = table_set.get(distance)
            if row is not None:
                del table_set[distance]
                table_set[distance] = row
                prefetches = []
                for predicted in row:
                    target = page + predicted
                    if target >= 0:
                        prefetches.append(target)
                        issued += 1
            else:
                if len(table_set) >= ways:
                    del table_set[next(iter(table_set))]
                table_set[distance] = []
                prefetches = ()
            if prev_distance is not None:
                prev_set = sets[prev_distance % num_sets]
                successors = prev_set.get(prev_distance)
                if successors is not None:
                    del prev_set[prev_distance]
                    prev_set[prev_distance] = successors
                else:
                    if len(prev_set) >= ways:
                        del prev_set[next(iter(prev_set))]
                    successors = []
                    prev_set[prev_distance] = successors
                # Skip the no-op reorder when distance is already MRU
                # (remove + insert-at-0 would rebuild the same list).
                if not successors or successors[0] != distance:
                    if distance in successors:
                        successors.remove(distance)
                    successors.insert(0, distance)
                    if len(successors) > slots:
                        successors.pop()
            prev_distance = distance
            if prefetches:
                if clamp and len(prefetches) > clamp:
                    prefetches = prefetches[:clamp]
                for target in prefetches:
                    if target in buf:
                        del buf[target]
                        buf[target] = None
                        refreshed += 1
                    else:
                        if buffered >= cap:
                            del buf[next(iter(buf))]
                            evicted_unused += 1
                        else:
                            buffered += 1
                        buf[target] = None
                        inserted += 1
    counters.fill(pb_hits, issued, inserted, refreshed, evicted_unused)


def _replay_keyed_distance(
    pcs: list,
    pages: list,
    warmup: int,
    cap: int,
    clamp: int,
    counters: _Counters,
    rows: int,
    ways: int,
    slots: int,
    pc_keyed: bool,
) -> None:
    """Shared loop for the DP-PC and DP-2 extensions.

    Both differ from DP only in the table key: ``pack_pc_distance(pc,
    distance)`` for DP-PC, ``pack_distance_pair(prev, current)`` for
    DP-2 (which also needs one extra warm-up miss before its first
    key exists). A per-set dict table covers every associativity.
    """
    buf: dict[int, None] = {}
    buffered = pb_hits = issued = inserted = refreshed = evicted_unused = 0
    prev_page: int | None = None
    prev_distance: int | None = None
    prev_key: int | None = None
    num_sets = rows // ways
    sets: list[dict[int, list[int]]] = [{} for _ in range(num_sets)]
    for index, page in enumerate(pages):
        if page in buf:
            del buf[page]
            buffered -= 1
            if index >= warmup:
                pb_hits += 1
        last_page = prev_page
        prev_page = page
        if last_page is None:
            continue
        distance = page - last_page
        if pc_keyed:
            key = pack_pc_distance(pcs[index], distance)
        else:
            last_distance = prev_distance
            prev_distance = distance
            if last_distance is None:
                continue
            key = pack_distance_pair(last_distance, distance)
        table_set = sets[key % num_sets]
        row = table_set.get(key)
        if row is not None:
            del table_set[key]
            table_set[key] = row
            prefetches = []
            for predicted in row:
                target = page + predicted
                if target >= 0:
                    prefetches.append(target)
                    issued += 1
        else:
            if len(table_set) >= ways:
                del table_set[next(iter(table_set))]
            table_set[key] = []
            prefetches = ()
        if prev_key is not None:
            prev_set = sets[prev_key % num_sets]
            successors = prev_set.get(prev_key)
            if successors is not None:
                del prev_set[prev_key]
                prev_set[prev_key] = successors
            else:
                if len(prev_set) >= ways:
                    del prev_set[next(iter(prev_set))]
                successors = []
                prev_set[prev_key] = successors
            if not successors or successors[0] != distance:
                if distance in successors:
                    successors.remove(distance)
                successors.insert(0, distance)
                if len(successors) > slots:
                    successors.pop()
        prev_key = key
        if prefetches:
            if clamp and len(prefetches) > clamp:
                prefetches = prefetches[:clamp]
            for target in prefetches:
                if target in buf:
                    del buf[target]
                    buf[target] = None
                    refreshed += 1
                else:
                    if buffered >= cap:
                        del buf[next(iter(buf))]
                        evicted_unused += 1
                    else:
                        buffered += 1
                    buf[target] = None
                    inserted += 1
    counters.fill(pb_hits, issued, inserted, refreshed, evicted_unused)


def _replay_recency(
    miss_trace: MissTrace,
    warmup: int,
    cap: int,
    clamp: int,
    counters: _Counters,
    variant_three: bool,
) -> None:
    """RP over dense page ids: the stack's next/prev pointers become
    flat integer arrays instead of dict-backed page-table entries.

    The page↔id mapping is a bijection over every page the stream can
    mention, so buffer membership, stack linkage and hit accounting are
    isomorphic to the reference engine's page-number arithmetic.
    """
    pages_array = miss_trace.pages
    evicted_array = miss_trace.evicted
    unique = np.unique(np.concatenate([pages_array, evicted_array[evicted_array >= 0]]))
    page_ids = np.searchsorted(unique, pages_array).tolist()
    evicted_ids = np.where(
        evicted_array >= 0, np.searchsorted(unique, evicted_array), -1
    ).tolist()

    footprint = len(unique)
    next_link = [-1] * footprint
    prev_link = [-1] * footprint
    on_stack = bytearray(footprint)
    top = -1

    buf: dict[int, None] = {}
    buffered = pb_hits = issued = inserted = refreshed = evicted_unused = overhead = 0
    for index, page in enumerate(page_ids):
        if page in buf:
            del buf[page]
            buffered -= 1
            if index >= warmup:
                pb_hits += 1
        if on_stack[page]:
            below = next_link[page]
            above = prev_link[page]
            # Unlink from the stack (2 pointer writes of overhead).
            if above != -1:
                next_link[above] = below
            else:
                top = below
            if below != -1:
                prev_link[below] = above
            prev_link[page] = -1
            next_link[page] = -1
            on_stack[page] = 0
            overhead += 2
        else:
            below = -1
            above = -1
        evicted = evicted_ids[index]
        if evicted != -1:
            if on_stack[evicted]:
                # Re-push of a threaded page: silently unlink first
                # (the reference stack does this inside push_top
                # without charging extra overhead).
                e_above = prev_link[evicted]
                e_below = next_link[evicted]
                if e_above != -1:
                    next_link[e_above] = e_below
                else:
                    top = e_below
                if e_below != -1:
                    prev_link[e_below] = e_above
            next_link[evicted] = top
            prev_link[evicted] = -1
            on_stack[evicted] = 1
            if top != -1:
                prev_link[top] = evicted
            top = evicted
            overhead += 2
        prefetches = []
        if above != -1:
            prefetches.append(above)
        if below != -1:
            prefetches.append(below)
        if variant_three and below != -1:
            third = next_link[below] if on_stack[below] else -1
            if third != -1 and third != page:
                prefetches.append(third)
        if prefetches:
            issued += len(prefetches)
            if clamp and len(prefetches) > clamp:
                prefetches = prefetches[:clamp]
            for target in prefetches:
                if target in buf:
                    del buf[target]
                    buf[target] = None
                    refreshed += 1
                else:
                    if buffered >= cap:
                        del buf[next(iter(buf))]
                        evicted_unused += 1
                    else:
                        buffered += 1
                    buf[target] = None
                    inserted += 1
    counters.fill(pb_hits, issued, inserted, refreshed, evicted_unused, overhead)


# ---------------------------------------------------------------------------
# Dispatch: which mechanisms the fast engine can replay, whether an
# instance is pristine enough to serve as a configuration template,
# and the public replay entry point.
# ---------------------------------------------------------------------------

#: Mechanism classes the fast engine has a specialized loop for.
#: Dispatch is on *exact* type: user subclasses may override behavior
#: the loops do not model, so they always take the reference engine.
_FAST_TYPES = (
    NullPrefetcher,
    SequentialPrefetcher,
    AdaptiveSequentialPrefetcher,
    ArbitraryStridePrefetcher,
    MarkovPrefetcher,
    DistancePrefetcher,
    PCDistancePrefetcher,
    DistancePairPrefetcher,
    RecencyPrefetcher,
)


def supports(prefetcher: Prefetcher) -> bool:
    """True when :func:`replay_fast` has a loop for this mechanism."""
    return type(prefetcher) in _FAST_TYPES


def is_fresh(prefetcher: Prefetcher) -> bool:
    """True when the instance carries no trained state or statistics.

    The fast engine rebuilds mechanism state from scratch, so its
    output matches the reference engine only for untrained instances;
    :mod:`repro.sim.engine` uses this to fall back under ``auto``.
    Each mechanism reports its own trained state through
    :meth:`~repro.prefetch.base.Prefetcher.has_prediction_state`.
    """
    return (
        not prefetcher.prefetches_issued
        and not prefetcher.overhead_ops_total
        and not prefetcher.has_prediction_state()
    )


def replay_fast(
    miss_trace: MissTrace,
    prefetcher: Prefetcher,
    buffer_entries: int = 16,
    max_prefetches_per_miss: int = 0,
) -> "PrefetchRunStats":
    """Fast-path equivalent of :func:`~repro.sim.two_phase.replay_prefetcher`.

    ``prefetcher`` is read for configuration (and its label) but never
    mutated. Raises :class:`~repro.errors.ConfigurationError` when the
    mechanism has no fast loop or carries trained state.
    """
    if not supports(prefetcher):
        raise ConfigurationError(
            f"fast engine has no replay loop for {type(prefetcher).__name__}; "
            "use engine='reference'"
        )
    if not is_fresh(prefetcher):
        raise ConfigurationError(
            "fast engine replays from a fresh state; this "
            f"{type(prefetcher).__name__} instance has prior training or "
            "statistics — use engine='reference' to continue training it"
        )

    cap = buffer_entries
    clamp = max_prefetches_per_miss
    warmup = miss_trace.warmup_misses
    counters = _Counters()

    kind = type(prefetcher)
    if kind is RecencyPrefetcher:
        # RP builds its own dense numpy id arrays; skip the flat-list
        # precompilation the other loops iterate over.
        _replay_recency(
            miss_trace, warmup, cap, clamp, counters, prefetcher.variant_three
        )
        return _stats_from(miss_trace, prefetcher, counters)

    pcs, pages, _evicted, warmup = compile_stream(miss_trace)
    if kind is NullPrefetcher:
        _replay_null(pages, warmup, counters)
    elif kind is SequentialPrefetcher:
        _replay_sequential(pages, warmup, cap, clamp, counters, prefetcher.degree)
    elif kind is AdaptiveSequentialPrefetcher:
        _replay_adaptive_sequential(
            pages, warmup, cap, clamp, counters,
            prefetcher.max_degree, prefetcher.window,
            prefetcher.raise_above, prefetcher.lower_below,
        )
    elif kind is ArbitraryStridePrefetcher:
        _replay_stride(
            pcs, pages, warmup, cap, clamp, counters,
            prefetcher.table.rows, prefetcher.table.ways,
        )
    elif kind is MarkovPrefetcher:
        _replay_markov(
            pages, warmup, cap, clamp, counters,
            prefetcher.table.rows, prefetcher.table.ways, prefetcher.slots,
        )
    elif kind is DistancePrefetcher:
        _replay_distance(
            pages, warmup, cap, clamp, counters,
            prefetcher.table.rows, prefetcher.table.ways, prefetcher.slots,
        )
    elif kind is PCDistancePrefetcher:
        _replay_keyed_distance(
            pcs, pages, warmup, cap, clamp, counters,
            prefetcher.table.rows, prefetcher.table.ways, prefetcher.slots,
            pc_keyed=True,
        )
    else:  # DistancePairPrefetcher (supports() already vetted the type)
        _replay_keyed_distance(
            pcs, pages, warmup, cap, clamp, counters,
            prefetcher.table.rows, prefetcher.table.ways, prefetcher.slots,
            pc_keyed=False,
        )

    return _stats_from(miss_trace, prefetcher, counters)


def _stats_from(
    miss_trace: MissTrace, prefetcher: Prefetcher, counters: _Counters
) -> "PrefetchRunStats":
    from repro.sim.stats import PrefetchRunStats

    return PrefetchRunStats(
        workload=miss_trace.name,
        mechanism=prefetcher.label,
        tlb_label=miss_trace.tlb_label,
        total_references=miss_trace.total_references,
        tlb_misses=miss_trace.num_misses,
        measured_misses=miss_trace.measured_misses,
        pb_hits=counters.pb_hits,
        prefetches_issued=counters.issued,
        buffer_inserted=counters.inserted,
        buffer_refreshed=counters.refreshed,
        buffer_evicted_unused=counters.evicted_unused,
        overhead_memory_ops=counters.overhead,
        # A prefetch already buffered is coalesced, costing no new fetch.
        prefetch_fetch_ops=counters.inserted,
    )
