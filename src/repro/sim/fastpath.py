"""Vectorized fast-path replay engine: flat-array state, no dispatch.

:func:`repro.sim.two_phase.replay_prefetcher` is the *reference*
replay: it drives a live :class:`~repro.prefetch.base.Prefetcher`
object and the real :class:`~repro.tlb.prefetch_buffer.PrefetchBuffer`
miss by miss, paying a stack of method calls, ``OrderedDict``
operations and per-entry objects for every one of the millions of
misses a sweep replays. This module is the *fast* replay: each
mechanism's whole decision procedure is compiled into one specialized
Python loop whose state lives in flat parallel lists indexed by
integers (plus plain dicts for the prefetch buffer and for
set-associative tables), with statistics accumulated in local counters
rather than per-reference objects. The miss stream itself is
precompiled once into flat lists (and, for recency prefetching, a
dense ``numpy`` page-id mapping) before the loop starts.

The contract is **bit-identical statistics**: :func:`replay_fast`
returns exactly the
:class:`~repro.sim.stats.PrefetchRunStats` the reference engine
returns, field for field. That contract is enforced by
``tests/differential/`` — a curated grid over every mechanism family,
workload family and page size, plus seeded randomized traces/specs —
and any change here must keep that suite green.

The engines are also *observationally identical in side effects*:
like the reference engine, :func:`replay_fast` trains the instance it
is given. It captures a canonical :mod:`repro.ckpt.snapshots` snapshot
of the instance (cheap when fresh), seeds the flat loop structures
from it, runs the loop, and restores the final snapshot back into the
instance — so warm-started instances replay on the fast path too, and
the ``engine="auto"`` dispatch in :mod:`repro.sim.engine` falls back
to the reference engine only for mechanisms without a fast loop (e.g.
user-defined subclasses). The one permitted divergence is the
diagnostic counters excluded from snapshots (table lookup/tag-hit/
eviction tallies, recency-stack pointer writes): the fast engine
leaves them zeroed where the reference engine increments them.

Implementation notes shared by every loop below:

- The prefetch buffer is a plain insertion-ordered dict whose first
  key is the LRU entry; its population is tracked in a local integer
  (``buffered``) so the hot path never calls ``len``.
- Each loop replicates, operation for operation, what
  ``replay_prefetcher`` does with the corresponding mechanism class:
  (1) probe the buffer, removing on hit (hits count after warm-up);
  (2) run the decision procedure, counting every page the mechanism
  *asks* to prefetch (pre-clamp, as ``Prefetcher.account`` does);
  (3) clamp to ``max_prefetches_per_miss`` and insert into the buffer
  with refresh-on-duplicate and evicted-unused accounting.
- Prediction tables are flat parallel arrays for the direct-mapped
  case (dict-free integer indexing) and per-set plain dicts — first
  key = LRU, delete/reinsert = promote — for other associativities.
"""

from __future__ import annotations

import numpy as np

from repro.ckpt.snapshots import (
    AdaptiveSequentialSnapshot,
    DistancePairSnapshot,
    DistanceSnapshot,
    MarkovSnapshot,
    MechanismSnapshot,
    PCDistanceSnapshot,
    RecencySnapshot,
    SequentialSnapshot,
    StrideSnapshot,
    TableSnapshot,
    restore_prefetcher,
    snapshot_prefetcher,
)
from repro.core.distance import DistancePrefetcher
from repro.core.distance_pair import DistancePairPrefetcher, pack_distance_pair
from repro.core.pc_distance import PCDistancePrefetcher, pack_pc_distance
from repro.errors import ConfigurationError
from repro.mem.trace import MissTrace
from repro.prefetch.adaptive_sequential import AdaptiveSequentialPrefetcher
from repro.prefetch.base import Prefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.null import NullPrefetcher
from repro.prefetch.recency import RecencyPrefetcher
from repro.prefetch.sequential import SequentialPrefetcher
from repro.prefetch.stride import ArbitraryStridePrefetcher


def compile_stream(miss_trace: MissTrace) -> tuple[list[int], list[int], list[int], int]:
    """Precompile a miss stream into flat lists for the replay loops.

    Returns ``(pcs, pages, evicted, warmup_misses)`` as plain Python
    int lists (memoized on the trace), which index faster in the hot
    loops than numpy scalars.
    """
    pcs, pages, evicted, _ = miss_trace.as_lists()
    return pcs, pages, evicted, miss_trace.warmup_misses


class _Counters:
    """Per-run statistics accumulated by every fast replay loop."""

    __slots__ = ("pb_hits", "issued", "inserted", "refreshed", "evicted_unused", "overhead")

    def __init__(self) -> None:
        self.pb_hits = 0
        self.issued = 0
        self.inserted = 0
        self.refreshed = 0
        self.evicted_unused = 0
        self.overhead = 0

    def fill(
        self,
        pb_hits: int,
        issued: int,
        inserted: int,
        refreshed: int,
        evicted_unused: int,
        overhead: int = 0,
    ) -> None:
        self.pb_hits = pb_hits
        self.issued = issued
        self.inserted = inserted
        self.refreshed = refreshed
        self.evicted_unused = evicted_unused
        self.overhead = overhead


def _replay_null(pages: list, warmup: int, counters: _Counters) -> None:
    """No prefetching: nothing is ever buffered, so nothing can hit."""


def _replay_sequential(
    pages: list,
    warmup: int,
    cap: int,
    clamp: int,
    counters: _Counters,
    degree: int,
) -> None:
    buf: dict[int, None] = {}
    buffered = pb_hits = issued = inserted = refreshed = evicted_unused = 0
    effective = degree if not clamp else min(degree, clamp)
    offsets = range(1, effective + 1)
    for index, page in enumerate(pages):
        if page in buf:
            del buf[page]
            buffered -= 1
            if index >= warmup:
                pb_hits += 1
        issued += degree
        for offset in offsets:
            target = page + offset
            if target in buf:
                del buf[target]
                buf[target] = None
                refreshed += 1
            else:
                if buffered >= cap:
                    del buf[next(iter(buf))]
                    evicted_unused += 1
                else:
                    buffered += 1
                buf[target] = None
                inserted += 1
    counters.fill(pb_hits, issued, inserted, refreshed, evicted_unused)


def _replay_adaptive_sequential(
    pages: list,
    warmup: int,
    cap: int,
    clamp: int,
    counters: _Counters,
    max_degree: int,
    window: int,
    raise_above: float,
    lower_below: float,
    degree: int = 1,
    window_misses: int = 0,
    window_hits: int = 0,
) -> tuple[int, int, int]:
    buf: dict[int, None] = {}
    buffered = pb_hits = issued = inserted = refreshed = evicted_unused = 0
    for index, page in enumerate(pages):
        pb_hit = page in buf
        if pb_hit:
            del buf[page]
            buffered -= 1
            if index >= warmup:
                pb_hits += 1
        window_misses += 1
        window_hits += pb_hit
        if window_misses >= window:
            hit_rate = window_hits / window_misses
            if hit_rate > raise_above:
                degree = min(degree * 2, max_degree)
            elif hit_rate < lower_below:
                degree = max(degree // 2, 1)
            window_misses = window_hits = 0
        issued += degree
        effective = degree if not clamp else min(degree, clamp)
        for offset in range(1, effective + 1):
            target = page + offset
            if target in buf:
                del buf[target]
                buf[target] = None
                refreshed += 1
            else:
                if buffered >= cap:
                    del buf[next(iter(buf))]
                    evicted_unused += 1
                else:
                    buffered += 1
                buf[target] = None
                inserted += 1
    counters.fill(pb_hits, issued, inserted, refreshed, evicted_unused)
    return degree, window_misses, window_hits


def _replay_stride(
    pcs: list,
    pages: list,
    warmup: int,
    cap: int,
    clamp: int,
    counters: _Counters,
    rows: int,
    ways: int,
    seed: TableSnapshot | None = None,
) -> TableSnapshot:
    buf: dict[int, None] = {}
    buffered = pb_hits = issued = inserted = refreshed = evicted_unused = 0
    # Chen & Baer states: 0=initial 1=transient 2=steady 3=no-prediction.
    if ways == 1:
        # Direct-mapped: flat parallel arrays, dict-free integer indexing.
        occupied = bytearray(rows)
        tags = [0] * rows
        prev_pages = [0] * rows
        strides = [0] * rows
        states = bytearray(rows)
        if seed is not None:
            for row, pairs in enumerate(seed.sets):
                if pairs:
                    key, payload = pairs[-1]
                    occupied[row] = 1
                    tags[row] = key
                    prev_pages[row] = payload[0]
                    strides[row] = payload[1]
                    states[row] = payload[2]
        for index, page in enumerate(pages):
            if page in buf:
                del buf[page]
                buffered -= 1
                if index >= warmup:
                    pb_hits += 1
            pc = pcs[index]
            row = pc % rows
            if not occupied[row] or tags[row] != pc:
                occupied[row] = 1
                tags[row] = pc
                prev_pages[row] = page
                strides[row] = 0
                states[row] = 0
                continue
            new_stride = page - prev_pages[row]
            unchanged = new_stride == strides[row]
            state = states[row]
            if state == 0:
                if unchanged:
                    states[row] = 2
                else:
                    states[row] = 1
                    strides[row] = new_stride
            elif state == 1:
                if unchanged:
                    states[row] = 2
                else:
                    states[row] = 3
                    strides[row] = new_stride
            elif state == 2:
                if not unchanged:
                    states[row] = 0
            else:
                if unchanged:
                    states[row] = 1
                else:
                    strides[row] = new_stride
            prev_pages[row] = page
            if states[row] == 2:
                stride = strides[row]
                if stride:
                    target = page + stride
                    if target >= 0:
                        issued += 1
                        if target in buf:
                            del buf[target]
                            buf[target] = None
                            refreshed += 1
                        else:
                            if buffered >= cap:
                                del buf[next(iter(buf))]
                                evicted_unused += 1
                            else:
                                buffered += 1
                            buf[target] = None
                            inserted += 1
        final_sets = [
            [[tags[row], [prev_pages[row], strides[row], states[row]]]]
            if occupied[row]
            else []
            for row in range(rows)
        ]
    else:
        # Set-associative: per-set insertion-ordered dicts (first = LRU);
        # each payload is a mutable [prev_page, stride, state] triple.
        num_sets = rows // ways
        sets: list[dict[int, list[int]]] = [{} for _ in range(num_sets)]
        if seed is not None:
            for set_index, pairs in enumerate(seed.sets):
                table_set = sets[set_index]
                for key, payload in pairs:
                    table_set[key] = list(payload)
        for index, page in enumerate(pages):
            if page in buf:
                del buf[page]
                buffered -= 1
                if index >= warmup:
                    pb_hits += 1
            pc = pcs[index]
            table_set = sets[pc % num_sets]
            entry = table_set.get(pc)
            if entry is None:
                if len(table_set) >= ways:
                    del table_set[next(iter(table_set))]
                table_set[pc] = [page, 0, 0]
                continue
            del table_set[pc]  # promote to MRU
            table_set[pc] = entry
            new_stride = page - entry[0]
            unchanged = new_stride == entry[1]
            state = entry[2]
            if state == 0:
                if unchanged:
                    entry[2] = 2
                else:
                    entry[2] = 1
                    entry[1] = new_stride
            elif state == 1:
                if unchanged:
                    entry[2] = 2
                else:
                    entry[2] = 3
                    entry[1] = new_stride
            elif state == 2:
                if not unchanged:
                    entry[2] = 0
            else:
                if unchanged:
                    entry[2] = 1
                else:
                    entry[1] = new_stride
            entry[0] = page
            if entry[2] == 2:
                stride = entry[1]
                if stride:
                    target = page + stride
                    if target >= 0:
                        issued += 1
                        if target in buf:
                            del buf[target]
                            buf[target] = None
                            refreshed += 1
                        else:
                            if buffered >= cap:
                                del buf[next(iter(buf))]
                                evicted_unused += 1
                            else:
                                buffered += 1
                            buf[target] = None
                            inserted += 1
        final_sets = [
            [[key, entry] for key, entry in table_set.items()]
            for table_set in sets
        ]
    counters.fill(pb_hits, issued, inserted, refreshed, evicted_unused)
    return TableSnapshot(rows=rows, ways=ways, sets=final_sets)


def _replay_markov(
    pages: list,
    warmup: int,
    cap: int,
    clamp: int,
    counters: _Counters,
    rows: int,
    ways: int,
    slots: int,
    seed: TableSnapshot | None = None,
    prev_page: int | None = None,
) -> tuple[TableSnapshot, int | None]:
    buf: dict[int, None] = {}
    buffered = pb_hits = issued = inserted = refreshed = evicted_unused = 0
    if ways == 1:
        occupied = bytearray(rows)
        tags = [0] * rows
        slot_rows: list[list[int]] = [[] for _ in range(rows)]
        if seed is not None:
            for row, pairs in enumerate(seed.sets):
                if pairs:
                    key, payload = pairs[-1]
                    occupied[row] = 1
                    tags[row] = key
                    slot_rows[row] = list(payload)
        for index, page in enumerate(pages):
            if page in buf:
                del buf[page]
                buffered -= 1
                if index >= warmup:
                    pb_hits += 1
            row = page % rows
            if occupied[row] and tags[row] == page:
                # Aliasing the live slot list is safe: the prev-page
                # update below can never mutate *this* row in place
                # (its tag is `page`, the update's key is `prev_page`,
                # and the two differ on every path that updates).
                prefetches = slot_rows[row]
                issued += len(prefetches)
            else:
                occupied[row] = 1
                tags[row] = page
                slot_rows[row] = []
                prefetches = ()
            if prev_page is not None and prev_page != page:
                prev_row = prev_page % rows
                if occupied[prev_row] and tags[prev_row] == prev_page:
                    successors = slot_rows[prev_row]
                else:
                    occupied[prev_row] = 1
                    tags[prev_row] = prev_page
                    successors = []
                    slot_rows[prev_row] = successors
                # Skip the no-op reorder when page is already MRU
                # (remove + insert-at-0 would rebuild the same list).
                if not successors or successors[0] != page:
                    if page in successors:
                        successors.remove(page)
                    successors.insert(0, page)
                    if len(successors) > slots:
                        successors.pop()
            prev_page = page
            if prefetches:
                if clamp and len(prefetches) > clamp:
                    prefetches = prefetches[:clamp]
                for target in prefetches:
                    if target in buf:
                        del buf[target]
                        buf[target] = None
                        refreshed += 1
                    else:
                        if buffered >= cap:
                            del buf[next(iter(buf))]
                            evicted_unused += 1
                        else:
                            buffered += 1
                        buf[target] = None
                        inserted += 1
        final_sets = [
            [[tags[row], slot_rows[row]]] if occupied[row] else []
            for row in range(rows)
        ]
    else:
        num_sets = rows // ways
        sets: list[dict[int, list[int]]] = [{} for _ in range(num_sets)]
        if seed is not None:
            for set_index, pairs in enumerate(seed.sets):
                table_set = sets[set_index]
                for key, payload in pairs:
                    table_set[key] = list(payload)
        for index, page in enumerate(pages):
            if page in buf:
                del buf[page]
                buffered -= 1
                if index >= warmup:
                    pb_hits += 1
            table_set = sets[page % num_sets]
            row = table_set.get(page)
            if row is not None:
                del table_set[page]
                table_set[page] = row
                prefetches = row
                issued += len(prefetches)
            else:
                if len(table_set) >= ways:
                    del table_set[next(iter(table_set))]
                table_set[page] = []
                prefetches = ()
            if prev_page is not None and prev_page != page:
                prev_set = sets[prev_page % num_sets]
                successors = prev_set.get(prev_page)
                if successors is not None:
                    del prev_set[prev_page]
                    prev_set[prev_page] = successors
                else:
                    if len(prev_set) >= ways:
                        del prev_set[next(iter(prev_set))]
                    successors = []
                    prev_set[prev_page] = successors
                # Skip the no-op reorder when page is already MRU
                # (remove + insert-at-0 would rebuild the same list).
                if not successors or successors[0] != page:
                    if page in successors:
                        successors.remove(page)
                    successors.insert(0, page)
                    if len(successors) > slots:
                        successors.pop()
            prev_page = page
            if prefetches:
                if clamp and len(prefetches) > clamp:
                    prefetches = prefetches[:clamp]
                for target in prefetches:
                    if target in buf:
                        del buf[target]
                        buf[target] = None
                        refreshed += 1
                    else:
                        if buffered >= cap:
                            del buf[next(iter(buf))]
                            evicted_unused += 1
                        else:
                            buffered += 1
                        buf[target] = None
                        inserted += 1
        final_sets = [
            [[key, row] for key, row in table_set.items()]
            for table_set in sets
        ]
    counters.fill(pb_hits, issued, inserted, refreshed, evicted_unused)
    return TableSnapshot(rows=rows, ways=ways, sets=final_sets), prev_page


def _replay_distance(
    pages: list,
    warmup: int,
    cap: int,
    clamp: int,
    counters: _Counters,
    rows: int,
    ways: int,
    slots: int,
    seed: TableSnapshot | None = None,
    prev_page: int | None = None,
    prev_distance: int | None = None,
) -> tuple[TableSnapshot, int | None, int | None]:
    buf: dict[int, None] = {}
    buffered = pb_hits = issued = inserted = refreshed = evicted_unused = 0
    if ways == 1:
        occupied = bytearray(rows)
        tags = [0] * rows
        slot_rows: list[list[int]] = [[] for _ in range(rows)]
        if seed is not None:
            for row, pairs in enumerate(seed.sets):
                if pairs:
                    key, payload = pairs[-1]
                    occupied[row] = 1
                    tags[row] = key
                    slot_rows[row] = list(payload)
        for index, page in enumerate(pages):
            if page in buf:
                del buf[page]
                buffered -= 1
                if index >= warmup:
                    pb_hits += 1
            last_page = prev_page
            prev_page = page
            if last_page is None:
                continue
            distance = page - last_page
            row = distance % rows
            if occupied[row] and tags[row] == distance:
                # Targets are materialized *before* the prev-distance
                # update: when prev_distance == distance, that update
                # mutates this very slot list (mirroring the reference
                # engine, which snapshots entry.values() first).
                prefetches = []
                for predicted in slot_rows[row]:
                    target = page + predicted
                    if target >= 0:
                        prefetches.append(target)
                        issued += 1
            else:
                occupied[row] = 1
                tags[row] = distance
                slot_rows[row] = []
                prefetches = ()
            if prev_distance is not None:
                prev_row = prev_distance % rows
                if occupied[prev_row] and tags[prev_row] == prev_distance:
                    successors = slot_rows[prev_row]
                else:
                    occupied[prev_row] = 1
                    tags[prev_row] = prev_distance
                    successors = []
                    slot_rows[prev_row] = successors
                # Skip the no-op reorder when distance is already MRU
                # (remove + insert-at-0 would rebuild the same list).
                if not successors or successors[0] != distance:
                    if distance in successors:
                        successors.remove(distance)
                    successors.insert(0, distance)
                    if len(successors) > slots:
                        successors.pop()
            prev_distance = distance
            if prefetches:
                if clamp and len(prefetches) > clamp:
                    prefetches = prefetches[:clamp]
                for target in prefetches:
                    if target in buf:
                        del buf[target]
                        buf[target] = None
                        refreshed += 1
                    else:
                        if buffered >= cap:
                            del buf[next(iter(buf))]
                            evicted_unused += 1
                        else:
                            buffered += 1
                        buf[target] = None
                        inserted += 1
        final_sets = [
            [[tags[row], slot_rows[row]]] if occupied[row] else []
            for row in range(rows)
        ]
    else:
        num_sets = rows // ways
        sets: list[dict[int, list[int]]] = [{} for _ in range(num_sets)]
        if seed is not None:
            for set_index, pairs in enumerate(seed.sets):
                table_set = sets[set_index]
                for key, payload in pairs:
                    table_set[key] = list(payload)
        for index, page in enumerate(pages):
            if page in buf:
                del buf[page]
                buffered -= 1
                if index >= warmup:
                    pb_hits += 1
            last_page = prev_page
            prev_page = page
            if last_page is None:
                continue
            distance = page - last_page
            table_set = sets[distance % num_sets]
            row = table_set.get(distance)
            if row is not None:
                del table_set[distance]
                table_set[distance] = row
                prefetches = []
                for predicted in row:
                    target = page + predicted
                    if target >= 0:
                        prefetches.append(target)
                        issued += 1
            else:
                if len(table_set) >= ways:
                    del table_set[next(iter(table_set))]
                table_set[distance] = []
                prefetches = ()
            if prev_distance is not None:
                prev_set = sets[prev_distance % num_sets]
                successors = prev_set.get(prev_distance)
                if successors is not None:
                    del prev_set[prev_distance]
                    prev_set[prev_distance] = successors
                else:
                    if len(prev_set) >= ways:
                        del prev_set[next(iter(prev_set))]
                    successors = []
                    prev_set[prev_distance] = successors
                # Skip the no-op reorder when distance is already MRU
                # (remove + insert-at-0 would rebuild the same list).
                if not successors or successors[0] != distance:
                    if distance in successors:
                        successors.remove(distance)
                    successors.insert(0, distance)
                    if len(successors) > slots:
                        successors.pop()
            prev_distance = distance
            if prefetches:
                if clamp and len(prefetches) > clamp:
                    prefetches = prefetches[:clamp]
                for target in prefetches:
                    if target in buf:
                        del buf[target]
                        buf[target] = None
                        refreshed += 1
                    else:
                        if buffered >= cap:
                            del buf[next(iter(buf))]
                            evicted_unused += 1
                        else:
                            buffered += 1
                        buf[target] = None
                        inserted += 1
        final_sets = [
            [[key, row] for key, row in table_set.items()]
            for table_set in sets
        ]
    counters.fill(pb_hits, issued, inserted, refreshed, evicted_unused)
    return (
        TableSnapshot(rows=rows, ways=ways, sets=final_sets),
        prev_page,
        prev_distance,
    )


def _replay_keyed_distance(
    pcs: list,
    pages: list,
    warmup: int,
    cap: int,
    clamp: int,
    counters: _Counters,
    rows: int,
    ways: int,
    slots: int,
    pc_keyed: bool,
    seed: TableSnapshot | None = None,
    prev_page: int | None = None,
    prev_distance: int | None = None,
    prev_key: int | None = None,
) -> tuple[TableSnapshot, int | None, int | None, int | None]:
    """Shared loop for the DP-PC and DP-2 extensions.

    Both differ from DP only in the table key: ``pack_pc_distance(pc,
    distance)`` for DP-PC, ``pack_distance_pair(prev, current)`` for
    DP-2 (which also needs one extra warm-up miss before its first
    key exists). A per-set dict table covers every associativity.
    """
    buf: dict[int, None] = {}
    buffered = pb_hits = issued = inserted = refreshed = evicted_unused = 0
    num_sets = rows // ways
    sets: list[dict[int, list[int]]] = [{} for _ in range(num_sets)]
    if seed is not None:
        for set_index, pairs in enumerate(seed.sets):
            table_set = sets[set_index]
            for key, payload in pairs:
                table_set[key] = list(payload)
    for index, page in enumerate(pages):
        if page in buf:
            del buf[page]
            buffered -= 1
            if index >= warmup:
                pb_hits += 1
        last_page = prev_page
        prev_page = page
        if last_page is None:
            continue
        distance = page - last_page
        if pc_keyed:
            key = pack_pc_distance(pcs[index], distance)
        else:
            last_distance = prev_distance
            prev_distance = distance
            if last_distance is None:
                continue
            key = pack_distance_pair(last_distance, distance)
        table_set = sets[key % num_sets]
        row = table_set.get(key)
        if row is not None:
            del table_set[key]
            table_set[key] = row
            prefetches = []
            for predicted in row:
                target = page + predicted
                if target >= 0:
                    prefetches.append(target)
                    issued += 1
        else:
            if len(table_set) >= ways:
                del table_set[next(iter(table_set))]
            table_set[key] = []
            prefetches = ()
        if prev_key is not None:
            prev_set = sets[prev_key % num_sets]
            successors = prev_set.get(prev_key)
            if successors is not None:
                del prev_set[prev_key]
                prev_set[prev_key] = successors
            else:
                if len(prev_set) >= ways:
                    del prev_set[next(iter(prev_set))]
                successors = []
                prev_set[prev_key] = successors
            if not successors or successors[0] != distance:
                if distance in successors:
                    successors.remove(distance)
                successors.insert(0, distance)
                if len(successors) > slots:
                    successors.pop()
        prev_key = key
        if prefetches:
            if clamp and len(prefetches) > clamp:
                prefetches = prefetches[:clamp]
            for target in prefetches:
                if target in buf:
                    del buf[target]
                    buf[target] = None
                    refreshed += 1
                else:
                    if buffered >= cap:
                        del buf[next(iter(buf))]
                        evicted_unused += 1
                    else:
                        buffered += 1
                    buf[target] = None
                    inserted += 1
    final_sets = [
        [[key, row] for key, row in table_set.items()]
        for table_set in sets
    ]
    counters.fill(pb_hits, issued, inserted, refreshed, evicted_unused)
    return (
        TableSnapshot(rows=rows, ways=ways, sets=final_sets),
        prev_page,
        prev_distance,
        prev_key,
    )


def _replay_recency(
    miss_trace: MissTrace,
    warmup: int,
    cap: int,
    clamp: int,
    counters: _Counters,
    variant_three: bool,
    seed: RecencySnapshot | None = None,
) -> tuple[list, int | None, int]:
    """RP over dense page ids: the stack's next/prev pointers become
    flat integer arrays instead of dict-backed page-table entries.

    The page↔id mapping is a bijection over every page the stream can
    mention — including every page a warm-start ``seed`` carries a
    page-table entry for — so buffer membership, stack linkage and hit
    accounting are isomorphic to the reference engine's page-number
    arithmetic. Returns the final page-table entries in canonical
    (page-sorted) order, the final stack-top page, and the last miss's
    overhead ops (RP's ``last_overhead_ops`` semantics).
    """
    pages_array = miss_trace.pages
    evicted_array = miss_trace.evicted
    parts = [pages_array, evicted_array[evicted_array >= 0]]
    seed_entries = seed.entries if seed is not None else []
    if seed_entries:
        parts.append(
            np.asarray([entry[0] for entry in seed_entries], dtype=np.int64)
        )
    unique = np.unique(np.concatenate(parts))
    page_ids = np.searchsorted(unique, pages_array).tolist()
    evicted_ids = np.where(
        evicted_array >= 0, np.searchsorted(unique, evicted_array), -1
    ).tolist()

    footprint = len(unique)
    next_link = [-1] * footprint
    prev_link = [-1] * footprint
    on_stack = bytearray(footprint)
    top = -1
    if seed_entries:
        for page, nxt, prev, stacked in seed_entries:
            pid = int(np.searchsorted(unique, page))
            next_link[pid] = -1 if nxt is None else int(np.searchsorted(unique, nxt))
            prev_link[pid] = -1 if prev is None else int(np.searchsorted(unique, prev))
            on_stack[pid] = 1 if stacked else 0
        if seed.top is not None:
            top = int(np.searchsorted(unique, seed.top))

    buf: dict[int, None] = {}
    buffered = pb_hits = issued = inserted = refreshed = evicted_unused = overhead = 0
    miss_overhead = 0
    for index, page in enumerate(page_ids):
        if page in buf:
            del buf[page]
            buffered -= 1
            if index >= warmup:
                pb_hits += 1
        if on_stack[page]:
            below = next_link[page]
            above = prev_link[page]
            # Unlink from the stack (2 pointer writes of overhead).
            if above != -1:
                next_link[above] = below
            else:
                top = below
            if below != -1:
                prev_link[below] = above
            prev_link[page] = -1
            next_link[page] = -1
            on_stack[page] = 0
            overhead += 2
            miss_overhead = 2
        else:
            below = -1
            above = -1
            miss_overhead = 0
        evicted = evicted_ids[index]
        if evicted != -1:
            if on_stack[evicted]:
                # Re-push of a threaded page: silently unlink first
                # (the reference stack does this inside push_top
                # without charging extra overhead).
                e_above = prev_link[evicted]
                e_below = next_link[evicted]
                if e_above != -1:
                    next_link[e_above] = e_below
                else:
                    top = e_below
                if e_below != -1:
                    prev_link[e_below] = e_above
            next_link[evicted] = top
            prev_link[evicted] = -1
            on_stack[evicted] = 1
            if top != -1:
                prev_link[top] = evicted
            top = evicted
            overhead += 2
            miss_overhead += 2
        prefetches = []
        if above != -1:
            prefetches.append(above)
        if below != -1:
            prefetches.append(below)
        if variant_three and below != -1:
            third = next_link[below] if on_stack[below] else -1
            if third != -1 and third != page:
                prefetches.append(third)
        if prefetches:
            issued += len(prefetches)
            if clamp and len(prefetches) > clamp:
                prefetches = prefetches[:clamp]
            for target in prefetches:
                if target in buf:
                    del buf[target]
                    buf[target] = None
                    refreshed += 1
                else:
                    if buffered >= cap:
                        del buf[next(iter(buf))]
                        evicted_unused += 1
                    else:
                        buffered += 1
                    buf[target] = None
                    inserted += 1
    counters.fill(pb_hits, issued, inserted, refreshed, evicted_unused, overhead)

    unique_pages = unique.tolist()
    entries = []
    for pid in range(footprint):
        nxt = next_link[pid]
        prev = prev_link[pid]
        entries.append(
            [
                unique_pages[pid],
                None if nxt == -1 else unique_pages[nxt],
                None if prev == -1 else unique_pages[prev],
                bool(on_stack[pid]),
            ]
        )
    top_page = None if top == -1 else unique_pages[top]
    return entries, top_page, miss_overhead


# ---------------------------------------------------------------------------
# Dispatch: which mechanisms the fast engine can replay, whether an
# instance is pristine enough to serve as a configuration template,
# and the public replay entry point.
# ---------------------------------------------------------------------------

#: Mechanism classes the fast engine has a specialized loop for.
#: Dispatch is on *exact* type: user subclasses may override behavior
#: the loops do not model, so they always take the reference engine.
_FAST_TYPES = (
    NullPrefetcher,
    SequentialPrefetcher,
    AdaptiveSequentialPrefetcher,
    ArbitraryStridePrefetcher,
    MarkovPrefetcher,
    DistancePrefetcher,
    PCDistancePrefetcher,
    DistancePairPrefetcher,
    RecencyPrefetcher,
)


def supports(prefetcher: Prefetcher) -> bool:
    """True when :func:`replay_fast` has a loop for this mechanism."""
    return type(prefetcher) in _FAST_TYPES


def is_fresh(prefetcher: Prefetcher) -> bool:
    """True when the instance carries no trained state or statistics.

    Since the fast engine learned to seed its tables from (and write
    final state back through) :mod:`repro.ckpt.snapshots`, engine
    dispatch no longer cares about freshness — both engines handle
    warm instances identically. Kept as a cheap public predicate.
    Each mechanism reports its own trained state through
    :meth:`~repro.prefetch.base.Prefetcher.has_prediction_state`.
    """
    return (
        not prefetcher.prefetches_issued
        and not prefetcher.overhead_ops_total
        and not prefetcher.has_prediction_state()
    )


def _final_counters(
    initial: MechanismSnapshot, counters: _Counters, ran: bool
) -> dict:
    """Base-counter fields of the post-run snapshot.

    Every mechanism here calls ``Prefetcher.account`` on each miss with
    zero overhead ops (RP, the exception, is handled separately), so
    after one or more misses ``last_overhead_ops`` is 0; an empty
    stream leaves all counters untouched. Issue/overhead totals grow by
    this run's activity on top of the instance's prior tallies.
    """
    return {
        "last_overhead_ops": 0 if ran else initial.last_overhead_ops,
        "prefetches_issued": initial.prefetches_issued + counters.issued,
        "overhead_ops_total": initial.overhead_ops_total + counters.overhead,
    }


def replay_fast(
    miss_trace: MissTrace,
    prefetcher: Prefetcher,
    buffer_entries: int = 16,
    max_prefetches_per_miss: int = 0,
) -> "PrefetchRunStats":
    """Fast-path equivalent of :func:`~repro.sim.two_phase.replay_prefetcher`.

    Trains ``prefetcher`` exactly as the reference engine would: the
    instance's state (warm or fresh) seeds the loop, and the final
    state is restored back into it, so canonical snapshots of the
    instance agree between engines after any sequence of replays.
    Raises :class:`~repro.errors.ConfigurationError` when the mechanism
    has no fast loop.
    """
    if not supports(prefetcher):
        raise ConfigurationError(
            f"fast engine has no replay loop for {type(prefetcher).__name__}; "
            "use engine='reference'"
        )

    cap = buffer_entries
    clamp = max_prefetches_per_miss
    warmup = miss_trace.warmup_misses
    counters = _Counters()
    initial = snapshot_prefetcher(prefetcher)

    kind = type(prefetcher)
    if kind is RecencyPrefetcher:
        # RP builds its own dense numpy id arrays; skip the flat-list
        # precompilation the other loops iterate over.
        entries, top_page, last_overhead = _replay_recency(
            miss_trace, warmup, cap, clamp, counters,
            prefetcher.variant_three, initial,
        )
        ran = len(miss_trace.pages) > 0
        final = RecencySnapshot(
            # RP's on_miss reports each miss's pointer ops, so the last
            # miss's overhead (not 0) is what account() leaves behind.
            last_overhead_ops=last_overhead if ran else initial.last_overhead_ops,
            prefetches_issued=initial.prefetches_issued + counters.issued,
            overhead_ops_total=initial.overhead_ops_total + counters.overhead,
            variant_three=prefetcher.variant_three,
            top=top_page,
            entries=entries,
        )
        restore_prefetcher(final, prefetcher)
        return _stats_from(miss_trace, prefetcher, counters)

    pcs, pages, _evicted, warmup = compile_stream(miss_trace)
    ran = len(pages) > 0
    if kind is NullPrefetcher:
        # Null never calls account(): the reference engine leaves the
        # instance untouched too, so there is nothing to write back.
        _replay_null(pages, warmup, counters)
        return _stats_from(miss_trace, prefetcher, counters)

    if kind is SequentialPrefetcher:
        _replay_sequential(pages, warmup, cap, clamp, counters, prefetcher.degree)
        final = SequentialSnapshot(
            degree=prefetcher.degree,
            **_final_counters(initial, counters, ran),
        )
    elif kind is AdaptiveSequentialPrefetcher:
        degree, window_misses, window_hits = _replay_adaptive_sequential(
            pages, warmup, cap, clamp, counters,
            prefetcher.max_degree, prefetcher.window,
            prefetcher.raise_above, prefetcher.lower_below,
            initial.degree, initial.window_misses, initial.window_hits,
        )
        final = AdaptiveSequentialSnapshot(
            max_degree=prefetcher.max_degree,
            window=prefetcher.window,
            raise_above=prefetcher.raise_above,
            lower_below=prefetcher.lower_below,
            degree=degree,
            window_misses=window_misses,
            window_hits=window_hits,
            **_final_counters(initial, counters, ran),
        )
    elif kind is ArbitraryStridePrefetcher:
        table = _replay_stride(
            pcs, pages, warmup, cap, clamp, counters,
            prefetcher.table.rows, prefetcher.table.ways,
            initial.table,
        )
        final = StrideSnapshot(
            table=table, **_final_counters(initial, counters, ran)
        )
    elif kind is MarkovPrefetcher:
        table, prev_page = _replay_markov(
            pages, warmup, cap, clamp, counters,
            prefetcher.table.rows, prefetcher.table.ways, prefetcher.slots,
            initial.table, initial.prev_page,
        )
        final = MarkovSnapshot(
            slots=prefetcher.slots,
            prev_page=prev_page,
            table=table,
            **_final_counters(initial, counters, ran),
        )
    elif kind is DistancePrefetcher:
        table, prev_page, prev_distance = _replay_distance(
            pages, warmup, cap, clamp, counters,
            prefetcher.table.rows, prefetcher.table.ways, prefetcher.slots,
            initial.table, initial.prev_page, initial.prev_distance,
        )
        final = DistanceSnapshot(
            slots=prefetcher.slots,
            prev_page=prev_page,
            prev_distance=prev_distance,
            table=table,
            **_final_counters(initial, counters, ran),
        )
    elif kind is PCDistancePrefetcher:
        table, prev_page, _, prev_key = _replay_keyed_distance(
            pcs, pages, warmup, cap, clamp, counters,
            prefetcher.table.rows, prefetcher.table.ways, prefetcher.slots,
            pc_keyed=True,
            seed=initial.table,
            prev_page=initial.prev_page,
            prev_key=initial.prev_key,
        )
        final = PCDistanceSnapshot(
            slots=prefetcher.slots,
            prev_page=prev_page,
            prev_key=prev_key,
            table=table,
            **_final_counters(initial, counters, ran),
        )
    else:  # DistancePairPrefetcher (supports() already vetted the type)
        table, prev_page, prev_distance, prev_key = _replay_keyed_distance(
            pcs, pages, warmup, cap, clamp, counters,
            prefetcher.table.rows, prefetcher.table.ways, prefetcher.slots,
            pc_keyed=False,
            seed=initial.table,
            prev_page=initial.prev_page,
            prev_distance=initial.prev_distance,
            prev_key=initial.prev_key,
        )
        final = DistancePairSnapshot(
            slots=prefetcher.slots,
            prev_page=prev_page,
            prev_distance=prev_distance,
            prev_key=prev_key,
            table=table,
            **_final_counters(initial, counters, ran),
        )

    restore_prefetcher(final, prefetcher)
    return _stats_from(miss_trace, prefetcher, counters)


def _stats_from(
    miss_trace: MissTrace, prefetcher: Prefetcher, counters: _Counters
) -> "PrefetchRunStats":
    from repro.sim.stats import PrefetchRunStats

    return PrefetchRunStats(
        workload=miss_trace.name,
        mechanism=prefetcher.label,
        tlb_label=miss_trace.tlb_label,
        total_references=miss_trace.total_references,
        tlb_misses=miss_trace.num_misses,
        measured_misses=miss_trace.measured_misses,
        pb_hits=counters.pb_hits,
        prefetches_issued=counters.issued,
        buffer_inserted=counters.inserted,
        buffer_refreshed=counters.refreshed,
        buffer_evicted_unused=counters.evicted_unused,
        overhead_memory_ops=counters.overhead,
        # A prefetch already buffered is coalesced, costing no new fetch.
        prefetch_fetch_ops=counters.inserted,
    )
