"""One-pass multi-mechanism batch replay: N configs, one stream scan.

A sweep replays the same read-only miss stream once per mechanism
configuration — 84 specs over 4 streams in the smoke bench — so the
dominant cost is re-scanning identical streams. This module compiles
every requested config that shares a stream into **one specialized
Python loop** that advances all of their tables in a single pass,
reusing :mod:`repro.sim.fastpath`'s kernels per slot: flat parallel
arrays for direct-mapped tables, per-set insertion-ordered dicts
(first key = LRU) for other associativities, an insertion-ordered-dict
prefetch buffer with a local population counter, and plain integer
statistics counters.

Two exact optimizations make the batch engine more than a fused loop:

1. **Equivalence-class deduplication.** A prediction table's content
   trajectory depends only on its key stream (pages for MP, distances
   for DP, PCs for ASP, packed keys for DP-PC/DP-2) and its key→set
   mapping. Before running, the batch planner analyzes the stream's
   key universe and proves two sufficient conditions:

   - *Never-overflow*: if no set ever holds more distinct keys than it
     has ways, LRU eviction can never fire, so the table behaves
     exactly like an unbounded per-key dict — independent of geometry.
     Every such config is bit-identical to every other one (same
     family, slots, buffer, clamp), so one simulation serves all.
   - *Same-partition*: two geometries that induce the same partition
     of the key universe into sets, with equal ways, perform the same
     set operations in the same order and are bit-identical.

   Slots proven equivalent share one simulation and one counter set;
   each still reports its own mechanism label.

2. **Constant-inlined code generation.** The fused loop is generated
   as source text with every per-slot constant (rows, ways, slots,
   buffer capacity, clamp, warm-up boundary, degrees) inlined as a
   literal, then ``compile()``d once and memoized by its shape — so a
   sweep's second stream reuses the first's code object. Never-
   overflow tables are emitted as single plain dicts with no set
   indexing, no LRU promotion and no eviction branch at all.

The contract is the same as the fast engine's: **bit-identical
statistics** to :func:`repro.sim.two_phase.replay_prefetcher`,
enforced by ``tests/differential/`` (curated grid + fuzzing) and the
golden files. Unlike :func:`repro.sim.fastpath.replay_fast`, the batch
engine replays *freshly built* mechanisms only and does not write
state back into the instances: it exists for :class:`~repro.run.Runner`
batches, where every spec builds a throwaway mechanism. Warm (trained)
instances are rejected here and take the per-spec engines instead —
`engine.replay` falls back for them.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.core.distance import DistancePrefetcher
from repro.core.distance_pair import DistancePairPrefetcher, pack_distance_pair
from repro.core.pc_distance import PCDistancePrefetcher, pack_pc_distance
from repro.errors import ConfigurationError
from repro.mem.trace import MissTrace
from repro.prefetch.adaptive_sequential import AdaptiveSequentialPrefetcher
from repro.prefetch.base import Prefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.null import NullPrefetcher
from repro.prefetch.recency import RecencyPrefetcher
from repro.prefetch.sequential import SequentialPrefetcher
from repro.prefetch.stride import ArbitraryStridePrefetcher
from repro.sim import fastpath
from repro.sim.fastpath import compile_stream

#: Families with a table whose key universe the planner can analyze.
_TABLE_FAMILIES = ("stride", "markov", "distance", "pcdist", "distpair")


def supports(prefetcher: Prefetcher) -> bool:
    """True when the batch engine has a loop for this mechanism.

    The batch engine covers exactly the fast engine's mechanism set
    (dispatch is on exact type — subclasses take the reference engine).
    """
    return fastpath.supports(prefetcher)


class _SlotPlan:
    """One requested replay: mechanism config + buffer geometry."""

    __slots__ = ("label", "family", "config", "cap", "clamp")

    def __init__(self, label, family, config, cap, clamp):
        self.label = label
        self.family = family
        self.config = config
        self.cap = cap
        self.clamp = clamp


def _plan(prefetcher: Prefetcher, cap: int, clamp: int) -> _SlotPlan:
    if not fastpath.supports(prefetcher):
        raise ConfigurationError(
            f"batch engine has no replay loop for {type(prefetcher).__name__}; "
            "use engine='reference'"
        )
    if not fastpath.is_fresh(prefetcher):
        raise ConfigurationError(
            "batch engine replays freshly built mechanisms only; warm "
            "instances take the per-spec engines (engine='auto'/'fast')"
        )
    kind = type(prefetcher)
    label = prefetcher.label
    if kind is NullPrefetcher:
        return _SlotPlan(label, "none", (), cap, clamp)
    if kind is SequentialPrefetcher:
        return _SlotPlan(label, "seq", (prefetcher.degree,), cap, clamp)
    if kind is AdaptiveSequentialPrefetcher:
        return _SlotPlan(
            label,
            "aseq",
            (
                prefetcher.max_degree,
                prefetcher.window,
                prefetcher.raise_above,
                prefetcher.lower_below,
            ),
            cap,
            clamp,
        )
    if kind is RecencyPrefetcher:
        return _SlotPlan(label, "recency", (prefetcher.variant_three,), cap, clamp)
    table = prefetcher.table
    if kind is ArbitraryStridePrefetcher:
        return _SlotPlan(label, "stride", (table.rows, table.ways), cap, clamp)
    slots = prefetcher.slots
    family = {
        MarkovPrefetcher: "markov",
        DistancePrefetcher: "distance",
        PCDistancePrefetcher: "pcdist",
        DistancePairPrefetcher: "distpair",
    }[kind]
    return _SlotPlan(label, family, (table.rows, table.ways, slots), cap, clamp)


# ---------------------------------------------------------------------------
# Equivalence analysis: prove table configs interchangeable on this stream.
# ---------------------------------------------------------------------------


def _table_class(unique_keys: list[int], rows: int, ways: int) -> tuple:
    """Canonical equivalence class of a ``(rows, ways)`` table on a stream.

    ``unique_keys`` is the stream's key universe in first-occurrence
    order. Returns ``("inf",)`` when no set can ever overflow (the
    table is equivalent to an unbounded per-key dict, hence to every
    other never-overflow geometry), else ``("assoc", ways, labels)``
    where ``labels`` is the canonical first-occurrence numbering of the
    key→set partition — equal labels + equal ways ⇒ identical behavior.
    """
    num_sets = rows // ways
    counts: dict[int, int] = {}
    overflow = False
    for key in unique_keys:
        bucket = key % num_sets
        grown = counts.get(bucket, 0) + 1
        if grown > ways:
            overflow = True
            break
        counts[bucket] = grown
    if not overflow:
        return ("inf",)
    labels: dict[int, int] = {}
    out = []
    for key in unique_keys:
        bucket = key % num_sets
        label = labels.get(bucket)
        if label is None:
            label = len(labels)
            labels[bucket] = label
        out.append(label)
    return ("assoc", ways, tuple(out))


class _StreamKeys:
    """Lazily computed, memoized key universes of one miss stream."""

    def __init__(self, pcs: list[int], pages: list[int]) -> None:
        self._pcs = pcs
        self._pages = pages
        self._distances: list[int] | None = None
        self._cache: dict[str, list[int]] = {}
        self._stream_len: dict[str, int] = {}

    def distances(self) -> list[int]:
        if self._distances is None:
            pages = self._pages
            self._distances = [
                pages[i] - pages[i - 1] for i in range(1, len(pages))
            ]
        return self._distances

    def universe(self, family: str) -> list[int]:
        cached = self._cache.get(family)
        if cached is not None:
            return cached
        if family == "stride":
            keys = self._pcs
        elif family == "markov":
            keys = self._pages
        elif family == "distance":
            keys = self.distances()
        elif family == "pcdist":
            pcs, pages = self._pcs, self._pages
            keys = [
                pack_pc_distance(pcs[i], pages[i] - pages[i - 1])
                for i in range(1, len(pages))
            ]
        else:  # distpair
            dist = self.distances()
            keys = [
                pack_distance_pair(dist[i - 1], dist[i])
                for i in range(1, len(dist))
            ]
        unique = list(dict.fromkeys(keys))
        self._cache[family] = unique
        self._stream_len[family] = len(keys)
        return unique

    def never_hits(self, family: str) -> bool:
        """True when ``family``'s key stream never repeats a key.

        Every table lookup then tag-misses (a key is only ever in the
        table once a *prior* lookup or successor update allocated it),
        so the mechanism issues zero prefetches for *any* geometry,
        slot count, buffer size, or clamp — all such slots collapse
        into one all-zero class that costs nothing to simulate.
        """
        unique = self.universe(family)
        return len(unique) == self._stream_len[family]


def _sigs(plan: _SlotPlan, keys: _StreamKeys) -> tuple[tuple, tuple]:
    """(dedup signature, emission signature) for one slot.

    Slots with equal dedup signatures are bit-identical on this stream
    and share one simulation. The emission signature is what the code
    generator needs: for never-overflow tables the geometry collapses
    to ``None`` (emitted as one plain dict), otherwise the class
    representative's concrete ``(rows, ways)`` is kept.
    """
    if plan.family in _TABLE_FAMILIES:
        if keys.never_hits(plan.family):
            # No repeated key -> no tag hit -> no prefetch, ever. One
            # zero-cost class regardless of geometry/slots/cap/clamp.
            return ("zero",), ("zero",)
        rows, ways = plan.config[0], plan.config[1]
        rest = plan.config[2:]
        tclass = _table_class(keys.universe(plan.family), rows, ways)
        geom = None if tclass == ("inf",) else (rows, ways)
        dedup = (plan.family, rest, tclass, plan.cap, plan.clamp)
        emit = (plan.family, rest, geom, plan.cap, plan.clamp)
        return dedup, emit
    if plan.family == "none":
        # Null never buffers or issues: every slot is one zero row.
        return ("none",), ("none",)
    sig = (plan.family, plan.config, plan.cap, plan.clamp)
    return sig, sig


# ---------------------------------------------------------------------------
# Code generation: one fused loop, constants inlined, names mangled by
# class index. Templates use @K@/@CONST@ markers substituted with plain
# str.replace (no str.format — the code itself is full of braces and
# modulo operators), and @PROBE@/@INSERT:var@/@PREFETCH@ marker lines
# spliced with the shared buffer blocks at the marker's indentation.
# ---------------------------------------------------------------------------


def _probe_lines(pad: str, k: str, var: str, warmup: int) -> list[str]:
    """Buffer probe: remove on hit, count after warm-up.

    Buffer values are always ``None``, so one ``pop`` with a non-None
    default replaces the ``in`` + ``del`` double hash lookup.
    """
    lines = [
        f"{pad}if bp{k}({var}, 0) is None:",
        f"{pad}    bn{k} -= 1",
    ]
    if warmup:
        lines += [
            f"{pad}    if index >= {warmup}:",
            f"{pad}        pb{k} += 1",
        ]
    else:
        lines.append(f"{pad}    pb{k} += 1")
    return lines


def _insert_lines(pad: str, k: str, var: str, cap: int) -> list[str]:
    """Buffer install: refresh-on-duplicate, evict-LRU accounting."""
    return [
        f"{pad}if bp{k}({var}, 0) is None:",
        f"{pad}    buf{k}[{var}] = None",
        f"{pad}    rf{k} += 1",
        f"{pad}else:",
        f"{pad}    if bn{k} >= {cap}:",
        f"{pad}        del buf{k}[next(iter(buf{k}))]",
        f"{pad}        ev{k} += 1",
        f"{pad}    else:",
        f"{pad}        bn{k} += 1",
        f"{pad}    buf{k}[{var}] = None",
        f"{pad}    ins{k} += 1",
    ]


def _prefetch_lines(pad: str, k: str, cap: int, clamp: int) -> list[str]:
    """Clamp the materialized pf{k} list and install every target."""
    lines = [f"{pad}if pf{k}:"]
    if clamp:
        lines += [
            f"{pad}    if len(pf{k}) > {clamp}:",
            f"{pad}        pf{k} = pf{k}[:{clamp}]",
        ]
    lines.append(f"{pad}    for tg{k} in pf{k}:")
    lines.extend(_insert_lines(pad + "        ", k, f"tg{k}", cap))
    return lines


def _render(out: list[str], template: str, base: str, k: str, subs: dict,
            warmup: int, cap: int, clamp: int, probe_var: str | None = None):
    """Splice a body template into ``out`` at indentation ``base``."""
    text = template.replace("@K@", k)
    for marker, value in subs.items():
        text = text.replace(marker, str(value))
    for raw in text.splitlines():
        stripped = raw.strip()
        if not stripped:
            continue
        pad = base + raw[: len(raw) - len(raw.lstrip())]
        if stripped == "@PROBE@":
            out.extend(_probe_lines(pad, k, probe_var or "page", warmup))
        elif stripped.startswith("@INSERT:"):
            var = stripped[len("@INSERT:"):-1].replace("@K@", k)
            out.extend(_insert_lines(pad, k, var, cap))
        elif stripped == "@PREFETCH@":
            out.extend(_prefetch_lines(pad, k, cap, clamp))
        else:
            out.append(pad + stripped if not raw.startswith(" ") else pad + raw.lstrip())


_SEQ_BODY = """\
@PROBE@
iss@K@ += @DEGREE@
"""

_ASEQ_BODY = """\
hit@K@ = bp@K@(page, 0) is None
if hit@K@:
    bn@K@ -= 1
@HIT_COUNT@
wm@K@ += 1
wh@K@ += hit@K@
if wm@K@ >= @WINDOW@:
    hr@K@ = wh@K@ / wm@K@
    if hr@K@ > @RAISE@:
        deg@K@ = min(deg@K@ * 2, @MAXD@)
    elif hr@K@ < @LOWER@:
        deg@K@ = max(deg@K@ // 2, 1)
    wm@K@ = 0
    wh@K@ = 0
iss@K@ += deg@K@
for of@K@ in range(1, @EFF@ + 1):
    t@K@ = page + of@K@
    @INSERT:t@K@@
"""

_STRIDE_FSM = """\
ns@K@ = page - @PREV@
un@K@ = ns@K@ == @STRIDE@
s@K@ = @STATE@
if s@K@ == 0:
    if un@K@:
        @SET_STATE@ = 2
    else:
        @SET_STATE@ = 1
        @SET_STRIDE@ = ns@K@
elif s@K@ == 1:
    if un@K@:
        @SET_STATE@ = 2
    else:
        @SET_STATE@ = 3
        @SET_STRIDE@ = ns@K@
elif s@K@ == 2:
    if not un@K@:
        @SET_STATE@ = 0
else:
    if un@K@:
        @SET_STATE@ = 1
    else:
        @SET_STRIDE@ = ns@K@
@SET_PREV@ = page
if @STATE@ == 2:
    sv@K@ = @STRIDE@
    if sv@K@:
        t@K@ = page + sv@K@
        if t@K@ >= 0:
            iss@K@ += 1
            @INSERT:t@K@@
"""

_SUCCESSOR_UPDATE = """\
if not sc@K@ or sc@K@[0] != @VALUE@:
    if @VALUE@ in sc@K@:
        sc@K@.remove(@VALUE@)
    sc@K@.insert(0, @VALUE@)
    if len(sc@K@) > @SLOTS@:
        sc@K@.pop()
"""

# Specialized MRU updates for tiny slot counts (the paper's common
# cases). For 2 slots, "move/insert @VALUE@ to the front and truncate"
# always ends as [@VALUE@, old_front] when 2 entries exist — whether
# @VALUE@ was at index 1 or absent — so the scan/remove/insert/pop
# sequence collapses to two subscript stores.
_SUCCESSOR_UPDATE_1 = """\
if not sc@K@:
    sc@K@.append(@VALUE@)
elif sc@K@[0] != @VALUE@:
    sc@K@[0] = @VALUE@
"""

_SUCCESSOR_UPDATE_2 = """\
if not sc@K@:
    sc@K@.append(@VALUE@)
elif sc@K@[0] != @VALUE@:
    if len(sc@K@) == 2:
        sc@K@[1] = sc@K@[0]
        sc@K@[0] = @VALUE@
    else:
        sc@K@.insert(0, @VALUE@)
"""


def _successor_update(slots: int) -> str:
    """Pick the MRU-update template for a slot count."""
    if slots == 1:
        return _SUCCESSOR_UPDATE_1
    if slots == 2:
        return _SUCCESSOR_UPDATE_2
    return _SUCCESSOR_UPDATE.replace("@SLOTS@", str(slots))


def _emit_none(k, plan, warmup):
    return [], {}, "(0, 0, 0, 0, 0, 0)"


def _mod(expr: str, n: int) -> str:
    """Row-index expression; ``&`` for power-of-two table sizes.

    Python's infinite two's complement makes ``x & (n-1)`` equal
    ``x % n`` for any int ``x`` (negative distances included) whenever
    ``n`` is a power of two — and it skips the division.
    """
    if n & (n - 1) == 0:
        return f"{expr} & {n - 1}"
    return f"{expr} % {n}"


def _counters_setup(k):
    # bp{k} pre-binds the buffer's bound ``pop``: the dict object never
    # changes, and probes/installs are the hottest calls in the loop.
    return [
        f"buf{k} = {{}}",
        f"bp{k} = buf{k}.pop",
        f"bn{k} = pb{k} = iss{k} = ins{k} = rf{k} = ev{k} = 0",
    ]


def _emit_seq(k, sig, warmup):
    _, (degree,), cap, clamp = sig[0], sig[1], sig[2], sig[3]
    effective = degree if not clamp else min(degree, clamp)
    out: list[str] = []
    _render(out, _SEQ_BODY, "", k, {"@DEGREE@": degree}, warmup, cap, clamp)
    if effective <= 8:
        # Small degrees (the common case) fully unrolled, no offset loop.
        for offset in range(1, effective + 1):
            out.append(f"t{k} = page + {offset}")
            out.extend(_insert_lines("", k, f"t{k}", cap))
    else:
        out.append(f"for of{k} in range(1, {effective + 1}):")
        out.append(f"    t{k} = page + of{k}")
        out.extend(_insert_lines("    ", k, f"t{k}", cap))
    return _counters_setup(k), {"top": out}, _result(k)


def _emit_aseq(k, sig, warmup):
    maxd, window, raise_above, lower_below = sig[1]
    cap, clamp = sig[2], sig[3]
    if warmup:
        hit_count = f"if hit@K@ and index >= {warmup}:\n    pb@K@ += 1"
    else:
        hit_count = "if hit@K@:\n    pb@K@ += 1"
    eff = f"deg{k}" if not clamp else f"min(deg{k}, {clamp})"
    out: list[str] = []
    _render(
        out,
        _ASEQ_BODY.replace("@HIT_COUNT@", hit_count),
        "",
        k,
        {
            "@WINDOW@": window,
            "@RAISE@": repr(raise_above),
            "@LOWER@": repr(lower_below),
            "@MAXD@": maxd,
            "@EFF@": eff,
        },
        warmup,
        cap,
        clamp,
    )
    setup = _counters_setup(k) + [f"deg{k} = 1", f"wm{k} = wh{k} = 0"]
    return setup, {"top": out}, _result(k)


def _result(k, overhead="0"):
    return f"(pb{k}, iss{k}, ins{k}, rf{k}, ev{k}, {overhead})"


def _emit_stride(k, sig, warmup):
    geom, cap, clamp = sig[2], sig[3], sig[4]
    out: list[str] = []
    out.extend(_probe_lines("", k, "page", warmup))
    if geom is None:
        # Never-overflow: one plain dict pc -> [prev_page, stride, state].
        setup = _counters_setup(k) + [f"st{k} = {{}}"]
        out.append(f"en{k} = st{k}.get(pc)")
        out.append(f"if en{k} is None:")
        out.append(f"    st{k}[pc] = [page, 0, 0]")
        out.append("else:")
        _render(
            out, _STRIDE_FSM, "    ", k,
            {
                "@PREV@": f"en{k}[0]", "@STRIDE@": f"en{k}[1]",
                "@STATE@": f"en{k}[2]", "@SET_STATE@": f"en{k}[2]",
                "@SET_STRIDE@": f"en{k}[1]", "@SET_PREV@": f"en{k}[0]",
            },
            warmup, cap, clamp,
        )
        return setup, {"top": out}, _result(k)
    rows, ways = geom
    if ways == 1:
        setup = _counters_setup(k) + [
            f"tag{k} = [None] * {rows}",
            f"ppg{k} = [0] * {rows}",
            f"str{k} = [0] * {rows}",
            f"sst{k} = bytearray({rows})",
        ]
        out.append(f"r{k} = {_mod('pc', rows)}")
        out.append(f"if tag{k}[r{k}] != pc:")
        out.append(f"    tag{k}[r{k}] = pc")
        out.append(f"    ppg{k}[r{k}] = page")
        out.append(f"    str{k}[r{k}] = 0")
        out.append(f"    sst{k}[r{k}] = 0")
        out.append("else:")
        _render(
            out, _STRIDE_FSM, "    ", k,
            {
                "@PREV@": f"ppg{k}[r{k}]", "@STRIDE@": f"str{k}[r{k}]",
                "@STATE@": f"sst{k}[r{k}]", "@SET_STATE@": f"sst{k}[r{k}]",
                "@SET_STRIDE@": f"str{k}[r{k}]", "@SET_PREV@": f"ppg{k}[r{k}]",
            },
            warmup, cap, clamp,
        )
        return setup, {"top": out}, _result(k)
    num_sets = rows // ways
    if num_sets == 1:
        setup = _counters_setup(k) + [f"ts{k} = {{}}"]
    else:
        setup = _counters_setup(k) + [
            f"sets{k} = [{{}} for _ in range({num_sets})]",
        ]
        out.append(f"ts{k} = sets{k}[{_mod('pc', num_sets)}]")
    out.append(f"en{k} = ts{k}.pop(pc, None)")
    out.append(f"if en{k} is None:")
    out.append(f"    if len(ts{k}) >= {ways}:")
    out.append(f"        del ts{k}[next(iter(ts{k}))]")
    out.append(f"    ts{k}[pc] = [page, 0, 0]")
    out.append("else:")
    out.append(f"    ts{k}[pc] = en{k}")
    _render(
        out, _STRIDE_FSM, "    ", k,
        {
            "@PREV@": f"en{k}[0]", "@STRIDE@": f"en{k}[1]",
            "@STATE@": f"en{k}[2]", "@SET_STATE@": f"en{k}[2]",
            "@SET_STRIDE@": f"en{k}[1]", "@SET_PREV@": f"en{k}[0]",
        },
        warmup, cap, clamp,
    )
    return setup, {"top": out}, _result(k)


def _emit_markov(k, sig, warmup):
    """MP bodies: lookup + install in "top", successor update in "mp".

    The install loop iterates the *live* slot list captured at lookup
    time, before any successor update runs — exactly the reference
    engine's materialize-at-predict semantics (buffer inserts never
    touch the table, so running them first is unobservable). The
    update lands in the shared ``if lp is not None and lp != page:``
    block that :func:`_generate` emits once for every MP class.
    """
    (slots,), geom, cap, clamp = sig[1], sig[2], sig[3], sig[4]
    out: list[str] = []
    out.extend(_probe_lines("", k, "page", warmup))
    update = _successor_update(slots).replace("@VALUE@", "page")
    upd: list[str] = []
    # Two slots (the paper's standard MP geometry) unrolls the install:
    # no iterator and no clamp copy. A clamp >= 2 is a no-op for two
    # slots; clamp == 1 just omits the second install (``issued`` still
    # counts the full slot list, matching the reference engine).
    two = slots == 2
    second = clamp != 1
    if geom is None:
        setup = _counters_setup(k) + [f"mt{k} = {{}}", f"mg{k} = mt{k}.get"]
        out.append(f"pf{k} = mg{k}(page)")
        if two:
            out.append(f"if pf{k} is None:")
            out.append(f"    mt{k}[page] = []")
            out.append(f"elif pf{k}:")
            out.append(f"    n{k} = len(pf{k})")
            out.append(f"    iss{k} += n{k}")
            out.append(f"    tg{k} = pf{k}[0]")
            out.extend(_insert_lines("    ", k, f"tg{k}", cap))
            if second:
                out.append(f"    if n{k} > 1:")
                out.append(f"        tg{k} = pf{k}[1]")
                out.extend(_insert_lines("        ", k, f"tg{k}", cap))
        else:
            out.append(f"if pf{k} is not None:")
            out.append(f"    iss{k} += len(pf{k})")
            out.append("else:")
            out.append(f"    mt{k}[page] = []")
            out.append(f"    pf{k} = ()")
            out.extend(_prefetch_lines("", k, cap, clamp))
        upd.append(f"sc{k} = mg{k}(lp)")
        upd.append(f"if sc{k} is None:")
        upd.append(f"    sc{k} = []")
        upd.append(f"    mt{k}[lp] = sc{k}")
        _render(upd, update, "", k, {}, warmup, cap, clamp)
        return setup, {"top": out, "mp": upd}, _result(k)
    rows, ways = geom
    if ways == 1 and two:
        # Direct-mapped two-slot rows packed into parallel flat arrays
        # (count, MRU successor, LRU successor) instead of one heap
        # list per row: no per-row allocations, and the MRU update is
        # three subscript stores. Same observable trajectory as the
        # list form — [v] is (1, v, _) and [a, b] is (2, a, b).
        setup = _counters_setup(k) + [
            f"tag{k} = [None] * {rows}",
            f"cn{k} = bytearray({rows})",
            f"ma{k} = [0] * {rows}",
            f"mb{k} = [0] * {rows}",
        ]
        out.append(f"r{k} = {_mod('page', rows)}")
        out.append(f"if tag{k}[r{k}] == page:")
        out.append(f"    n{k} = cn{k}[r{k}]")
        out.append(f"    if n{k}:")
        out.append(f"        iss{k} += n{k}")
        out.append(f"        tg{k} = ma{k}[r{k}]")
        out.extend(_insert_lines("        ", k, f"tg{k}", cap))
        if second:
            out.append(f"        if n{k} > 1:")
            out.append(f"            tg{k} = mb{k}[r{k}]")
            out.extend(_insert_lines("            ", k, f"tg{k}", cap))
        out.append("else:")
        out.append(f"    tag{k}[r{k}] = page")
        out.append(f"    cn{k}[r{k}] = 0")
        upd.append(f"pr{k} = {_mod('lp', rows)}")
        upd.append(f"if tag{k}[pr{k}] != lp:")
        upd.append(f"    tag{k}[pr{k}] = lp")
        upd.append(f"    ma{k}[pr{k}] = page")
        upd.append(f"    cn{k}[pr{k}] = 1")
        upd.append(f"elif cn{k}[pr{k}] == 0:")
        upd.append(f"    ma{k}[pr{k}] = page")
        upd.append(f"    cn{k}[pr{k}] = 1")
        upd.append(f"elif ma{k}[pr{k}] != page:")
        upd.append(f"    mb{k}[pr{k}] = ma{k}[pr{k}]")
        upd.append(f"    ma{k}[pr{k}] = page")
        upd.append(f"    cn{k}[pr{k}] = 2")
        return setup, {"top": out, "mp": upd}, _result(k)
    if ways == 1:
        # Direct-mapped: tags start at an unmatchable None sentinel, so
        # no separate occupancy array is consulted in the hot path.
        setup = _counters_setup(k) + [
            f"tag{k} = [None] * {rows}",
            f"sl{k} = [[] for _ in range({rows})]",
        ]
        out.append(f"r{k} = {_mod('page', rows)}")
        out.append(f"if tag{k}[r{k}] == page:")
        out.append(f"    pf{k} = sl{k}[r{k}]")
        out.append(f"    iss{k} += len(pf{k})")
        out.append("else:")
        out.append(f"    tag{k}[r{k}] = page")
        out.append(f"    sl{k}[r{k}] = []")
        out.append(f"    pf{k} = ()")
        out.extend(_prefetch_lines("", k, cap, clamp))
        upd.append(f"pr{k} = {_mod('lp', rows)}")
        upd.append(f"if tag{k}[pr{k}] == lp:")
        upd.append(f"    sc{k} = sl{k}[pr{k}]")
        upd.append("else:")
        upd.append(f"    tag{k}[pr{k}] = lp")
        upd.append(f"    sc{k} = []")
        upd.append(f"    sl{k}[pr{k}] = sc{k}")
        _render(upd, update, "", k, {}, warmup, cap, clamp)
        return setup, {"top": out, "mp": upd}, _result(k)
    num_sets = rows // ways
    if num_sets == 1:
        # Fully associative: one set, bound once — no per-miss indexing.
        setup = _counters_setup(k) + [f"ts{k} = {{}}"]
        ts, ps = f"ts{k}", f"ts{k}"
    else:
        setup = _counters_setup(k) + [
            f"sets{k} = [{{}} for _ in range({num_sets})]",
        ]
        out.append(f"ts{k} = sets{k}[{_mod('page', num_sets)}]")
        upd.append(f"ps{k} = sets{k}[{_mod('lp', num_sets)}]")
        ts, ps = f"ts{k}", f"ps{k}"
    out.append(f"pf{k} = {ts}.pop(page, None)")
    if two:
        out.append(f"if pf{k} is not None:")
        out.append(f"    {ts}[page] = pf{k}")
        out.append(f"    if pf{k}:")
        out.append(f"        n{k} = len(pf{k})")
        out.append(f"        iss{k} += n{k}")
        out.append(f"        tg{k} = pf{k}[0]")
        out.extend(_insert_lines("        ", k, f"tg{k}", cap))
        if second:
            out.append(f"        if n{k} > 1:")
            out.append(f"            tg{k} = pf{k}[1]")
            out.extend(_insert_lines("            ", k, f"tg{k}", cap))
        out.append("else:")
        out.append(f"    if len({ts}) >= {ways}:")
        out.append(f"        del {ts}[next(iter({ts}))]")
        out.append(f"    {ts}[page] = []")
    else:
        out.append(f"if pf{k} is not None:")
        out.append(f"    {ts}[page] = pf{k}")
        out.append(f"    iss{k} += len(pf{k})")
        out.append("else:")
        out.append(f"    if len({ts}) >= {ways}:")
        out.append(f"        del {ts}[next(iter({ts}))]")
        out.append(f"    {ts}[page] = []")
        out.append(f"    pf{k} = ()")
        out.extend(_prefetch_lines("", k, cap, clamp))
    upd.append(f"sc{k} = {ps}.pop(lp, None)")
    upd.append(f"if sc{k} is not None:")
    upd.append(f"    {ps}[lp] = sc{k}")
    upd.append("else:")
    upd.append(f"    if len({ps}) >= {ways}:")
    upd.append(f"        del {ps}[next(iter({ps}))]")
    upd.append(f"    sc{k} = []")
    upd.append(f"    {ps}[lp] = sc{k}")
    _render(upd, update, "", k, {}, warmup, cap, clamp)
    return setup, {"top": out, "mp": upd}, _result(k)


def _materialize_targets(k):
    """Targets are materialized before the successor update: when the
    updated key aliases the looked-up row, the update mutates the live
    slot list (the reference engine snapshots values first)."""
    return [
        f"pf{k} = []",
        f"for pd{k}_ in row{k}:",
        f"    t{k} = page + pd{k}_",
        f"    if t{k} >= 0:",
        f"        pf{k}.append(t{k})",
        f"        iss{k} += 1",
    ]


def _hit_targets(k, cap, clamp, slots=0):
    """The hit path's target handling for keyed (distance-valued) rows.

    With no clamp, installs fuse into the materialize loop: the live
    row is iterated at lookup time (before the successor update can
    mutate it) and each non-negative target goes straight into the
    buffer — no intermediate list. A clamp needs the full list first
    because ``issued`` counts pre-clamp targets. Two-slot rows (the
    standard geometry) unroll the loop entirely.
    """
    if clamp:
        return ["    " + line for line in _materialize_targets(k)]
    if slots == 2:
        lines = [
            f"    if row{k}:",
            f"        t{k} = page + row{k}[0]",
            f"        if t{k} >= 0:",
            f"            iss{k} += 1",
        ]
        lines.extend(_insert_lines("            ", k, f"t{k}", cap))
        lines += [
            f"        if len(row{k}) > 1:",
            f"            t{k} = page + row{k}[1]",
            f"            if t{k} >= 0:",
            f"                iss{k} += 1",
        ]
        lines.extend(_insert_lines("                ", k, f"t{k}", cap))
        return lines
    lines = [
        f"    for pd{k}_ in row{k}:",
        f"        t{k} = page + pd{k}_",
        f"        if t{k} >= 0:",
        f"            iss{k} += 1",
    ]
    lines.extend(_insert_lines("            ", k, f"t{k}", cap))
    return lines


def _emit_keyed_table(k, sig, warmup, key_var, prev_var, section):
    """Shared emitter for DP / DP-PC / DP-2 table bodies.

    ``key_var`` is the shared per-miss lookup key expression,
    ``prev_var`` the shared previous-key variable used for the
    successor update (DP: previous distance; DP-PC/DP-2: previous
    packed key). The successor *value* recorded is always the current
    distance. Bodies land in ``section`` ("dp" runs when a distance
    exists, "dp2" additionally when a distance pair exists).
    """
    (slots,), geom, cap, clamp = sig[1], sig[2], sig[3], sig[4]
    update = _successor_update(slots).replace("@VALUE@", "distance")
    hit = _hit_targets(k, cap, clamp, slots)
    out: list[str] = []

    def miss_and_install():
        # With a clamp the hit path materializes pf{k}; the miss path
        # must define it and the shared install block runs afterwards.
        if clamp:
            out.append(f"    pf{k} = ()")

    def trailing_install():
        if clamp:
            out.extend(_prefetch_lines("", k, cap, clamp))

    if geom is None:
        setup = _counters_setup(k) + [f"dt{k} = {{}}"]
        out.append(f"row{k} = dt{k}.get({key_var})")
        out.append(f"if row{k} is not None:")
        out.extend(hit)
        out.append("else:")
        out.append(f"    dt{k}[{key_var}] = []")
        miss_and_install()
        out.append(f"if {prev_var} is not None:")
        out.append(f"    sc{k} = dt{k}.get({prev_var})")
        out.append(f"    if sc{k} is None:")
        out.append(f"        sc{k} = []")
        out.append(f"        dt{k}[{prev_var}] = sc{k}")
        _render(out, update, "    ", k, {}, warmup, cap, clamp)
        trailing_install()
        return setup, {section: out}, _result(k)
    rows, ways = geom
    if ways == 1 and sig[0] == "distance":
        # DP direct-mapped keeps fastpath's flat-array kernel; tags
        # start at an unmatchable None sentinel (distances may be any
        # integer, so no integer sentinel is safe).
        setup = _counters_setup(k) + [
            f"tag{k} = [None] * {rows}",
            f"sl{k} = [[] for _ in range({rows})]",
        ]
        out.append(f"r{k} = {_mod('distance', rows)}")
        out.append(f"if tag{k}[r{k}] == distance:")
        out.append(f"    row{k} = sl{k}[r{k}]")
        out.extend(hit)
        out.append("else:")
        out.append(f"    tag{k}[r{k}] = distance")
        out.append(f"    sl{k}[r{k}] = []")
        miss_and_install()
        out.append(f"if {prev_var} is not None:")
        out.append(f"    pr{k} = {_mod(prev_var, rows)}")
        out.append(f"    if tag{k}[pr{k}] == {prev_var}:")
        out.append(f"        sc{k} = sl{k}[pr{k}]")
        out.append("    else:")
        out.append(f"        tag{k}[pr{k}] = {prev_var}")
        out.append(f"        sc{k} = []")
        out.append(f"        sl{k}[pr{k}] = sc{k}")
        _render(out, update, "    ", k, {}, warmup, cap, clamp)
        trailing_install()
        return setup, {section: out}, _result(k)
    num_sets = rows // ways
    if num_sets == 1:
        setup = _counters_setup(k) + [f"ts{k} = {{}}"]
        ts, ps = f"ts{k}", f"ts{k}"
    else:
        setup = _counters_setup(k) + [
            f"sets{k} = [{{}} for _ in range({num_sets})]",
        ]
        out.append(f"ts{k} = sets{k}[{_mod(key_var, num_sets)}]")
        ts, ps = f"ts{k}", f"ps{k}"
    out.append(f"row{k} = {ts}.pop({key_var}, None)")
    out.append(f"if row{k} is not None:")
    out.append(f"    {ts}[{key_var}] = row{k}")
    out.extend(hit)
    out.append("else:")
    out.append(f"    if len({ts}) >= {ways}:")
    out.append(f"        del {ts}[next(iter({ts}))]")
    out.append(f"    {ts}[{key_var}] = []")
    miss_and_install()
    out.append(f"if {prev_var} is not None:")
    if num_sets != 1:
        out.append(f"    ps{k} = sets{k}[{_mod(prev_var, num_sets)}]")
    out.append(f"    sc{k} = {ps}.pop({prev_var}, None)")
    out.append(f"    if sc{k} is not None:")
    out.append(f"        {ps}[{prev_var}] = sc{k}")
    out.append("    else:")
    out.append(f"        if len({ps}) >= {ways}:")
    out.append(f"            del {ps}[next(iter({ps}))]")
    out.append(f"        sc{k} = []")
    out.append(f"        {ps}[{prev_var}] = sc{k}")
    _render(out, update, "    ", k, {}, warmup, cap, clamp)
    trailing_install()
    return setup, {section: out}, _result(k)


def _emit_recency(k, sig, warmup):
    (variant_three,), cap, clamp = sig[1], sig[2], sig[3]
    out: list[str] = []
    out.extend(_probe_lines("", k, "rpage", warmup))
    if not clamp:
        # No clamp: install each stack neighbor directly, in the same
        # above-then-below(-then-third) order the list would have had.
        out.append("if rabove != -1:")
        out.append(f"    iss{k} += 1")
        out.extend(_insert_lines("    ", k, "rabove", cap))
        out.append("if rbelow != -1:")
        out.append(f"    iss{k} += 1")
        out.extend(_insert_lines("    ", k, "rbelow", cap))
        if variant_three:
            out.append("if rthird != -1:")
            out.append(f"    iss{k} += 1")
            out.extend(_insert_lines("    ", k, "rthird", cap))
        return _counters_setup(k), {"rp": out}, _result(k, "rp_overhead")
    out.append(f"pf{k} = []")
    out.append("if rabove != -1:")
    out.append(f"    pf{k}.append(rabove)")
    out.append("if rbelow != -1:")
    out.append(f"    pf{k}.append(rbelow)")
    if variant_three:
        out.append("if rthird != -1:")
        out.append(f"    pf{k}.append(rthird)")
    out.append(f"if pf{k}:")
    out.append(f"    iss{k} += len(pf{k})")
    out.append(f"    if len(pf{k}) > {clamp}:")
    out.append(f"        pf{k} = pf{k}[:{clamp}]")
    out.append(f"    for tg{k} in pf{k}:")
    out.extend(_insert_lines("        ", k, f"tg{k}", cap))
    return _counters_setup(k), {"rp": out}, _result(k, "rp_overhead")


def _recency_streams(
    rp_pages: list[int], rp_evicted: list[int], rp_footprint: int
) -> tuple[list[int], list[int], list[int], int]:
    """Precompute the recency stack's per-miss neighbors for one trace.

    The stack evolution depends only on the miss stream — never on any
    mechanism config — so the (above, below, third) neighbors seen at
    every miss, and the total maintenance overhead, are computed once
    per trace and cached in its :class:`_TraceAnalysis`. Every RP
    class then reduces to buffer work over these arrays. ``third`` is
    pre-filtered exactly as the replay would (absent, off-stack, or
    equal to the missing page -> -1).
    """
    rp_next = [-1] * rp_footprint
    rp_prev = [-1] * rp_footprint
    rp_on = bytearray(rp_footprint)
    rp_top = -1
    overhead = 0
    above: list[int] = []
    below: list[int] = []
    third: list[int] = []
    for rpage, revt in zip(rp_pages, rp_evicted):
        if rp_on[rpage]:
            rbelow = rp_next[rpage]
            rabove = rp_prev[rpage]
            if rabove != -1:
                rp_next[rabove] = rbelow
            else:
                rp_top = rbelow
            if rbelow != -1:
                rp_prev[rbelow] = rabove
            rp_prev[rpage] = -1
            rp_next[rpage] = -1
            rp_on[rpage] = 0
            overhead += 2
        else:
            rbelow = -1
            rabove = -1
        if revt != -1:
            if rp_on[revt]:
                ea = rp_prev[revt]
                eb = rp_next[revt]
                if ea != -1:
                    rp_next[ea] = eb
                else:
                    rp_top = eb
                if eb != -1:
                    rp_prev[eb] = ea
            rp_next[revt] = rp_top
            rp_prev[revt] = -1
            rp_on[revt] = 1
            if rp_top != -1:
                rp_prev[rp_top] = revt
            rp_top = revt
            overhead += 2
        above.append(rabove)
        below.append(rbelow)
        if rbelow != -1 and rp_on[rbelow]:
            th = rp_next[rbelow]
            if th == rpage:
                th = -1
        else:
            th = -1
        third.append(th)
    return above, below, third, overhead


def _emit_class(k: str, sig: tuple, warmup: int):
    family = sig[0]
    if family == "zero":
        # A provably hit-free table mechanism: no per-miss work at all.
        return [], {}, "(0, 0, 0, 0, 0, 0)"
    if family == "none":
        return _emit_none(k, sig, warmup)
    if family == "seq":
        return _emit_seq(k, sig, warmup)
    if family == "aseq":
        return _emit_aseq(k, sig, warmup)
    if family == "stride":
        return _emit_stride(k, sig, warmup)
    if family == "markov":
        return _emit_markov(k, sig, warmup)
    if family == "distance":
        setup, sections, result = _emit_keyed_table(
            k, sig, warmup, "distance", "pd", "dp"
        )
    elif family == "pcdist":
        setup, sections, result = _emit_keyed_table(
            k, sig, warmup, "kpc", "pkc", "dp"
        )
    elif family == "distpair":
        setup, sections, result = _emit_keyed_table(
            k, sig, warmup, "dpk", "pk2", "dp2"
        )
    elif family == "recency":
        return _emit_recency(k, sig, warmup)
    else:  # pragma: no cover - _plan vets families
        raise ConfigurationError(f"unknown batch family {family!r}")
    # DP-family bodies probe the buffer on every miss (top level) and
    # run their table logic only once a distance (pair) exists.
    probe = _probe_lines("", k, "page", warmup)
    sections["top"] = probe
    return setup, sections, result


def _generate(warmup: int, emit_sigs: tuple[tuple, ...]) -> str:
    """Source of the fused loop for one batch shape."""
    setups: list[str] = []
    tops: list[str] = []
    mps: list[str] = []
    dps: list[str] = []
    dp2s: list[str] = []
    rps: list[str] = []
    results: list[str] = []
    need_pc = need_lp = need_dist = need_pd = False
    need_kpc = need_dpk = need_rp = need_rp3 = False
    for index, sig in enumerate(emit_sigs):
        family = sig[0]
        if family in ("stride", "pcdist"):
            need_pc = True
        if family in ("markov", "distance", "pcdist", "distpair"):
            need_lp = need_dist = True
        if family in ("distance", "distpair"):
            need_pd = True
        if family == "pcdist":
            need_kpc = True
        if family == "distpair":
            need_dpk = True
        if family == "recency":
            need_rp = True
            if sig[1][0]:
                need_rp3 = True
        setup, sections, result = _emit_class(str(index), sig, warmup)
        setups.extend(setup)
        tops.extend(sections.get("top", ()))
        mps.extend(sections.get("mp", ()))
        dps.extend(sections.get("dp", ()))
        dp2s.extend(sections.get("dp2", ()))
        rps.extend(sections.get("rp", ()))
        results.append(result)

    lines = [
        # Hot-loop names bound as defaults: LOAD_FAST instead of
        # LOAD_GLOBAL for every builtin/table-helper call per miss.
        "def _batch(pcs, pages, rp_pages, rp_above, rp_below, "
        "rp_third, rp_overhead,",
        "           len=len, next=next, iter=iter, min=min, max=max,",
        "           pack_pc_distance=pack_pc_distance,",
        "           pack_distance_pair=pack_distance_pair):",
    ]
    pad = "    "
    for line in setups:
        lines.append(pad + line)
    if need_lp:
        lines.append(pad + "last_page = None")
    if need_pd:
        lines.append(pad + "last_dist = None")
    if need_kpc:
        lines.append(pad + "last_kpc = None")
    if need_dpk:
        lines.append(pad + "last_dpk = None")
    loop: list[str] = []
    if need_lp:
        loop.append("lp = last_page")
        loop.append("last_page = page")
    if warmup:
        # Probes test `index >= warmup`, so the loop must enumerate.
        if need_pc:
            loop.append("pc = pcs[index]")
        if need_rp:
            loop.append("rpage = rp_pages[index]")
            loop.append("rabove = rp_above[index]")
            loop.append("rbelow = rp_below[index]")
            if need_rp3:
                loop.append("rthird = rp_third[index]")
    loop.extend(tops)
    if mps:
        # One shared guard for every MP class's successor update (the
        # self-successor rule: a page is never its own successor).
        loop.append("if lp is not None and lp != page:")
        for line in mps:
            loop.append(pad + line)
    if need_dist and (dps or dp2s):
        loop.append("if lp is not None:")
        loop.append(pad + "distance = page - lp")
        if need_pd:
            loop.append(pad + "pd = last_dist")
            loop.append(pad + "last_dist = distance")
        if need_kpc:
            loop.append(pad + "kpc = pack_pc_distance(pc, distance)")
            loop.append(pad + "pkc = last_kpc")
            loop.append(pad + "last_kpc = kpc")
        for line in dps:
            loop.append(pad + line)
        if need_dpk and dp2s:
            loop.append(pad + "if pd is not None:")
            loop.append(pad + pad + "dpk = pack_distance_pair(pd, distance)")
            loop.append(pad + pad + "pk2 = last_dpk")
            loop.append(pad + pad + "last_dpk = dpk")
            for line in dp2s:
                loop.append(pad + pad + line)
    if need_rp:
        loop.extend(rps)
    if loop:
        # An all-Null batch has no per-miss work at all — skip the loop.
        # Without a warm-up window nothing reads `index`: zip exactly
        # the arrays the bodies touch instead of enumerating.
        if warmup:
            lines.append(pad + "for index, page in enumerate(pages):")
        else:
            names, iters = ["page"], ["pages"]
            if need_pc:
                names.append("pc")
                iters.append("pcs")
            if need_rp:
                names += ["rpage", "rabove", "rbelow"]
                iters += ["rp_pages", "rp_above", "rp_below"]
                if need_rp3:
                    names.append("rthird")
                    iters.append("rp_third")
            if len(iters) == 1:
                lines.append(pad + "for page in pages:")
            else:
                lines.append(
                    pad + "for " + ", ".join(names)
                    + " in zip(" + ", ".join(iters) + "):"
                )
        body = pad + pad
        for line in loop:
            lines.append(body + line)
    lines.append(pad + "return [")
    for result in results:
        lines.append(pad + pad + result + ",")
    lines.append(pad + "]")
    return "\n".join(lines) + "\n"


#: Compiled fused loops memoized by (warmup, emission signatures) —
#: a sweep's streams typically share one shape, so codegen runs once.
_CODE_CACHE: dict[tuple, object] = {}

#: Source of the most recently generated loop (debugging/tests).
_LAST_SOURCE: str | None = None


def _compiled(warmup: int, emit_sigs: tuple[tuple, ...]):
    global _LAST_SOURCE
    key = (warmup, emit_sigs)
    fn = _CODE_CACHE.get(key)
    if fn is None:
        source = _generate(warmup, emit_sigs)
        _LAST_SOURCE = source
        namespace = {
            "pack_pc_distance": pack_pc_distance,
            "pack_distance_pair": pack_distance_pair,
        }
        exec(compile(source, "<repro.sim.batchpath>", "exec"), namespace)
        fn = namespace["_batch"]
        if len(_CODE_CACHE) >= 256:
            _CODE_CACHE.clear()
        _CODE_CACHE[key] = fn
    return fn


# ---------------------------------------------------------------------------
# Public entry point.
# ---------------------------------------------------------------------------


class _TraceAnalysis:
    """Per-trace batch analysis, computed once and reused across calls."""

    __slots__ = ("keys", "rp", "sigs")

    def __init__(self) -> None:
        self.keys: _StreamKeys | None = None
        # (rp_pages, above, below, third, overhead): the dense page
        # ids plus the precomputed recency-stack neighbor streams.
        self.rp: (
            tuple[list[int], list[int], list[int], list[int], int] | None
        ) = None
        # (family, config, cap, clamp) -> (dedup_sig, emit_sig); the
        # equivalence analysis is a pure function of the trace and
        # those four plan fields, so repeat batches skip it entirely.
        self.sigs: dict[tuple, tuple[tuple, tuple]] = {}


#: Keyed by ``id(miss_trace)``; a weakref finalizer evicts the entry
#: when the trace dies, so a recycled id can never alias a stale entry.
_ANALYSIS_CACHE: dict[int, _TraceAnalysis] = {}


def _analysis_for(miss_trace: MissTrace) -> _TraceAnalysis:
    key = id(miss_trace)
    analysis = _ANALYSIS_CACHE.get(key)
    if analysis is None:
        analysis = _TraceAnalysis()
        _ANALYSIS_CACHE[key] = analysis
        weakref.finalize(miss_trace, _ANALYSIS_CACHE.pop, key, None)
    return analysis


def replay_batch(
    miss_trace: MissTrace,
    requests: "list[tuple[Prefetcher, int, int]]",
) -> "list[PrefetchRunStats]":
    """Replay N fresh mechanisms over one miss stream in a single pass.

    ``requests`` is a list of ``(prefetcher, buffer_entries,
    max_prefetches_per_miss)`` triples; every prefetcher must be a
    freshly built instance of a supported mechanism (raises
    :class:`~repro.errors.ConfigurationError` otherwise). Returns one
    :class:`~repro.sim.stats.PrefetchRunStats` per request, in request
    order, bit-identical to what the reference and per-spec fast
    engines produce. The instances are *not* trained — batch replays
    are for throwaway mechanisms built from specs.
    """
    plans = [_plan(p, cap, clamp) for p, cap, clamp in requests]
    pcs, pages, _evicted, warmup = compile_stream(miss_trace)
    analysis = _analysis_for(miss_trace)
    if analysis.keys is None:
        analysis.keys = _StreamKeys(pcs, pages)
    keys = analysis.keys

    class_of: dict[tuple, int] = {}
    emit_sigs: list[tuple] = []
    slot_class: list[int] = []
    for plan in plans:
        cache_key = (plan.family, plan.config, plan.cap, plan.clamp)
        cached = analysis.sigs.get(cache_key)
        if cached is None:
            cached = _sigs(plan, keys)
            analysis.sigs[cache_key] = cached
        dedup_sig, emit_sig = cached
        index = class_of.get(dedup_sig)
        if index is None:
            index = len(emit_sigs)
            class_of[dedup_sig] = index
            emit_sigs.append(emit_sig)
        slot_class.append(index)

    rp_pages: list[int] = []
    rp_above: list[int] = []
    rp_below: list[int] = []
    rp_third: list[int] = []
    rp_overhead = 0
    if any(sig[0] == "recency" for sig in emit_sigs):
        if analysis.rp is None:
            pages_array = miss_trace.pages
            evicted_array = miss_trace.evicted
            unique = np.unique(
                np.concatenate([pages_array, evicted_array[evicted_array >= 0]])
            )
            rp_pages = np.searchsorted(unique, pages_array).tolist()
            rp_evicted = np.where(
                evicted_array >= 0, np.searchsorted(unique, evicted_array), -1
            ).tolist()
            analysis.rp = (rp_pages,) + _recency_streams(
                rp_pages, rp_evicted, len(unique)
            )
        rp_pages, rp_above, rp_below, rp_third, rp_overhead = analysis.rp

    fn = _compiled(warmup, tuple(emit_sigs))
    rows = fn(pcs, pages, rp_pages, rp_above, rp_below, rp_third, rp_overhead)
    return [
        _make_stats(miss_trace, plan.label, rows[slot_class[i]])
        for i, plan in enumerate(plans)
    ]


def _make_stats(miss_trace: MissTrace, label: str, row: tuple):
    from repro.sim.stats import PrefetchRunStats

    pb_hits, issued, inserted, refreshed, evicted_unused, overhead = row
    return PrefetchRunStats(
        workload=miss_trace.name,
        mechanism=label,
        tlb_label=miss_trace.tlb_label,
        total_references=miss_trace.total_references,
        tlb_misses=miss_trace.num_misses,
        measured_misses=miss_trace.measured_misses,
        pb_hits=pb_hits,
        prefetches_issued=issued,
        buffer_inserted=inserted,
        buffer_refreshed=refreshed,
        buffer_evicted_unused=evicted_unused,
        overhead_memory_ops=overhead,
        # A prefetch already buffered is coalesced, costing no new fetch.
        prefetch_fetch_ops=inserted,
    )
