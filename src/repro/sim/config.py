"""Configuration records for simulations.

Defaults follow the paper's representative setup (Section 3.1): a
128-entry fully-associative data TLB, a 16-entry prefetch buffer, and a
4096-byte page. Sweeps construct variations of these frozen records.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.tlb.tlb import FULLY_ASSOCIATIVE, TLB


@dataclass(frozen=True)
class TLBConfig:
    """Shape of the simulated data TLB.

    Attributes:
        entries: total entries (the paper studies 64, 128, 256).
        ways: associativity; 0 (:data:`FULLY_ASSOCIATIVE`) for fully
            associative, otherwise 2 or 4 in the paper.
    """

    entries: int = 128
    ways: int = FULLY_ASSOCIATIVE

    def build(self) -> TLB:
        """Instantiate a fresh TLB of this shape."""
        return TLB(entries=self.entries, ways=self.ways)

    @property
    def label(self) -> str:
        assoc = "FA" if self.ways in (0, self.entries) else f"{self.ways}w"
        return f"{self.entries}e-{assoc}"


@dataclass(frozen=True)
class SimulationConfig:
    """Everything a functional prefetching simulation needs besides the
    workload and the mechanism.

    Attributes:
        tlb: TLB shape.
        buffer_entries: prefetch buffer capacity ``b`` (16/32/64).
        warmup_fraction: leading fraction of *references* treated as
            warm-up — misses there still train the mechanism and the
            TLB but are excluded from accuracy accounting. The paper
            fast-forwards two billion instructions for SPEC; synthetic
            workloads are generated in steady state, so the default is
            no warm-up.
        max_prefetches_per_miss: engine-level clamp on prefetches
            accepted per miss, or 0 for the mechanism's natural bound.
    """

    tlb: TLBConfig = TLBConfig()
    buffer_entries: int = 16
    warmup_fraction: float = 0.0
    max_prefetches_per_miss: int = 0

    def __post_init__(self) -> None:
        if self.buffer_entries <= 0:
            raise ConfigurationError(
                f"buffer_entries must be > 0, got {self.buffer_entries}"
            )
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )
        if self.max_prefetches_per_miss < 0:
            raise ConfigurationError(
                "max_prefetches_per_miss must be >= 0, got "
                f"{self.max_prefetches_per_miss}"
            )

    def with_tlb(self, entries: int, ways: int = FULLY_ASSOCIATIVE) -> "SimulationConfig":
        """Copy of this config with a different TLB shape."""
        return replace(self, tlb=TLBConfig(entries=entries, ways=ways))

    def with_buffer(self, buffer_entries: int) -> "SimulationConfig":
        """Copy of this config with a different prefetch-buffer size."""
        return replace(self, buffer_entries=buffer_entries)


#: The paper's representative configuration (Section 3.1).
PAPER_DEFAULT = SimulationConfig()
