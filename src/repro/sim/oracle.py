"""Oracle replay: the upper bound any prefetch mechanism could reach.

An oracle with ``lookahead = k`` knows the next ``k`` TLB misses and
prefetches exactly those pages — the ceiling for any mechanism that may
issue at most ``k`` prefetches per miss into the same buffer. Comparing
a mechanism's accuracy against the oracle separates "the pattern is
unlearnable" (oracle ≈ 1, mechanism ≈ 0 — e.g. fma3d's random walk is
perfectly coverable with future knowledge) from "the buffer/issue
budget is the binding constraint" (oracle itself degrades).

This is an analysis instrument, not a mechanism: it reads the future of
the miss trace, so it cannot implement :class:`~repro.prefetch.base.
Prefetcher` and lives in the simulation layer instead.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.mem.trace import MissTrace
from repro.sim.stats import PrefetchRunStats
from repro.tlb.prefetch_buffer import PrefetchBuffer


def replay_oracle(
    miss_trace: MissTrace,
    lookahead: int = 2,
    buffer_entries: int = 16,
) -> PrefetchRunStats:
    """Replay a miss stream with perfect ``lookahead``-miss knowledge.

    At every miss the next ``lookahead`` missed pages are prefetched
    (subject to the same buffer capacity and replacement as real
    mechanisms). With ``lookahead <= buffer_entries`` the oracle covers
    every miss except the first.
    """
    if lookahead < 1:
        raise ConfigurationError(f"lookahead must be >= 1, got {lookahead}")
    buffer = PrefetchBuffer(buffer_entries)
    _, pages, _, _ = miss_trace.as_lists()
    warmup = miss_trace.warmup_misses

    pb_hits_measured = 0
    prefetches_issued = 0
    total = len(pages)
    for index, page in enumerate(pages):
        if buffer.lookup_remove(page) and index >= warmup:
            pb_hits_measured += 1
        future = pages[index + 1 : index + 1 + lookahead]
        prefetches_issued += len(future)
        for target in future:
            buffer.insert(target)

    return PrefetchRunStats(
        workload=miss_trace.name,
        mechanism=f"oracle,k={lookahead}",
        tlb_label=miss_trace.tlb_label,
        total_references=miss_trace.total_references,
        tlb_misses=total,
        measured_misses=miss_trace.measured_misses,
        pb_hits=pb_hits_measured,
        prefetches_issued=prefetches_issued,
        buffer_inserted=buffer.inserted,
        buffer_refreshed=buffer.refreshed,
        buffer_evicted_unused=buffer.evicted_unused,
        overhead_memory_ops=0,
        prefetch_fetch_ops=buffer.inserted,
    )


def coverage_headroom(
    miss_trace: MissTrace,
    mechanism_accuracy: float,
    lookahead: int = 2,
    buffer_entries: int = 16,
) -> float:
    """How much accuracy is left on the table vs the oracle ceiling."""
    oracle = replay_oracle(
        miss_trace, lookahead=lookahead, buffer_entries=buffer_entries
    )
    return max(0.0, oracle.prediction_accuracy - mechanism_accuracy)
