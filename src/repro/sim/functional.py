"""Online functional simulation (the sim-cache analogue).

Drives the full :class:`~repro.tlb.mmu.MMU` pipeline reference-run by
reference-run over a :class:`~repro.mem.trace.ReferenceTrace`. This is
the authoritative-semantics path; the two-phase path in
:mod:`repro.sim.two_phase` is the fast path and is property-tested to
produce identical results.
"""

from __future__ import annotations

from repro.mem.trace import ReferenceTrace
from repro.prefetch.base import Prefetcher
from repro.sim.config import SimulationConfig
from repro.sim.stats import PrefetchRunStats
from repro.tlb.mmu import MMU, TranslationOutcome
from repro.tlb.prefetch_buffer import PrefetchBuffer


def build_mmu(prefetcher: Prefetcher, config: SimulationConfig) -> MMU:
    """Assemble a fresh MMU for ``prefetcher`` under ``config``."""
    return MMU(
        tlb=config.tlb.build(),
        buffer=PrefetchBuffer(config.buffer_entries),
        prefetcher=prefetcher,
        max_prefetches_per_miss=config.max_prefetches_per_miss,
    )


def simulate(
    trace: ReferenceTrace,
    prefetcher: Prefetcher,
    config: SimulationConfig | None = None,
    engine: str = "reference",
) -> PrefetchRunStats:
    """Run ``prefetcher`` over ``trace`` through the full MMU pipeline.

    Accuracy is accounted only after ``config.warmup_fraction`` of the
    references have passed; everything (TLB, buffer, mechanism) still
    *trains* during warm-up, mirroring how the paper's measurement
    window follows a fast-forward period.

    ``engine="reference"`` (the default) drives the online MMU loop
    below. ``"fast"``/``"auto"`` route through the two-phase path with
    the selected replay engine (:mod:`repro.sim.engine`) — bit-identical
    statistics, dramatically less work.
    """
    config = config or SimulationConfig()
    if engine != "reference":
        # Imported lazily: two_phase/engine and this module are peers.
        from repro.sim.two_phase import evaluate

        return evaluate(trace, prefetcher, config, engine=engine)
    mmu = build_mmu(prefetcher, config)
    warmup_limit = int(trace.total_references * config.warmup_fraction)

    # Snapshot cumulative mechanism counters so a reused instance
    # reports per-run deltas (mirrors replay_prefetcher).
    issued_before = prefetcher.prefetches_issued
    overhead_before = prefetcher.overhead_ops_total

    measured_misses = 0
    measured_hits = 0
    references_seen = 0
    pcs, pages, counts = trace.as_lists()
    for pc, page, count in zip(pcs, pages, counts):
        outcome = mmu.translate_run(pc, page, count)
        if outcome is not TranslationOutcome.TLB_HIT and references_seen >= warmup_limit:
            measured_misses += 1
            if outcome is TranslationOutcome.BUFFER_HIT:
                measured_hits += 1
        references_seen += count

    return PrefetchRunStats(
        workload=trace.name,
        mechanism=prefetcher.label,
        tlb_label=mmu.tlb.label,
        total_references=mmu.references,
        tlb_misses=mmu.tlb_misses,
        measured_misses=measured_misses,
        pb_hits=measured_hits,
        prefetches_issued=prefetcher.prefetches_issued - issued_before,
        buffer_inserted=mmu.buffer.inserted,
        buffer_refreshed=mmu.buffer.refreshed,
        buffer_evicted_unused=mmu.buffer.evicted_unused,
        overhead_memory_ops=prefetcher.overhead_ops_total - overhead_before,
        # A prefetch already buffered is coalesced, costing no new fetch.
        prefetch_fetch_ops=mmu.buffer.inserted,
    )
