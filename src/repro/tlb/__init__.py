"""TLB substrate: the TLB itself, prefetch buffer, page table, and MMU.

- :mod:`repro.tlb.tlb` — set-associative / fully-associative LRU TLB.
- :mod:`repro.tlb.prefetch_buffer` — the small buffer probed in
  parallel with the TLB that holds prefetched translations.
- :mod:`repro.tlb.page_table` — PTE store, including the ``next``/
  ``prev`` recency-stack fields Recency Prefetching keeps in memory.
- :mod:`repro.tlb.mmu` — wires TLB + buffer + a prefetcher into the
  full address-translation pipeline of the paper's Figure 1.
"""

from repro.tlb.page_table import PageTable, RecencyStack
from repro.tlb.prefetch_buffer import PrefetchBuffer
from repro.tlb.tlb import TLB, FULLY_ASSOCIATIVE, TLBAccess

__all__ = [
    "FULLY_ASSOCIATIVE",
    "PageTable",
    "PrefetchBuffer",
    "RecencyStack",
    "TLB",
    "TLBAccess",
]
