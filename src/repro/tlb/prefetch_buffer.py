"""The prefetch buffer: a small LRU buffer probed alongside the TLB.

All mechanisms in the paper share this structure (Section 2): prefetched
page-table entries land here, the buffer is looked up concurrently with
the TLB, and an entry is *moved into the TLB* only when the application
actually references it. A prediction is counted as correct when a TLB
miss finds its translation in this buffer — that is the paper's
"prediction accuracy" metric.

Replacement is LRU over insertions; re-prefetching a page already
buffered refreshes its recency instead of duplicating it. Because an
entry leaves the buffer on its first hit, each buffered entry can
satisfy at most one miss.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError


class PrefetchBuffer:
    """Fixed-capacity LRU buffer of prefetched translations.

    Args:
        capacity: number of entries (the paper uses 16, with 32 and 64
            as sensitivity points).

    Statistics (all cumulative):
        hits: lookups that found their page (successful predictions).
        lookups: total lookups (equals TLB misses when driven by one).
        inserted: prefetches accepted into the buffer.
        refreshed: prefetches that found their page already buffered.
        evicted_unused: entries evicted before ever being referenced —
            the waste an over-aggressive prefetcher causes.
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"buffer capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.lookups = 0
        self.inserted = 0
        self.refreshed = 0
        self.evicted_unused = 0

    def lookup_remove(self, page: int) -> bool:
        """Probe for ``page``; on a hit, remove it (it moves to the TLB)."""
        self.lookups += 1
        if page in self._entries:
            del self._entries[page]
            self.hits += 1
            return True
        return False

    def insert(self, page: int) -> int | None:
        """Buffer a prefetched translation; return any evicted page.

        Inserting a page already present refreshes its LRU position
        (hardware would coalesce the duplicate prefetch).
        """
        if page in self._entries:
            self._entries.move_to_end(page)
            self.refreshed += 1
            return None
        evicted = None
        if len(self._entries) >= self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self.evicted_unused += 1
        self._entries[page] = None
        self.inserted += 1
        return evicted

    def __contains__(self, page: int) -> bool:
        return page in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def resident_pages(self) -> list[int]:
        """Buffered pages, LRU first."""
        return list(self._entries)

    def flush(self) -> int:
        """Drop all buffered entries (context switch); returns count."""
        dropped = len(self._entries)
        self.evicted_unused += dropped
        self._entries.clear()
        return dropped

    @property
    def hit_rate(self) -> float:
        """Hits per lookup — prediction accuracy when driven by misses."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __repr__(self) -> str:
        return (
            f"PrefetchBuffer(capacity={self.capacity}, resident={len(self)}, "
            f"hit_rate={self.hit_rate:.4f})"
        )
