"""A set-associative, true-LRU translation lookaside buffer.

The paper's evaluations use 64/128/256-entry TLBs that are 2-way,
4-way, or fully associative, with a 128-entry fully-associative TLB as
the representative configuration. LRU is exact (not pseudo-LRU): each
set keeps its entries in recency order.

Implementation note: each set is an :class:`collections.OrderedDict`
mapping page -> None. ``move_to_end`` and ``popitem(last=False)`` give
O(1) MRU promotion and LRU eviction with C-speed constants, which is
what keeps the TLB filter fast enough for multi-million-reference
traces.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Pass as ``ways`` to request a fully-associative TLB.
FULLY_ASSOCIATIVE = 0


@dataclass(frozen=True, slots=True)
class TLBAccess:
    """Outcome of a single TLB access.

    Attributes:
        hit: whether the page was already resident.
        evicted: page evicted to make room on a miss, or ``None`` if the
            access hit or a free entry was available.
    """

    hit: bool
    evicted: int | None = None


class TLB:
    """Set-associative TLB with exact LRU replacement.

    Args:
        entries: total number of entries (e.g. 64, 128, 256).
        ways: associativity; :data:`FULLY_ASSOCIATIVE` (0) makes the
            whole TLB one set.

    The TLB stores only page numbers: the simulation never needs real
    physical frames, and translation payloads would change no decision
    any studied mechanism makes.
    """

    def __init__(self, entries: int = 128, ways: int = FULLY_ASSOCIATIVE) -> None:
        if entries <= 0:
            raise ConfigurationError(f"TLB entries must be > 0, got {entries}")
        if ways < 0:
            raise ConfigurationError(f"ways must be >= 0, got {ways}")
        if ways == FULLY_ASSOCIATIVE:
            ways = entries
        if entries % ways:
            raise ConfigurationError(
                f"entries ({entries}) must be a multiple of ways ({ways})"
            )
        self.entries = entries
        self.ways = ways
        self.num_sets = entries // ways
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    @property
    def label(self) -> str:
        """Short configuration label, e.g. ``128e-FA`` or ``64e-2w``."""
        assoc = "FA" if self.ways == self.entries else f"{self.ways}w"
        return f"{self.entries}e-{assoc}"

    def set_index(self, page: int) -> int:
        """Return the set a page maps to."""
        return page % self.num_sets

    def probe(self, page: int) -> bool:
        """Look up ``page`` without filling; promotes to MRU on a hit."""
        tlb_set = self._sets[page % self.num_sets]
        if page in tlb_set:
            tlb_set.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, page: int) -> int | None:
        """Insert ``page`` (assumed absent), returning any evicted page."""
        tlb_set = self._sets[page % self.num_sets]
        evicted = None
        if len(tlb_set) >= self.ways:
            evicted, _ = tlb_set.popitem(last=False)
        tlb_set[page] = None
        return evicted

    def access(self, page: int) -> TLBAccess:
        """Combined probe-and-fill: the common demand-access path.

        On a hit the entry is promoted to MRU; on a miss the page is
        filled (as either a demand fetch or a prefetch-buffer promotion
        would do — both fill identically, which is why the miss stream
        is prefetcher-invariant).
        """
        if self.probe(page):
            return TLBAccess(hit=True)
        return TLBAccess(hit=False, evicted=self.fill(page))

    def __contains__(self, page: int) -> bool:
        """Non-mutating residency check (no LRU update, no stats)."""
        return page in self._sets[page % self.num_sets]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_pages(self) -> list[int]:
        """All resident pages, set by set, LRU -> MRU within each set."""
        pages: list[int] = []
        for tlb_set in self._sets:
            pages.extend(tlb_set)
        return pages

    def flush(self) -> int:
        """Invalidate everything (context switch); returns entries dropped."""
        dropped = len(self)
        for tlb_set in self._sets:
            tlb_set.clear()
        return dropped

    @property
    def miss_rate(self) -> float:
        """Misses per access so far."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters without touching contents."""
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return f"TLB({self.label}, resident={len(self)}, miss_rate={self.miss_rate:.4f})"
