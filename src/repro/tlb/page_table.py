"""Page table substrate, including Recency Prefetching's stack fields.

Recency Prefetching (Saulsbury et al. [26], paper Section 2.4) stores
its prediction state *in the page table itself*: every PTE carries two
extra fields, ``next`` and ``prev``, that thread evicted TLB entries
into a doubly-linked LRU ("recency") stack. On a TLB miss the missed
entry is unlinked from the stack, the newly evicted TLB entry is pushed
on top, and the pages the missed entry pointed at are prefetched.

Because these pointers live in memory, every manipulation is a memory
system operation; :class:`RecencyStack` counts them so the cycle model
can charge RP the 4 pointer operations per miss the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class PageTableEntry:
    """A PTE with the recency-stack linkage RP adds.

    Attributes:
        page: virtual page number this PTE translates.
        next: page linked below this one on the recency stack (evicted
            just before it), or ``None``.
        prev: page linked above this one (evicted just after it), or
            ``None``.
        on_stack: whether the PTE is currently threaded on the stack.
    """

    page: int
    next: int | None = None
    prev: int | None = None
    on_stack: bool = False


class PageTable:
    """A demand-populated page table: one PTE per referenced page.

    Real systems index a multi-level radix tree; a dict is sufficient
    here because only the RP linkage fields influence any studied
    mechanism. The population count stands in for RP's storage overhead
    (two pointers per PTE), reported by :meth:`rp_storage_entries`.
    """

    def __init__(self) -> None:
        self._entries: dict[int, PageTableEntry] = {}

    def entry(self, page: int) -> PageTableEntry:
        """Return the PTE for ``page``, creating it on first touch."""
        pte = self._entries.get(page)
        if pte is None:
            pte = PageTableEntry(page)
            self._entries[page] = pte
        return pte

    def __contains__(self, page: int) -> bool:
        return page in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def rp_storage_entries(self) -> int:
        """PTEs carrying RP pointer fields (RP's memory-side footprint)."""
        return len(self._entries)


class RecencyStack:
    """RP's doubly-linked LRU stack threaded through the page table.

    Operations mirror the paper's description and count the memory
    writes they would perform:

    - :meth:`remove` — unlink an entry from the middle of the stack
      (2 pointer writes).
    - :meth:`push_top` — push an evicted TLB entry on top
      (2 pointer writes).
    - :meth:`neighbors` — the prev/next pages of an entry, i.e. the
      pages RP prefetches on a miss (reads, counted separately as
      prefetch fetches by the prefetcher).
    """

    def __init__(self, page_table: PageTable) -> None:
        self._table = page_table
        self._top: int | None = None
        self.pointer_writes = 0

    @property
    def top(self) -> int | None:
        """Page currently on top of the stack (most recently evicted)."""
        return self._top

    def neighbors(self, page: int) -> tuple[int | None, int | None]:
        """Return ``(prev, next)`` stack neighbours of ``page``.

        Returns ``(None, None)`` if the page is not on the stack (e.g.
        its first-ever miss).
        """
        pte = self._table.entry(page)
        if not pte.on_stack:
            return (None, None)
        return (pte.prev, pte.next)

    def remove(self, page: int) -> bool:
        """Unlink ``page`` from the stack; True if it was threaded.

        Costs 2 pointer writes when the entry was on the stack (the
        paper's "taking 2 references").
        """
        pte = self._table.entry(page)
        if not pte.on_stack:
            return False
        if pte.prev is not None:
            self._table.entry(pte.prev).next = pte.next
        else:
            self._top = pte.next
        if pte.next is not None:
            self._table.entry(pte.next).prev = pte.prev
        self.pointer_writes += 2
        pte.prev = None
        pte.next = None
        pte.on_stack = False
        return True

    def push_top(self, page: int) -> None:
        """Push ``page`` (a just-evicted TLB entry) onto the stack top.

        Costs 2 pointer writes (the paper's "taking 2 references"). If
        the page is already threaded it is first unlinked, matching the
        behaviour of re-evicting a page that was prefetched but never
        referenced.
        """
        pte = self._table.entry(page)
        if pte.on_stack:
            self.remove(page)
        pte.next = self._top
        pte.prev = None
        pte.on_stack = True
        if self._top is not None:
            self._table.entry(self._top).prev = page
        self._top = page
        self.pointer_writes += 2

    def __contains__(self, page: int) -> bool:
        return page in self._table and self._table.entry(page).on_stack

    def walk(self, limit: int | None = None) -> list[int]:
        """Pages from top downward (for tests/debugging); optional limit."""
        pages: list[int] = []
        cursor = self._top
        while cursor is not None and (limit is None or len(pages) < limit):
            pages.append(cursor)
            cursor = self._table.entry(cursor).next
        return pages

    def __len__(self) -> int:
        return len(self.walk())
