"""The full address-translation pipeline of the paper's Figure 1.

``MMU`` wires together a TLB, a prefetch buffer and one prefetch
mechanism and exposes per-reference translation. The exact event order
per reference:

1. Probe the TLB. A hit ends the access.
2. On a TLB miss, probe the prefetch buffer. A hit there removes the
   entry from the buffer (it "moves over to the TLB") and counts as a
   correct prediction; a miss is a demand page-table fetch.
3. Either way, the page fills the TLB (possibly evicting the LRU
   entry) — which is why TLB contents, and hence the miss stream, are
   independent of the prefetch mechanism.
4. The mechanism observes the miss and may request prefetches, which
   are inserted into the buffer.

This is the single authoritative implementation of the pipeline; the
functional simulator drives it run by run, and the two-phase fast path
is property-tested against it.
"""

from __future__ import annotations

import enum

from repro.prefetch.base import NO_EVICTION, Prefetcher
from repro.tlb.prefetch_buffer import PrefetchBuffer
from repro.tlb.tlb import TLB


class TranslationOutcome(enum.IntEnum):
    """How a single reference was translated."""

    TLB_HIT = 0
    BUFFER_HIT = 1
    DEMAND_MISS = 2


class MMU:
    """TLB + prefetch buffer + prefetch mechanism (paper Figure 1).

    Args:
        tlb: the TLB instance.
        buffer: the prefetch buffer probed in parallel with the TLB.
        prefetcher: the mechanism observing the miss stream.
        max_prefetches_per_miss: clamp on prefetches accepted per miss
            (0 = whatever the mechanism returns).

    Statistics:
        references: references translated.
        tlb_misses: references that missed the TLB.
        buffer_hits: TLB misses satisfied by the prefetch buffer.
    """

    def __init__(
        self,
        tlb: TLB,
        buffer: PrefetchBuffer,
        prefetcher: Prefetcher,
        max_prefetches_per_miss: int = 0,
    ) -> None:
        self.tlb = tlb
        self.buffer = buffer
        self.prefetcher = prefetcher
        self.max_prefetches_per_miss = max_prefetches_per_miss
        self.references = 0
        self.tlb_misses = 0
        self.buffer_hits = 0

    def translate(self, pc: int, page: int) -> TranslationOutcome:
        """Translate one reference, driving the full pipeline."""
        self.references += 1
        if self.tlb.probe(page):
            return TranslationOutcome.TLB_HIT
        self.tlb_misses += 1

        pb_hit = self.buffer.lookup_remove(page)
        if pb_hit:
            self.buffer_hits += 1
        evicted = self.tlb.fill(page)

        prefetches = self.prefetcher.on_miss(
            pc, page, evicted if evicted is not None else NO_EVICTION, pb_hit
        )
        if self.max_prefetches_per_miss and len(prefetches) > self.max_prefetches_per_miss:
            prefetches = prefetches[: self.max_prefetches_per_miss]
        for target in prefetches:
            self.buffer.insert(target)
        return TranslationOutcome.BUFFER_HIT if pb_hit else TranslationOutcome.DEMAND_MISS

    def translate_run(self, pc: int, page: int, count: int) -> TranslationOutcome:
        """Translate ``count`` consecutive references to one page.

        Only the first reference can miss (the page is MRU afterwards),
        so the remainder are accounted as hits without re-probing —
        the run-length-encoding contract of the trace format.
        """
        outcome = self.translate(pc, page)
        if count > 1:
            self.references += count - 1
            self.tlb.hits += count - 1
        return outcome

    def flush_for_context_switch(self, flush_prediction_state: bool = True) -> None:
        """Invalidate TLB and buffer (and optionally prediction tables).

        Models a process switch in the multiprogrammed study: address
        spaces are distinct, so translations cannot be reused; whether
        the on-chip *prediction* tables are flushed is the policy knob
        the paper's Section 4 raises.
        """
        self.tlb.flush()
        self.buffer.flush()
        if flush_prediction_state:
            self.prefetcher.flush()

    @property
    def prediction_accuracy(self) -> float:
        """Buffer hits per TLB miss so far."""
        return self.buffer_hits / self.tlb_misses if self.tlb_misses else 0.0

    def __repr__(self) -> str:
        return (
            f"MMU(tlb={self.tlb.label}, buffer={self.buffer.capacity}, "
            f"mechanism={self.prefetcher.label}, accuracy={self.prediction_accuracy:.4f})"
        )
