"""Memory substrate: address arithmetic and reference/miss traces.

This subpackage provides everything "below" the TLB:

- :mod:`repro.mem.address` — page-size math and virtual-address helpers.
- :mod:`repro.mem.reference` — the run-length-encoded reference unit.
- :mod:`repro.mem.trace` — containers for reference traces and the
  TLB miss traces consumed by the prefetch engines.
"""

from repro.mem.address import (
    DEFAULT_PAGE_SHIFT,
    DEFAULT_PAGE_SIZE,
    AddressSpace,
    page_of,
    page_shift_for_size,
    rescale_page,
)
from repro.mem.reference import ReferenceRun
from repro.mem.trace import MissTrace, ReferenceTrace
from repro.mem.trace_io import (
    load_miss_trace,
    load_reference_trace,
    save_miss_trace,
    save_reference_trace,
)

__all__ = [
    "DEFAULT_PAGE_SHIFT",
    "DEFAULT_PAGE_SIZE",
    "AddressSpace",
    "MissTrace",
    "ReferenceRun",
    "ReferenceTrace",
    "load_miss_trace",
    "load_reference_trace",
    "page_of",
    "page_shift_for_size",
    "rescale_page",
    "save_miss_trace",
    "save_reference_trace",
]
