"""Persistence for reference and miss traces (NumPy ``.npz`` format).

Two uses:

- **Bring your own trace.** The synthetic workload models stand in for
  the paper's SimpleScalar traces, but nothing in the simulators cares
  where a trace came from: convert any page-level reference stream
  (e.g. from a Valgrind/Pin/QEMU plugin) into the RLE ``.npz`` layout
  and every mechanism, sweep and figure harness runs on it unchanged —
  see ``repro-tlb run --trace-file``.
- **Cache expensive intermediates.** Miss traces embed the TLB
  configuration that produced them, so a saved filter result can be
  replayed later without re-filtering.

The format is versioned; loading rejects unknown versions rather than
guessing.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.mem.trace import MissTrace, ReferenceTrace

_FORMAT_VERSION = 1
_REFERENCE_KIND = "reference-trace"
_MISS_KIND = "miss-trace"


def save_reference_trace(trace: ReferenceTrace, path: str | Path) -> Path:
    """Write a reference trace to ``path`` (``.npz``); returns the path."""
    path = Path(path)
    np.savez_compressed(
        path,
        kind=np.array(_REFERENCE_KIND),
        version=np.array(_FORMAT_VERSION),
        name=np.array(trace.name),
        pcs=trace.pcs,
        pages=trace.pages,
        counts=trace.counts,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_reference_trace(path: str | Path) -> ReferenceTrace:
    """Read a reference trace written by :func:`save_reference_trace`."""
    with np.load(Path(path), allow_pickle=False) as data:
        _check_header(data, _REFERENCE_KIND, path)
        return ReferenceTrace(
            data["pcs"], data["pages"], data["counts"], name=str(data["name"])
        )


def save_miss_trace(miss_trace: MissTrace, path: str | Path) -> Path:
    """Write a miss trace (with its TLB provenance) to ``path``."""
    path = Path(path)
    np.savez_compressed(
        path,
        kind=np.array(_MISS_KIND),
        version=np.array(_FORMAT_VERSION),
        name=np.array(miss_trace.name),
        tlb_label=np.array(miss_trace.tlb_label),
        pcs=miss_trace.pcs,
        pages=miss_trace.pages,
        evicted=miss_trace.evicted,
        ref_index=miss_trace.ref_index,
        total_references=np.array(miss_trace.total_references),
        warmup_misses=np.array(miss_trace.warmup_misses),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_miss_trace(path: str | Path) -> MissTrace:
    """Read a miss trace written by :func:`save_miss_trace`."""
    with np.load(Path(path), allow_pickle=False) as data:
        _check_header(data, _MISS_KIND, path)
        return MissTrace(
            pcs=data["pcs"],
            pages=data["pages"],
            evicted=data["evicted"],
            ref_index=data["ref_index"],
            total_references=int(data["total_references"]),
            warmup_misses=int(data["warmup_misses"]),
            name=str(data["name"]),
            tlb_label=str(data["tlb_label"]),
        )


def _check_header(data: np.lib.npyio.NpzFile, expected_kind: str, path: str | Path) -> None:
    try:
        kind = str(data["kind"])
        version = int(data["version"])
    except KeyError as exc:
        raise TraceError(f"{path}: not a repro trace file (missing {exc})") from exc
    if kind != expected_kind:
        raise TraceError(f"{path}: expected a {expected_kind}, found {kind}")
    if version != _FORMAT_VERSION:
        raise TraceError(
            f"{path}: unsupported trace format version {version} "
            f"(this library reads version {_FORMAT_VERSION})"
        )
