"""Virtual-address and page arithmetic.

The paper simulates a 4096-byte page by default and studies larger page
sizes as a sensitivity axis (Section 3.3 / TR [19]).  All traces in this
reproduction are generated at 4 KiB-page granularity; larger ("super")
page sizes are derived by right-shifting the 4 KiB page number, which is
exact for translation purposes because every 2^k-aligned group of 4 KiB
pages maps to one larger page.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

DEFAULT_PAGE_SIZE = 4096
DEFAULT_PAGE_SHIFT = 12


def page_shift_for_size(page_size: int) -> int:
    """Return ``log2(page_size)``, validating that it is a power of two.

    >>> page_shift_for_size(4096)
    12
    """
    if page_size <= 0 or page_size & (page_size - 1):
        raise ConfigurationError(f"page size must be a power of two, got {page_size}")
    return page_size.bit_length() - 1


def page_of(address: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Return the virtual page number containing byte ``address``."""
    return address >> page_shift_for_size(page_size)


def rescale_page(page4k: int, page_size: int) -> int:
    """Map a 4 KiB page number onto the page number for ``page_size``.

    ``page_size`` must be >= 4 KiB; traces are generated at 4 KiB
    granularity, so smaller pages cannot be derived.
    """
    shift = page_shift_for_size(page_size)
    if shift < DEFAULT_PAGE_SHIFT:
        raise ConfigurationError(
            f"page size {page_size} is below the 4 KiB trace granularity"
        )
    return page4k >> (shift - DEFAULT_PAGE_SHIFT)


@dataclass(frozen=True, slots=True)
class AddressSpace:
    """A named, contiguous region of virtual pages used by workload models.

    Workload generators carve an application's footprint into regions
    (heap arrays, stacks, code constants...) so that different pattern
    phases touch disjoint pages, the way distinct data structures do in
    the original benchmarks.

    Attributes:
        base_page: first 4 KiB virtual page number of the region.
        num_pages: number of 4 KiB pages in the region.
    """

    base_page: int
    num_pages: int

    def __post_init__(self) -> None:
        if self.base_page < 0:
            raise ConfigurationError(f"base_page must be >= 0, got {self.base_page}")
        if self.num_pages <= 0:
            raise ConfigurationError(f"num_pages must be > 0, got {self.num_pages}")

    @property
    def end_page(self) -> int:
        """One past the last page of the region."""
        return self.base_page + self.num_pages

    def page(self, index: int) -> int:
        """Return the ``index``-th page of the region (supports negatives)."""
        if index < 0:
            index += self.num_pages
        if not 0 <= index < self.num_pages:
            raise IndexError(f"page index {index} outside region of {self.num_pages}")
        return self.base_page + index

    def contains(self, page: int) -> bool:
        """True if ``page`` lies inside this region."""
        return self.base_page <= page < self.end_page

    def split(self, *fractions: float) -> list["AddressSpace"]:
        """Split the region into consecutive sub-regions by fractions.

        The fractions must sum to <= 1.0; any remainder is appended as a
        final region. Useful for carving an app footprint into per-array
        regions.
        """
        if any(f <= 0 for f in fractions):
            raise ConfigurationError("fractions must be positive")
        if sum(fractions) > 1.0 + 1e-9:
            raise ConfigurationError("fractions must sum to at most 1.0")
        regions: list[AddressSpace] = []
        cursor = self.base_page
        for fraction in fractions:
            size = max(1, int(self.num_pages * fraction))
            size = min(size, self.end_page - cursor)
            regions.append(AddressSpace(cursor, size))
            cursor += size
        if cursor < self.end_page:
            regions.append(AddressSpace(cursor, self.end_page - cursor))
        return regions
