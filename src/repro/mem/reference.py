"""The run-length-encoded memory reference unit.

Traces are stored as runs rather than individual references. A run
``(pc, page, count)`` means: the instruction at ``pc`` (and its
neighbours) issued ``count`` consecutive data references that all fall
in virtual page ``page``.

Run-length encoding is *exact* for TLB simulation with LRU replacement:
after the first access of a run the page is the most-recently-used entry
of its set, so the remaining ``count - 1`` accesses hit and do not
change the replacement state. The TLB filter therefore performs one
lookup per run while accounting ``count`` references, which is what
makes simulating multi-million-reference workloads tractable in Python
(the paper simulates one billion instructions per SPEC app; see
DESIGN.md section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceError


@dataclass(frozen=True, slots=True)
class ReferenceRun:
    """``count`` back-to-back references from ``pc`` to virtual ``page``.

    Attributes:
        pc: synthetic program-counter value of the referencing
            instruction. ASP indexes its prediction table by this.
        page: 4 KiB virtual page number referenced.
        count: number of consecutive references in the run (>= 1).
    """

    pc: int
    page: int
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise TraceError(f"run count must be >= 1, got {self.count}")
        if self.page < 0:
            raise TraceError(f"page must be >= 0, got {self.page}")
        if self.pc < 0:
            raise TraceError(f"pc must be >= 0, got {self.pc}")
