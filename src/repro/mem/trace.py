"""Trace containers: reference traces and TLB miss traces.

Two containers flow through the simulators:

- :class:`ReferenceTrace` — the page-granular, run-length-encoded
  reference stream a workload model produces (the analogue of a
  SimpleScalar/Shade address trace).
- :class:`MissTrace` — the stream of TLB misses the TLB filter produces,
  which is the *only* input the prefetch engines see (the paper places
  all prefetch logic after the TLB).

Both are backed by parallel :mod:`numpy` arrays for compactness, with
list-based iteration helpers for the hot simulation loops.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError
from repro.mem.reference import ReferenceRun

#: Sentinel used in :attr:`MissTrace.evicted` when a miss evicted nothing
#: (the TLB still had free entries).
NO_EVICTION = -1


class ReferenceTrace:
    """An immutable, run-length-encoded page reference stream.

    Attributes:
        pcs: int64 array of per-run program counters.
        pages: int64 array of per-run virtual page numbers.
        counts: int64 array of per-run reference counts (all >= 1).
        name: human-readable workload identifier (used in reports).
    """

    __slots__ = ("pcs", "pages", "counts", "name", "_total", "_content_key")

    def __init__(
        self,
        pcs: Iterable[int],
        pages: Iterable[int],
        counts: Iterable[int],
        name: str = "",
    ) -> None:
        self.pcs = np.asarray(list(pcs) if not isinstance(pcs, np.ndarray) else pcs, dtype=np.int64)
        self.pages = np.asarray(
            list(pages) if not isinstance(pages, np.ndarray) else pages, dtype=np.int64
        )
        self.counts = np.asarray(
            list(counts) if not isinstance(counts, np.ndarray) else counts, dtype=np.int64
        )
        if not (len(self.pcs) == len(self.pages) == len(self.counts)):
            raise TraceError(
                "pcs, pages and counts must have equal length "
                f"({len(self.pcs)}, {len(self.pages)}, {len(self.counts)})"
            )
        if len(self.counts) and int(self.counts.min()) < 1:
            raise TraceError("all run counts must be >= 1")
        self.name = name
        self._total = int(self.counts.sum()) if len(self.counts) else 0
        self._content_key: str | None = None

    @classmethod
    def from_runs(cls, runs: Iterable[ReferenceRun], name: str = "") -> "ReferenceTrace":
        """Build a trace from :class:`ReferenceRun` objects."""
        pcs: list[int] = []
        pages: list[int] = []
        counts: list[int] = []
        for run in runs:
            pcs.append(run.pc)
            pages.append(run.page)
            counts.append(run.count)
        return cls(pcs, pages, counts, name=name)

    @property
    def num_runs(self) -> int:
        """Number of RLE runs in the trace."""
        return len(self.pages)

    @property
    def total_references(self) -> int:
        """Total memory references represented (sum of run counts)."""
        return self._total

    @property
    def footprint_pages(self) -> int:
        """Number of distinct pages touched."""
        return int(len(np.unique(self.pages))) if len(self.pages) else 0

    def __len__(self) -> int:
        return self.num_runs

    def __iter__(self) -> Iterator[ReferenceRun]:
        for pc, page, count in zip(
            self.pcs.tolist(), self.pages.tolist(), self.counts.tolist()
        ):
            yield ReferenceRun(pc, page, count)

    def as_lists(self) -> tuple[list[int], list[int], list[int]]:
        """Return ``(pcs, pages, counts)`` as plain lists for hot loops."""
        return self.pcs.tolist(), self.pages.tolist(), self.counts.tolist()

    def content_key(self) -> str:
        """Stable digest of the trace contents (name excluded).

        Two traces with identical run data share a key regardless of how
        they were built, which lets ad-hoc traces participate in the
        process-wide miss-stream cache without identity tricks. The
        digest is computed once and memoized (traces are immutable).
        """
        if self._content_key is None:
            digest = hashlib.sha256()
            for array in (self.pcs, self.pages, self.counts):
                digest.update(np.ascontiguousarray(array).tobytes())
            self._content_key = digest.hexdigest()[:24]
        return self._content_key

    def concatenated_with(self, other: "ReferenceTrace", name: str = "") -> "ReferenceTrace":
        """Return a new trace that plays this trace, then ``other``."""
        return ReferenceTrace(
            np.concatenate([self.pcs, other.pcs]),
            np.concatenate([self.pages, other.pages]),
            np.concatenate([self.counts, other.counts]),
            name=name or f"{self.name}+{other.name}",
        )

    def __repr__(self) -> str:
        return (
            f"ReferenceTrace(name={self.name!r}, runs={self.num_runs}, "
            f"references={self.total_references}, footprint={self.footprint_pages}p)"
        )


@dataclass(frozen=True)
class MissTrace:
    """The TLB miss stream: one record per TLB miss, in order.

    This is the complete interface between the TLB and every prefetch
    mechanism (all of which sit after the TLB, per the paper's Figure 1).

    Attributes:
        pcs: PC of the instruction whose reference missed.
        pages: virtual page number that missed.
        evicted: page evicted from the TLB by this fill, or
            :data:`NO_EVICTION`. RP pushes this page onto its recency
            stack.
        ref_index: 0-based global reference number at which the miss
            occurred (used by the cycle-timing model to space misses).
        total_references: total references the TLB observed, including
            hits; the denominator of the TLB miss rate.
        warmup_misses: number of leading misses that fall inside the
            warm-up window and are excluded from accuracy accounting.
        name: workload identifier.
        tlb_label: short description of the filtering TLB configuration.
    """

    pcs: np.ndarray
    pages: np.ndarray
    evicted: np.ndarray
    ref_index: np.ndarray
    total_references: int
    warmup_misses: int = 0
    name: str = ""
    tlb_label: str = ""
    _lists: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        lengths = {len(self.pcs), len(self.pages), len(self.evicted), len(self.ref_index)}
        if len(lengths) != 1:
            raise TraceError(f"miss trace arrays must have equal length, got {lengths}")
        if not 0 <= self.warmup_misses <= len(self.pages):
            raise TraceError(
                f"warmup_misses {self.warmup_misses} outside [0, {len(self.pages)}]"
            )

    @property
    def num_misses(self) -> int:
        """Total number of TLB misses (including warm-up misses)."""
        return len(self.pages)

    @property
    def measured_misses(self) -> int:
        """Misses counted toward prediction accuracy (post warm-up)."""
        return self.num_misses - self.warmup_misses

    @property
    def miss_rate(self) -> float:
        """TLB misses per reference (the paper's ``m_i``)."""
        if self.total_references == 0:
            return 0.0
        return self.num_misses / self.total_references

    def as_lists(self) -> tuple[list[int], list[int], list[int], list[int]]:
        """Return ``(pcs, pages, evicted, ref_index)`` lists, memoized."""
        if not self._lists:
            self._lists["value"] = (
                self.pcs.tolist(),
                self.pages.tolist(),
                self.evicted.tolist(),
                self.ref_index.tolist(),
            )
        return self._lists["value"]

    def __len__(self) -> int:
        return self.num_misses

    def __repr__(self) -> str:
        return (
            f"MissTrace(name={self.name!r}, tlb={self.tlb_label!r}, "
            f"misses={self.num_misses}, refs={self.total_references}, "
            f"miss_rate={self.miss_rate:.4f})"
        )
