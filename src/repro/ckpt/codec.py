"""Deterministic binary codec for ``repro.ckpt/v1`` snapshot blobs.

Every snapshot serializes through one recursive value encoder with a
fixed, documented byte layout, so that *identical logical state always
produces identical bytes* — the property the content-addressed
checkpoint store and the ``(spec_key, stream_offset, state_digest)``
continuation keys both depend on.

Blob layout::

    magic     b"RCKP"                 (4 bytes)
    schema    str                     ("repro.ckpt/v1")
    kind      str                     (snapshot registry kind)
    body      length-prefixed bytes   (encoded payload value)
    digest    8 bytes                 (sha256(magic..body) prefix)

Value encoding is a single-byte tag followed by the payload:

==== ======================================================
tag  payload
==== ======================================================
``N``  None — no payload
``F``  False / ``T``  True — no payload
``i``  zigzag varint integer (arbitrary precision)
``d``  IEEE-754 double, big-endian (8 bytes)
``s``  varint byte length + UTF-8 bytes
``b``  varint byte length + raw bytes
``l``  varint element count + encoded elements
``m``  varint pair count + encoded key/value pairs, in
       insertion order (callers must present canonical order)
==== ======================================================

Varints are LEB128 (7 bits per byte, little-endian groups); signed
integers are zigzag-mapped first so small negatives stay small. There
is no float-vs-int ambiguity: the tag is part of the value, so ``1``
and ``1.0`` encode differently and round-trip exactly.

Any structural problem — bad magic, unknown schema, truncation, a
digest mismatch, or trailing garbage after the blob — raises
:class:`~repro.errors.CkptError` naming the failing stage.
"""

from __future__ import annotations

import hashlib
import struct

from ..errors import CkptError

#: Schema tag embedded in (and demanded from) every blob.
CKPT_SCHEMA = "repro.ckpt/v1"

_MAGIC = b"RCKP"
_DIGEST_BYTES = 8

_Value = None | bool | int | float | str | bytes | list | dict


def _encode_varint(value: int, out: bytearray) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _encode_value(value: _Value, out: bytearray) -> None:
    # bool before int: bool is an int subclass.
    if value is None:
        out.append(ord("N"))
    elif value is True:
        out.append(ord("T"))
    elif value is False:
        out.append(ord("F"))
    elif isinstance(value, int):
        out.append(ord("i"))
        # Arbitrary-precision zigzag: packed DP-PC keys exceed 64 bits.
        zigzag = (value << 1) if value >= 0 else ((-value << 1) - 1)
        _encode_varint(zigzag, out)
    elif isinstance(value, float):
        out.append(ord("d"))
        out += struct.pack(">d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(ord("s"))
        _encode_varint(len(raw), out)
        out += raw
    elif isinstance(value, bytes):
        out.append(ord("b"))
        _encode_varint(len(value), out)
        out += value
    elif isinstance(value, (list, tuple)):
        out.append(ord("l"))
        _encode_varint(len(value), out)
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, dict):
        out.append(ord("m"))
        _encode_varint(len(value), out)
        for key, item in value.items():
            _encode_value(key, out)
            _encode_value(item, out)
    else:
        raise CkptError(f"cannot encode value of type {type(value).__name__}")


class _Reader:
    """Cursor over a blob body; every read checks for truncation."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self.data = data
        self.offset = offset

    def take(self, count: int) -> bytes:
        end = self.offset + count
        if end > len(self.data):
            raise CkptError(
                f"truncated blob: wanted {count} bytes at offset "
                f"{self.offset}, only {len(self.data) - self.offset} left"
            )
        chunk = self.data[self.offset : end]
        self.offset = end
        return chunk

    def varint(self) -> int:
        result = 0
        shift = 0
        while True:
            byte = self.take(1)[0]
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 640:
                raise CkptError("corrupt blob: varint longer than 640 bits")

    def value(self) -> _Value:
        tag = self.take(1)
        if tag == b"N":
            return None
        if tag == b"T":
            return True
        if tag == b"F":
            return False
        if tag == b"i":
            zigzag = self.varint()
            return (zigzag >> 1) ^ -(zigzag & 1)
        if tag == b"d":
            return struct.unpack(">d", self.take(8))[0]
        if tag == b"s":
            raw = self.take(self.varint())
            try:
                return raw.decode("utf-8")
            except UnicodeDecodeError as error:
                raise CkptError(f"corrupt blob: bad UTF-8 string: {error}") from error
        if tag == b"b":
            return self.take(self.varint())
        if tag == b"l":
            return [self.value() for _ in range(self.varint())]
        if tag == b"m":
            pairs = self.varint()
            result: dict = {}
            for _ in range(pairs):
                key = self.value()
                result[key] = self.value()
            return result
        raise CkptError(f"corrupt blob: unknown value tag {tag!r}")


def encode_blob(kind: str, payload: _Value) -> bytes:
    """Serialize ``payload`` as a self-describing ``repro.ckpt/v1`` blob."""
    out = bytearray(_MAGIC)
    _encode_value(CKPT_SCHEMA, out)
    _encode_value(kind, out)
    body = bytearray()
    _encode_value(payload, body)
    _encode_varint(len(body), out)
    out += body
    out += hashlib.sha256(bytes(out)).digest()[:_DIGEST_BYTES]
    return bytes(out)


def decode_blob(blob: bytes, expect_kind: str | None = None) -> tuple[str, _Value]:
    """Parse a blob back into ``(kind, payload)``, verifying integrity.

    Checks, in order: magic bytes, schema tag, body length, the sha256
    digest trailer, and that nothing follows the trailer. Passing
    ``expect_kind`` additionally demands the embedded kind match.
    """
    reader = _Reader(blob)
    if reader.take(4) != _MAGIC:
        raise CkptError("bad magic: not a repro.ckpt blob")
    schema = reader.value()
    if schema != CKPT_SCHEMA:
        raise CkptError(f"unsupported checkpoint schema {schema!r} (want {CKPT_SCHEMA!r})")
    kind = reader.value()
    if not isinstance(kind, str):
        raise CkptError("corrupt blob: kind is not a string")
    body_len = reader.varint()
    body_start = reader.offset
    body = reader.take(body_len)
    digest_start = reader.offset
    trailer = reader.take(_DIGEST_BYTES)
    expected = hashlib.sha256(blob[:digest_start]).digest()[:_DIGEST_BYTES]
    if trailer != expected:
        raise CkptError("corrupt blob: digest mismatch (bytes were altered)")
    if reader.offset != len(blob):
        raise CkptError(
            f"corrupt blob: {len(blob) - reader.offset} trailing bytes after digest"
        )
    payload_reader = _Reader(blob, body_start)
    payload = payload_reader.value()
    if payload_reader.offset != digest_start:
        raise CkptError("corrupt blob: body length does not match payload")
    if expect_kind is not None and kind != expect_kind:
        raise CkptError(f"kind mismatch: blob holds {kind!r}, expected {expect_kind!r}")
    return kind, payload


def blob_digest(blob: bytes) -> str:
    """Content digest of a blob — the checkpoint store's address.

    sha256 over the full blob, truncated to 24 hex characters to match
    the store's stream-digest convention. Identical logical state
    encodes to identical bytes, so equal digests ⇔ equal state.
    """
    return hashlib.sha256(blob).hexdigest()[:24]
