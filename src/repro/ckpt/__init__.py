"""Versioned, deterministic checkpointing of all mechanism state.

The paper's prefetchers are stateful learners — prediction tables,
recency stacks, TLB and prefetch-buffer contents. This package frees
that state from process memory:

- :mod:`~repro.ckpt.codec` — the ``repro.ckpt/v1`` binary format:
  schema-tagged, digest-trailed, deterministic (identical state ⇒
  identical bytes ⇒ identical digest).
- :mod:`~repro.ckpt.snapshots` — ``StateSnapshot`` dataclasses with
  ``to_bytes()/from_bytes()`` for every prefetcher family plus the
  shared :class:`~repro.core.prediction_table.PredictionTable`,
  :class:`~repro.tlb.tlb.TLB` and
  :class:`~repro.tlb.prefetch_buffer.PrefetchBuffer` substrates.
- :mod:`~repro.ckpt.session` — :class:`ReplaySession`, phase-2 replay
  that can pause after any miss and resume bit-identically.
- :mod:`~repro.ckpt.manager` — :class:`CheckpointManager`, persisting
  snapshots content-addressed in the
  :class:`~repro.store.ExperimentStore` (``ckpt/<digest>.bin``) with
  resume bookmarks for :class:`~repro.run.runner.Runner` continuations
  and service streaming sessions.

The same canonical snapshots also let the fast replay engine
(:mod:`repro.sim.fastpath`) accept *warm-started* instances: it seeds
its flat-array tables from a snapshot and writes the final state back,
so ``engine="auto"`` no longer falls back to the reference engine for
trained mechanisms.
"""

from repro.ckpt.codec import CKPT_SCHEMA, blob_digest, decode_blob, encode_blob
from repro.ckpt.manager import CheckpointManager
from repro.ckpt.session import ReplaySession, SessionSnapshot
from repro.ckpt.snapshots import (
    SNAPSHOT_KINDS,
    AdaptiveSequentialSnapshot,
    BufferSnapshot,
    DistancePairSnapshot,
    DistanceSnapshot,
    MarkovSnapshot,
    MechanismSnapshot,
    NullSnapshot,
    PCDistanceSnapshot,
    RecencySnapshot,
    SequentialSnapshot,
    StateSnapshot,
    StrideSnapshot,
    TableSnapshot,
    TLBSnapshot,
    restore_buffer,
    restore_prefetcher,
    restore_table,
    restore_tlb,
    snapshot_buffer,
    snapshot_prefetcher,
    snapshot_table,
    snapshot_tlb,
)

__all__ = [
    "AdaptiveSequentialSnapshot",
    "BufferSnapshot",
    "CKPT_SCHEMA",
    "CheckpointManager",
    "DistancePairSnapshot",
    "DistanceSnapshot",
    "MarkovSnapshot",
    "MechanismSnapshot",
    "NullSnapshot",
    "PCDistanceSnapshot",
    "RecencySnapshot",
    "ReplaySession",
    "SequentialSnapshot",
    "SessionSnapshot",
    "SNAPSHOT_KINDS",
    "StateSnapshot",
    "StrideSnapshot",
    "TLBSnapshot",
    "TableSnapshot",
    "blob_digest",
    "decode_blob",
    "encode_blob",
    "restore_buffer",
    "restore_prefetcher",
    "restore_table",
    "restore_tlb",
    "snapshot_buffer",
    "snapshot_prefetcher",
    "snapshot_table",
    "snapshot_tlb",
]
