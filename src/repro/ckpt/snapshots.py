"""``StateSnapshot`` dataclasses for every piece of mechanism state.

A snapshot is a frozen-in-amber copy of one simulation structure —
prediction table, TLB, prefetch buffer, or a whole prefetcher — as
plain codec values (ints, floats, strings, lists), serialized through
:mod:`repro.ckpt.codec` with stable field ordering so that *identical
logical state always yields an identical digest*. That invariant is
load-bearing: checkpoints are content-addressed by digest, and resume
continuations are keyed by ``(spec_key, stream_offset, state_digest)``,
so the reference engine and the fast engine must agree byte-for-byte on
the snapshot of any state they both can reach.

Two canonicalization rules make cross-engine agreement possible:

1. **Behaviour-bearing state only.** Diagnostic counters that influence
   no simulation decision and no reported statistic —
   ``PredictionTable.lookups/tag_hits/row_evictions``,
   ``RecencyStack.pointer_writes`` — are *excluded* from snapshots, and
   restore zeroes them. (The :class:`~repro.prefetch.base.Prefetcher`
   issue/overhead counters and the buffer/TLB counters *are* captured:
   they feed delta-based statistics.)
2. **Canonical element order.** Recency-stack page-table entries are
   stored sorted by page number: dict insertion order never affects
   RP's behaviour, but it would otherwise differ between engines.

Restores are strict: applying a snapshot to a mechanism whose
configuration (rows, ways, slots, degree bounds, ...) differs from the
captured one raises :class:`~repro.errors.CkptError` rather than
silently truncating state.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass
from typing import ClassVar

from ..core.prediction_table import PredictionTable, SlotList
from ..errors import CkptError
from ..prefetch.adaptive_sequential import AdaptiveSequentialPrefetcher
from ..prefetch.base import Prefetcher
from ..prefetch.markov import MarkovPrefetcher
from ..prefetch.null import NullPrefetcher
from ..prefetch.recency import RecencyPrefetcher
from ..prefetch.sequential import SequentialPrefetcher
from ..prefetch.stride import ArbitraryStridePrefetcher, StrideEntry, StrideState
from ..tlb.page_table import PageTableEntry
from ..tlb.prefetch_buffer import PrefetchBuffer
from ..tlb.tlb import TLB
from .codec import blob_digest, decode_blob, encode_blob

from ..core.distance import DistancePrefetcher
from ..core.distance_pair import DistancePairPrefetcher
from ..core.pc_distance import PCDistancePrefetcher

#: kind -> snapshot class, populated by ``__init_subclass__``.
SNAPSHOT_KINDS: dict[str, type["StateSnapshot"]] = {}

_NESTED_MARKER = "__kind__"


def _encode_field(value):
    if isinstance(value, StateSnapshot):
        nested = {_NESTED_MARKER: value.kind}
        nested.update(value.to_payload())
        return nested
    if isinstance(value, (list, tuple)):
        return [_encode_field(item) for item in value]
    return value


def _decode_field(value):
    if isinstance(value, dict):
        kind = value.get(_NESTED_MARKER)
        cls = SNAPSHOT_KINDS.get(kind)
        if cls is None:
            raise CkptError(f"corrupt snapshot: unknown nested kind {kind!r}")
        payload = {k: v for k, v in value.items() if k != _NESTED_MARKER}
        return cls.from_payload(payload)
    if isinstance(value, list):
        return [_decode_field(item) for item in value]
    return value


class StateSnapshot:
    """Base of all snapshot dataclasses: payload <-> bytes plumbing.

    Subclasses are dataclasses declaring a unique ``kind`` string; the
    payload is the ordered mapping of dataclass fields (nested
    snapshots encode recursively), which the codec serializes
    deterministically.
    """

    kind: ClassVar[str] = ""

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if cls.kind:
            existing = SNAPSHOT_KINDS.get(cls.kind)
            if existing is not None and existing is not cls:
                raise CkptError(f"duplicate snapshot kind {cls.kind!r}")
            SNAPSHOT_KINDS[cls.kind] = cls

    def to_payload(self) -> dict:
        """Ordered field-name -> codec-value mapping of this snapshot."""
        return {
            field.name: _encode_field(getattr(self, field.name))
            for field in dataclasses.fields(self)
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "StateSnapshot":
        """Rebuild a snapshot from :meth:`to_payload` output."""
        if not isinstance(payload, dict):
            raise CkptError(f"corrupt snapshot: {cls.kind!r} payload is not a map")
        names = [field.name for field in dataclasses.fields(cls)]
        if list(payload) != names:
            raise CkptError(
                f"corrupt snapshot: {cls.kind!r} fields {sorted(payload)} "
                f"do not match schema {sorted(names)}"
            )
        return cls(**{name: _decode_field(payload[name]) for name in names})

    def to_bytes(self) -> bytes:
        """Serialize as a self-describing ``repro.ckpt/v1`` blob."""
        return encode_blob(self.kind, self.to_payload())

    @classmethod
    def from_bytes(cls, blob: bytes) -> "StateSnapshot":
        """Parse a blob; on the base class, dispatch by embedded kind.

        Calling this on a concrete subclass additionally demands the
        blob's kind match that subclass.
        """
        expect = cls.kind or None
        kind, payload = decode_blob(blob, expect_kind=expect)
        target = SNAPSHOT_KINDS.get(kind)
        if target is None:
            raise CkptError(f"unknown snapshot kind {kind!r}")
        return target.from_payload(payload)

    def digest(self) -> str:
        """Content digest of the serialized snapshot (checkpoint address)."""
        return blob_digest(self.to_bytes())


# ---------------------------------------------------------------------------
# Core structures: prediction table, TLB, prefetch buffer.


@dataclass
class TableSnapshot(StateSnapshot):
    """A :class:`PredictionTable`'s full contents.

    ``sets`` holds one list per set, each a list of ``[key, payload]``
    pairs in LRU -> MRU order; ``payload`` is a list of ints whose
    meaning the owning mechanism defines (slot values, or a stride
    triple). Diagnostic counters are deliberately absent.
    """

    kind: ClassVar[str] = "table"

    rows: int
    ways: int
    sets: list


def snapshot_table(table: PredictionTable, encode) -> TableSnapshot:
    """Capture ``table``; ``encode(payload) -> list[int]`` per row."""
    return TableSnapshot(
        rows=table.rows,
        ways=table.ways,
        sets=[
            [[key, encode(payload)] for key, payload in table_set.items()]
            for table_set in table._sets
        ],
    )


def restore_table(snap: TableSnapshot, table: PredictionTable, decode) -> None:
    """Overwrite ``table`` with ``snap``; ``decode(list[int]) -> payload``.

    Zeroes the table's diagnostic counters (they are not snapshotted).
    """
    if snap.rows != table.rows or snap.ways != table.ways:
        raise CkptError(
            f"table shape mismatch: snapshot is {snap.rows}r/{snap.ways}w, "
            f"live table is {table.rows}r/{table.ways}w"
        )
    if len(snap.sets) != table.num_sets:
        raise CkptError(
            f"corrupt table snapshot: {len(snap.sets)} sets for "
            f"{table.num_sets}-set table"
        )
    for index, pairs in enumerate(snap.sets):
        if len(pairs) > table.ways:
            raise CkptError(
                f"corrupt table snapshot: set {index} holds {len(pairs)} "
                f"rows, associativity is {table.ways}"
            )
        table_set = table._sets[index]
        table_set.clear()
        for key, payload in pairs:
            if key % table.num_sets != index:
                raise CkptError(
                    f"corrupt table snapshot: key {key} filed under set "
                    f"{index}, maps to set {key % table.num_sets}"
                )
            table_set[key] = decode(payload)
    # The sets were filled behind the table's back; re-derive its O(1)
    # occupancy counter from what the snapshot installed.
    table._occupied = sum(len(s) for s in table._sets)
    table.lookups = 0
    table.tag_hits = 0
    table.row_evictions = 0


def _encode_slots(entry: SlotList) -> list:
    return entry.values()


def _slot_decoder(capacity: int):
    def decode(values: list) -> SlotList:
        if len(values) > capacity:
            raise CkptError(
                f"corrupt snapshot: {len(values)} slot values for "
                f"capacity-{capacity} row"
            )
        row = SlotList(capacity)
        row._slots = list(values)
        return row

    return decode


def _encode_stride(entry: StrideEntry) -> list:
    return [entry.prev_page, entry.stride, int(entry.state)]


def _decode_stride(values: list) -> StrideEntry:
    try:
        state = StrideState(values[2])
    except (ValueError, IndexError) as error:
        raise CkptError(f"corrupt stride row {values!r}: {error}") from error
    return StrideEntry(prev_page=values[0], stride=values[1], state=state)


@dataclass
class TLBSnapshot(StateSnapshot):
    """A :class:`TLB`'s resident pages (per set, LRU -> MRU) and counters."""

    kind: ClassVar[str] = "tlb"

    entries: int
    ways: int
    hits: int
    misses: int
    sets: list


def snapshot_tlb(tlb: TLB) -> TLBSnapshot:
    """Capture a TLB's contents, LRU order, and hit/miss counters."""
    return TLBSnapshot(
        entries=tlb.entries,
        ways=tlb.ways,
        hits=tlb.hits,
        misses=tlb.misses,
        sets=[list(tlb_set) for tlb_set in tlb._sets],
    )


def restore_tlb(snap: TLBSnapshot, tlb: TLB) -> None:
    """Overwrite ``tlb`` with ``snap`` (contents and counters)."""
    if snap.entries != tlb.entries or snap.ways != tlb.ways:
        raise CkptError(
            f"TLB shape mismatch: snapshot is {snap.entries}e/{snap.ways}w, "
            f"live TLB is {tlb.entries}e/{tlb.ways}w"
        )
    if len(snap.sets) != tlb.num_sets:
        raise CkptError(
            f"corrupt TLB snapshot: {len(snap.sets)} sets for "
            f"{tlb.num_sets}-set TLB"
        )
    for index, pages in enumerate(snap.sets):
        if len(pages) > tlb.ways:
            raise CkptError(
                f"corrupt TLB snapshot: set {index} holds {len(pages)} "
                f"pages, associativity is {tlb.ways}"
            )
        tlb_set = tlb._sets[index]
        tlb_set.clear()
        for page in pages:
            if page % tlb.num_sets != index:
                raise CkptError(
                    f"corrupt TLB snapshot: page {page} filed under set "
                    f"{index}, maps to set {page % tlb.num_sets}"
                )
            tlb_set[page] = None
    tlb.hits = snap.hits
    tlb.misses = snap.misses


@dataclass
class BufferSnapshot(StateSnapshot):
    """A :class:`PrefetchBuffer`'s pages (LRU first) and counters."""

    kind: ClassVar[str] = "buffer"

    capacity: int
    hits: int
    lookups: int
    inserted: int
    refreshed: int
    evicted_unused: int
    pages: list


def snapshot_buffer(buffer: PrefetchBuffer) -> BufferSnapshot:
    """Capture a prefetch buffer's contents and cumulative counters."""
    return BufferSnapshot(
        capacity=buffer.capacity,
        hits=buffer.hits,
        lookups=buffer.lookups,
        inserted=buffer.inserted,
        refreshed=buffer.refreshed,
        evicted_unused=buffer.evicted_unused,
        pages=buffer.resident_pages(),
    )


def restore_buffer(snap: BufferSnapshot, buffer: PrefetchBuffer) -> None:
    """Overwrite ``buffer`` with ``snap`` (contents and counters)."""
    if snap.capacity != buffer.capacity:
        raise CkptError(
            f"buffer capacity mismatch: snapshot is {snap.capacity}, "
            f"live buffer is {buffer.capacity}"
        )
    if len(snap.pages) > buffer.capacity:
        raise CkptError(
            f"corrupt buffer snapshot: {len(snap.pages)} pages for "
            f"capacity {snap.capacity}"
        )
    buffer._entries = OrderedDict((page, None) for page in snap.pages)
    buffer.hits = snap.hits
    buffer.lookups = snap.lookups
    buffer.inserted = snap.inserted
    buffer.refreshed = snap.refreshed
    buffer.evicted_unused = snap.evicted_unused


# ---------------------------------------------------------------------------
# Mechanism snapshots: one dataclass per prefetcher family. Every one
# carries the base Prefetcher issue/overhead counters — those feed the
# engines' delta-based statistics, so they are behaviour-bearing.


@dataclass
class MechanismSnapshot(StateSnapshot):
    """Shared base: the :class:`Prefetcher` accounting counters."""

    last_overhead_ops: int
    prefetches_issued: int
    overhead_ops_total: int

    def apply_counters(self, prefetcher: Prefetcher) -> None:
        prefetcher.last_overhead_ops = self.last_overhead_ops
        prefetcher.prefetches_issued = self.prefetches_issued
        prefetcher.overhead_ops_total = self.overhead_ops_total


def _base_counters(prefetcher: Prefetcher) -> dict:
    return {
        "last_overhead_ops": prefetcher.last_overhead_ops,
        "prefetches_issued": prefetcher.prefetches_issued,
        "overhead_ops_total": prefetcher.overhead_ops_total,
    }


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CkptError(message)


@dataclass
class NullSnapshot(MechanismSnapshot):
    """``NullPrefetcher`` — counters only (it never issues anything)."""

    kind: ClassVar[str] = "mech.none"


@dataclass
class SequentialSnapshot(MechanismSnapshot):
    """``SP`` — stateless beyond its configured degree."""

    kind: ClassVar[str] = "mech.sp"

    degree: int


@dataclass
class AdaptiveSequentialSnapshot(MechanismSnapshot):
    """``ASP-seq`` — adaptation counters plus configuration bounds."""

    kind: ClassVar[str] = "mech.asp_seq"

    max_degree: int
    window: int
    raise_above: float
    lower_below: float
    degree: int
    window_misses: int
    window_hits: int


@dataclass
class StrideSnapshot(MechanismSnapshot):
    """``ASP`` — the Chen & Baer RPT contents."""

    kind: ClassVar[str] = "mech.asp"

    table: TableSnapshot


@dataclass
class MarkovSnapshot(MechanismSnapshot):
    """``MP`` — successor table plus the previous-miss register."""

    kind: ClassVar[str] = "mech.mp"

    slots: int
    prev_page: int | None
    table: TableSnapshot


@dataclass
class DistanceSnapshot(MechanismSnapshot):
    """``DP`` — distance table plus prev-page/prev-distance registers."""

    kind: ClassVar[str] = "mech.dp"

    slots: int
    prev_page: int | None
    prev_distance: int | None
    table: TableSnapshot


@dataclass
class PCDistanceSnapshot(MechanismSnapshot):
    """``DP-PC`` — (PC, distance)-keyed table plus history registers."""

    kind: ClassVar[str] = "mech.dp_pc"

    slots: int
    prev_page: int | None
    prev_key: int | None
    table: TableSnapshot


@dataclass
class DistancePairSnapshot(MechanismSnapshot):
    """``DP-2`` — distance-pair-keyed table plus history registers."""

    kind: ClassVar[str] = "mech.dp2"

    slots: int
    prev_page: int | None
    prev_distance: int | None
    prev_key: int | None
    table: TableSnapshot


@dataclass
class RecencySnapshot(MechanismSnapshot):
    """``RP`` — every PTE's stack linkage, in canonical (sorted) order.

    ``entries`` is ``[page, next, prev, on_stack]`` per PTE, sorted by
    page number: page-table dict order never affects RP's behaviour,
    and sorting makes the digest independent of which engine (or which
    chunking of the stream) produced the state.
    """

    kind: ClassVar[str] = "mech.rp"

    variant_three: bool
    top: int | None
    entries: list


def _snapshot_sequential(p: SequentialPrefetcher) -> SequentialSnapshot:
    return SequentialSnapshot(degree=p.degree, **_base_counters(p))


def _restore_sequential(snap: SequentialSnapshot, p: SequentialPrefetcher) -> None:
    _require(
        snap.degree == p.degree,
        f"SP degree mismatch: snapshot k={snap.degree}, instance k={p.degree}",
    )
    snap.apply_counters(p)


def _snapshot_adaptive(p: AdaptiveSequentialPrefetcher) -> AdaptiveSequentialSnapshot:
    return AdaptiveSequentialSnapshot(
        max_degree=p.max_degree,
        window=p.window,
        raise_above=p.raise_above,
        lower_below=p.lower_below,
        degree=p.degree,
        window_misses=p._window_misses,
        window_hits=p._window_hits,
        **_base_counters(p),
    )


def _restore_adaptive(
    snap: AdaptiveSequentialSnapshot, p: AdaptiveSequentialPrefetcher
) -> None:
    _require(
        snap.max_degree == p.max_degree
        and snap.window == p.window
        and snap.raise_above == p.raise_above
        and snap.lower_below == p.lower_below,
        "ASP-seq configuration mismatch between snapshot and instance",
    )
    _require(
        1 <= snap.degree <= snap.max_degree,
        f"corrupt ASP-seq snapshot: degree {snap.degree} outside "
        f"[1, {snap.max_degree}]",
    )
    p.degree = snap.degree
    p._window_misses = snap.window_misses
    p._window_hits = snap.window_hits
    snap.apply_counters(p)


def _snapshot_stride(p: ArbitraryStridePrefetcher) -> StrideSnapshot:
    return StrideSnapshot(
        table=snapshot_table(p.table, _encode_stride), **_base_counters(p)
    )


def _restore_stride(snap: StrideSnapshot, p: ArbitraryStridePrefetcher) -> None:
    restore_table(snap.table, p.table, _decode_stride)
    snap.apply_counters(p)


def _snapshot_markov(p: MarkovPrefetcher) -> MarkovSnapshot:
    return MarkovSnapshot(
        slots=p.slots,
        prev_page=p._prev_page,
        table=snapshot_table(p.table, _encode_slots),
        **_base_counters(p),
    )


def _restore_markov(snap: MarkovSnapshot, p: MarkovPrefetcher) -> None:
    _require(
        snap.slots == p.slots,
        f"MP slots mismatch: snapshot s={snap.slots}, instance s={p.slots}",
    )
    restore_table(snap.table, p.table, _slot_decoder(p.slots))
    p._prev_page = snap.prev_page
    snap.apply_counters(p)


def _snapshot_distance(p: DistancePrefetcher) -> DistanceSnapshot:
    return DistanceSnapshot(
        slots=p.slots,
        prev_page=p._prev_page,
        prev_distance=p._prev_distance,
        table=snapshot_table(p.table, _encode_slots),
        **_base_counters(p),
    )


def _restore_distance(snap: DistanceSnapshot, p: DistancePrefetcher) -> None:
    _require(
        snap.slots == p.slots,
        f"DP slots mismatch: snapshot s={snap.slots}, instance s={p.slots}",
    )
    restore_table(snap.table, p.table, _slot_decoder(p.slots))
    p._prev_page = snap.prev_page
    p._prev_distance = snap.prev_distance
    snap.apply_counters(p)


def _snapshot_pc_distance(p: PCDistancePrefetcher) -> PCDistanceSnapshot:
    return PCDistanceSnapshot(
        slots=p.slots,
        prev_page=p._prev_page,
        prev_key=p._prev_key,
        table=snapshot_table(p.table, _encode_slots),
        **_base_counters(p),
    )


def _restore_pc_distance(snap: PCDistanceSnapshot, p: PCDistancePrefetcher) -> None:
    _require(
        snap.slots == p.slots,
        f"DP-PC slots mismatch: snapshot s={snap.slots}, instance s={p.slots}",
    )
    restore_table(snap.table, p.table, _slot_decoder(p.slots))
    p._prev_page = snap.prev_page
    p._prev_key = snap.prev_key
    snap.apply_counters(p)


def _snapshot_distance_pair(p: DistancePairPrefetcher) -> DistancePairSnapshot:
    return DistancePairSnapshot(
        slots=p.slots,
        prev_page=p._prev_page,
        prev_distance=p._prev_distance,
        prev_key=p._prev_key,
        table=snapshot_table(p.table, _encode_slots),
        **_base_counters(p),
    )


def _restore_distance_pair(
    snap: DistancePairSnapshot, p: DistancePairPrefetcher
) -> None:
    _require(
        snap.slots == p.slots,
        f"DP-2 slots mismatch: snapshot s={snap.slots}, instance s={p.slots}",
    )
    restore_table(snap.table, p.table, _slot_decoder(p.slots))
    p._prev_page = snap.prev_page
    p._prev_distance = snap.prev_distance
    p._prev_key = snap.prev_key
    snap.apply_counters(p)


def _snapshot_recency(p: RecencyPrefetcher) -> RecencySnapshot:
    entries = [
        [pte.page, pte.next, pte.prev, pte.on_stack]
        for pte in sorted(
            p.page_table._entries.values(), key=lambda pte: pte.page
        )
    ]
    return RecencySnapshot(
        variant_three=p.variant_three,
        top=p.stack.top,
        entries=entries,
        **_base_counters(p),
    )


def _restore_recency(snap: RecencySnapshot, p: RecencyPrefetcher) -> None:
    _require(
        snap.variant_three == p.variant_three,
        "RP variant mismatch between snapshot and instance",
    )
    table: dict[int, PageTableEntry] = {}
    for record in snap.entries:
        if len(record) != 4:
            raise CkptError(f"corrupt RP snapshot: malformed PTE {record!r}")
        page, nxt, prev, on_stack = record
        if page in table:
            raise CkptError(f"corrupt RP snapshot: duplicate PTE for page {page}")
        table[page] = PageTableEntry(page, next=nxt, prev=prev, on_stack=bool(on_stack))
    _require(
        snap.top is None or snap.top in table,
        f"corrupt RP snapshot: stack top {snap.top} has no PTE",
    )
    p.page_table._entries = table
    p.stack._top = snap.top
    p.stack.pointer_writes = 0
    snap.apply_counters(p)


_FAMILIES: dict[type, tuple] = {
    NullPrefetcher: (
        NullSnapshot,
        lambda p: NullSnapshot(**_base_counters(p)),
        lambda snap, p: snap.apply_counters(p),
    ),
    SequentialPrefetcher: (SequentialSnapshot, _snapshot_sequential, _restore_sequential),
    AdaptiveSequentialPrefetcher: (
        AdaptiveSequentialSnapshot,
        _snapshot_adaptive,
        _restore_adaptive,
    ),
    ArbitraryStridePrefetcher: (StrideSnapshot, _snapshot_stride, _restore_stride),
    MarkovPrefetcher: (MarkovSnapshot, _snapshot_markov, _restore_markov),
    DistancePrefetcher: (DistanceSnapshot, _snapshot_distance, _restore_distance),
    PCDistancePrefetcher: (
        PCDistanceSnapshot,
        _snapshot_pc_distance,
        _restore_pc_distance,
    ),
    DistancePairPrefetcher: (
        DistancePairSnapshot,
        _snapshot_distance_pair,
        _restore_distance_pair,
    ),
    RecencyPrefetcher: (RecencySnapshot, _snapshot_recency, _restore_recency),
}


def snapshot_prefetcher(prefetcher: Prefetcher) -> MechanismSnapshot:
    """Capture any supported mechanism's full behaviour-bearing state.

    Dispatch is on exact type (mirroring the fast engine's support
    check): a subclass with extra state must register its own family.
    """
    family = _FAMILIES.get(type(prefetcher))
    if family is None:
        raise CkptError(
            f"no snapshot support for {type(prefetcher).__name__}"
        )
    return family[1](prefetcher)


def restore_prefetcher(snap: MechanismSnapshot, prefetcher: Prefetcher) -> None:
    """Overwrite ``prefetcher``'s state with ``snap``.

    The snapshot kind must match the instance's exact type, and the
    captured configuration must match the instance's; mismatches raise
    :class:`~repro.errors.CkptError`. Diagnostic counters excluded from
    snapshots (table lookup/hit/eviction tallies, RP pointer-write
    tally) are zeroed.
    """
    family = _FAMILIES.get(type(prefetcher))
    if family is None:
        raise CkptError(f"no snapshot support for {type(prefetcher).__name__}")
    expected, _, restore = family
    if type(snap) is not expected:
        raise CkptError(
            f"snapshot kind mismatch: {type(snap).__name__} cannot restore "
            f"a {type(prefetcher).__name__}"
        )
    restore(snap, prefetcher)
