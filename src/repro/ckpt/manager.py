"""Checkpoint persistence: content-addressed snapshots in the store.

:class:`CheckpointManager` wraps an
:class:`~repro.store.ExperimentStore` with three small facilities:

- **Snapshot blobs**, stored content-addressed: the key *is* the blob
  digest, so identical state is stored once (``ckpt/<digest>.bin``),
  loads verify the address against the content, and the store's LRU GC
  and pinning apply unchanged.
- **Continuation records** — one JSON record per spec key holding the
  resumable triple ``(spec_key, stream_offset, state_digest)`` — the
  bookmark :class:`~repro.run.runner.Runner` leaves between chunks of
  a ``checkpoint_every`` run and clears on completion.
- **Session records** — the same shape plus the opening spec, keyed by
  streaming-session id, so the service can restore an evicted (or
  restarted-away) session on its next touch.

Records point at snapshot blobs by digest rather than embedding them,
so N bookmarks over the same state cost one blob.
"""

from __future__ import annotations

import json
from contextlib import AbstractContextManager
from typing import TYPE_CHECKING

from ..errors import CkptError
from .codec import blob_digest
from .snapshots import StateSnapshot

if TYPE_CHECKING:  # pragma: no cover - cycle guard (store -> run -> sim)
    from ..store.store import ExperimentStore

_CONTINUATION_PREFIX = "cont:"
_SESSION_PREFIX = "sess:"


class CheckpointManager:
    """Store-backed persistence for snapshots and resume bookmarks."""

    def __init__(self, store: "ExperimentStore") -> None:
        self.store = store

    # -- content-addressed snapshot blobs ----------------------------------

    def save(self, snapshot: StateSnapshot) -> str:
        """Persist a snapshot; returns its content digest (the key)."""
        blob = snapshot.to_bytes()
        digest = blob_digest(blob)
        self.store.put_ckpt(digest, blob)
        return digest

    def load(self, digest: str) -> StateSnapshot | None:
        """Snapshot stored under ``digest``, or ``None`` if absent/GC'd.

        Verifies the content actually hashes to its address (on top of
        the blob's own integrity trailer), so a corrupted or misfiled
        artifact raises :class:`~repro.errors.CkptError` instead of
        silently resuming from the wrong state.
        """
        blob = self.store.get_ckpt(digest)
        if blob is None:
            return None
        if blob_digest(blob) != digest:
            raise CkptError(
                f"checkpoint {digest} failed content verification: stored "
                f"bytes hash to {blob_digest(blob)}"
            )
        return StateSnapshot.from_bytes(blob)

    def pinned(self, digest: str) -> AbstractContextManager[None]:
        """Pin one snapshot blob against GC for the duration of a read."""
        return self.store.pinned(digest, kind="ckpt")

    # -- JSON records (continuations, sessions) ----------------------------

    def _put_record(self, key: str, record: dict) -> None:
        self.store.put_ckpt(
            key, (json.dumps(record, sort_keys=True) + "\n").encode()
        )

    def _get_record(self, key: str) -> dict | None:
        blob = self.store.get_ckpt(key)
        if blob is None:
            return None
        try:
            record = json.loads(blob)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CkptError(f"corrupt checkpoint record {key!r}: {error}") from error
        if not isinstance(record, dict):
            raise CkptError(f"corrupt checkpoint record {key!r}: not an object")
        return record

    # -- continuations ------------------------------------------------------

    def save_continuation(
        self, spec_key: str, offset: int, snapshot: StateSnapshot
    ) -> dict:
        """Bookmark a partially-replayed spec; returns the record.

        The snapshot blob is stored first (content-addressed), then the
        record pointing at it — so a crash between the two writes
        leaves at worst an orphan blob, never a dangling bookmark.
        """
        record = {
            "spec_key": spec_key,
            "stream_offset": offset,
            "state_digest": self.save(snapshot),
        }
        self._put_record(_CONTINUATION_PREFIX + spec_key, record)
        return record

    def load_continuation(
        self, spec_key: str
    ) -> tuple[dict, StateSnapshot] | None:
        """The bookmark and its snapshot for ``spec_key``, if resumable.

        Returns ``None`` when there is no bookmark *or* its snapshot
        blob has been garbage-collected (the run simply restarts from
        the beginning — losing a bookmark is never an error).
        """
        record = self._get_record(_CONTINUATION_PREFIX + spec_key)
        if record is None:
            return None
        digest = record.get("state_digest")
        if not isinstance(digest, str):
            raise CkptError(
                f"corrupt continuation for {spec_key!r}: no state digest"
            )
        snapshot = self.load(digest)
        if snapshot is None:
            return None
        return record, snapshot

    def clear_continuation(self, spec_key: str) -> bool:
        """Drop a completed spec's bookmark; True if one existed.

        The snapshot blob itself is left to LRU GC — another bookmark
        may share it.
        """
        return self.store.delete_ckpt(_CONTINUATION_PREFIX + spec_key)

    # -- streaming sessions -------------------------------------------------

    def save_session(self, session_id: str, record: dict) -> None:
        """Persist a streaming session's descriptor record."""
        self._put_record(_SESSION_PREFIX + session_id, record)

    def load_session(self, session_id: str) -> dict | None:
        """A streaming session's descriptor record, or ``None``."""
        return self._get_record(_SESSION_PREFIX + session_id)

    def delete_session(self, session_id: str) -> bool:
        """Drop a closed session's record; True if one existed."""
        return self.store.delete_ckpt(_SESSION_PREFIX + session_id)

    def session_ids(self) -> list[str]:
        """All persisted streaming-session ids, sorted."""
        prefix_len = len(_SESSION_PREFIX)
        return [
            key[prefix_len:] for key in self.store.ckpt_keys(_SESSION_PREFIX)
        ]
