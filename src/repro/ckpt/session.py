"""Incremental phase-2 replay: the same loop, pausable anywhere.

:class:`ReplaySession` is :func:`repro.sim.two_phase.replay_prefetcher`
unrolled into an object: it holds the miss stream, the live mechanism,
and the prefetch buffer, and :meth:`advance` runs the *identical* per-
miss body over the next N entries. Because the loop body is the same
statement-for-statement and all carried state (buffer contents and
counters, mechanism state, measured-hit tally, counter baselines) is
part of the session, advancing in any chunking produces byte-identical
final statistics to a single-shot replay — the streaming service's
contract, enforced by ``tests/ckpt/test_session.py`` and the
differential suite.

:meth:`snapshot` captures the whole session as a
:class:`SessionSnapshot` (nesting the mechanism and buffer snapshots),
and :meth:`ReplaySession.resume` rebuilds a live session from one —
the service uses this pair to evict idle sessions and to survive
server restarts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

from ..errors import CkptError
from ..mem.trace import MissTrace
from ..prefetch.base import Prefetcher
from ..tlb.prefetch_buffer import PrefetchBuffer

if TYPE_CHECKING:  # pragma: no cover - cycle guard (sim imports this package)
    from ..sim.stats import PrefetchRunStats
from .snapshots import (
    BufferSnapshot,
    MechanismSnapshot,
    StateSnapshot,
    restore_buffer,
    restore_prefetcher,
    snapshot_buffer,
    snapshot_prefetcher,
)


@dataclass
class SessionSnapshot(StateSnapshot):
    """A paused :class:`ReplaySession`, minus the miss stream itself.

    The stream is content-addressed in the store already (or rebuilt
    deterministically from the spec), so only the *position* is stored;
    nesting the mechanism and buffer snapshots keeps the whole session
    a single blob with a single digest.
    """

    kind: ClassVar[str] = "session"

    offset: int
    pb_hits_measured: int
    issued_before: int
    overhead_before: int
    max_prefetches_per_miss: int
    mechanism: MechanismSnapshot
    buffer: BufferSnapshot


class ReplaySession:
    """A suspendable, resumable phase-2 replay over one miss stream.

    Args:
        miss_trace: the filtered miss stream to replay.
        prefetcher: the mechanism instance to drive (trained in place,
            exactly as the reference engine trains it).
        buffer_entries: prefetch-buffer capacity.
        max_prefetches_per_miss: per-miss issue clamp (0 = unlimited).
    """

    def __init__(
        self,
        miss_trace: MissTrace,
        prefetcher: Prefetcher,
        buffer_entries: int = 16,
        max_prefetches_per_miss: int = 0,
    ) -> None:
        self.miss_trace = miss_trace
        self.prefetcher = prefetcher
        self.buffer = PrefetchBuffer(buffer_entries)
        self.max_prefetches_per_miss = max_prefetches_per_miss
        pcs, pages, evicted, _ = miss_trace.as_lists()
        self._pcs = pcs
        self._pages = pages
        self._evicted = evicted
        self.offset = 0
        self.pb_hits_measured = 0
        # Counter baselines, exactly as replay_prefetcher snapshots them:
        # a pre-trained instance reports only this stream's activity.
        self.issued_before = prefetcher.prefetches_issued
        self.overhead_before = prefetcher.overhead_ops_total

    @property
    def total(self) -> int:
        """Total miss entries in the stream."""
        return len(self._pages)

    @property
    def remaining(self) -> int:
        """Entries not yet replayed."""
        return self.total - self.offset

    @property
    def finished(self) -> bool:
        """True once every entry has been replayed."""
        return self.offset >= self.total

    def advance(self, count: int | None = None) -> int:
        """Replay up to ``count`` more entries (all remaining if None).

        Returns the number actually advanced. The loop body is a
        verbatim copy of :func:`~repro.sim.two_phase.replay_prefetcher`;
        ``index`` is the *global* stream position, so the warm-up
        boundary lands identically under any chunking.
        """
        if count is not None and count < 0:
            raise CkptError(f"advance count must be >= 0, got {count}")
        stop = self.total if count is None else min(self.total, self.offset + count)
        start = self.offset
        pcs = self._pcs
        pages = self._pages
        evicted = self._evicted
        warmup = self.miss_trace.warmup_misses
        max_prefetches = self.max_prefetches_per_miss
        pb_hits_measured = self.pb_hits_measured
        lookup_remove = self.buffer.lookup_remove
        insert = self.buffer.insert
        on_miss = self.prefetcher.on_miss
        for index in range(start, stop):
            page = pages[index]
            pb_hit = lookup_remove(page)
            if pb_hit and index >= warmup:
                pb_hits_measured += 1
            prefetches = on_miss(pcs[index], page, evicted[index], pb_hit)
            if max_prefetches and len(prefetches) > max_prefetches:
                prefetches = prefetches[:max_prefetches]
            for target in prefetches:
                insert(target)
        self.pb_hits_measured = pb_hits_measured
        self.offset = stop
        return stop - start

    def stats(self) -> PrefetchRunStats:
        """Statistics over the entries replayed so far.

        Field-for-field the same construction as
        :func:`~repro.sim.two_phase.replay_prefetcher`; once
        :attr:`finished`, the result is byte-identical to a single-shot
        replay of the same stream.
        """
        from ..sim.stats import PrefetchRunStats

        return PrefetchRunStats(
            workload=self.miss_trace.name,
            mechanism=self.prefetcher.label,
            tlb_label=self.miss_trace.tlb_label,
            total_references=self.miss_trace.total_references,
            tlb_misses=self.miss_trace.num_misses,
            measured_misses=self.miss_trace.measured_misses,
            pb_hits=self.pb_hits_measured,
            prefetches_issued=self.prefetcher.prefetches_issued - self.issued_before,
            buffer_inserted=self.buffer.inserted,
            buffer_refreshed=self.buffer.refreshed,
            buffer_evicted_unused=self.buffer.evicted_unused,
            overhead_memory_ops=self.prefetcher.overhead_ops_total
            - self.overhead_before,
            prefetch_fetch_ops=self.buffer.inserted,
        )

    def snapshot(self) -> SessionSnapshot:
        """Capture the complete session state (stream position included)."""
        return SessionSnapshot(
            offset=self.offset,
            pb_hits_measured=self.pb_hits_measured,
            issued_before=self.issued_before,
            overhead_before=self.overhead_before,
            max_prefetches_per_miss=self.max_prefetches_per_miss,
            mechanism=snapshot_prefetcher(self.prefetcher),
            buffer=snapshot_buffer(self.buffer),
        )

    @classmethod
    def resume(
        cls,
        snap: SessionSnapshot,
        miss_trace: MissTrace,
        prefetcher: Prefetcher,
    ) -> "ReplaySession":
        """Rebuild a live session from a snapshot.

        ``prefetcher`` must be a fresh instance with the captured
        configuration (its state is overwritten); ``miss_trace`` must be
        the same stream the snapshot was taken over — the offset is
        validated against its length, content identity is the caller's
        (content-addressed store's) responsibility.
        """
        if not isinstance(snap, SessionSnapshot):
            raise CkptError(
                f"cannot resume a session from {type(snap).__name__}"
            )
        session = cls(
            miss_trace,
            prefetcher,
            buffer_entries=snap.buffer.capacity,
            max_prefetches_per_miss=snap.max_prefetches_per_miss,
        )
        if not 0 <= snap.offset <= session.total:
            raise CkptError(
                f"corrupt session snapshot: offset {snap.offset} outside "
                f"stream of {session.total} entries"
            )
        restore_prefetcher(snap.mechanism, prefetcher)
        restore_buffer(snap.buffer, session.buffer)
        session.offset = snap.offset
        session.pb_hits_measured = snap.pb_hits_measured
        session.issued_before = snap.issued_before
        session.overhead_before = snap.overhead_before
        return session
