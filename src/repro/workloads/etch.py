"""Etch desktop-trace application models (5 apps).

The Etch traces (bcc, mpegply, msvc, perl4, winword) are
"characteristic of desktop/PC applications": phase-y, library-heavy
executions. Figure 8 of the paper shows DP doing much better than the
other schemes on mpegply, msvc and perl4, with mixed history behaviour
on the remaining two.
"""

from __future__ import annotations

from repro.workloads.composer import AppSpec, BehaviorClass
from repro.workloads import recipes


def _etch(
    name: str,
    behavior: BehaviorClass,
    paper_note: str,
    builder,
    seed: int,
) -> AppSpec:
    return AppSpec(
        name=name,
        suite="etch",
        behavior=behavior,
        paper_note=paper_note,
        builder=builder,
        seed=seed,
    )


ETCH_APPS: tuple[AppSpec, ...] = (
    _etch(
        "bcc",
        BehaviorClass.MIXED,
        "Compiler-style mix: cold strided scans over sources plus a "
        "re-walked symbol-table region; stride/distance schemes lead, "
        "history schemes get the revisited share.",
        recipes.mixed_app(
            [
                recipes.one_touch_strided(
                    segment_pages=600, strides=[1, 2], refs_per_page=2.0,
                    repeats=2, hot=(24, 285.0),
                ),
                recipes.history_walk(
                    walk_pages=160, refs_per_page=1.5, sweeps=30,
                    hot=(24, 285.0),
                ),
            ],
            burst_runs=20,
        ),
        seed=3001,
    ),
    _etch(
        "mpegply",
        BehaviorClass.IRREGULAR_REPEATING,
        "DP does much better than the others (interleaved frame-buffer "
        "streams form a repeating distance cycle).",
        recipes.interleaved_stream_app(
            num_streams=3, stream_gap=400_000, length=7_000,
            refs_per_page=2.0, sweeps=1, pc_pool=2, hot=(24, 276.0),
        ),
        seed=3002,
    ),
    _etch(
        "msvc",
        BehaviorClass.IRREGULAR_REPEATING,
        "DP is the only mechanism making noticeable predictions, and "
        "also one of the apps where DP does much better than the rest.",
        recipes.dp_only_app(
            random_footprint=1600, random_steps=21_000,
            cycle=[2, 9], cycle_steps=4_400, refs_per_page=2.0,
            hot=(24, 264.0),
        ),
        seed=3003,
    ),
    _etch(
        "perl4",
        BehaviorClass.IRREGULAR_REPEATING,
        "DP does much better than the others (interpreter dispatch "
        "advances memory by a short repeating distance cycle).",
        recipes.distance_cycle_app(
            cycle=[1, 5, 2], steps=26_000, refs_per_page=2.0,
            hot=(24, 285.0),
        ),
        seed=3004,
    ),
    _etch(
        "winword",
        BehaviorClass.MIXED,
        "Desktop mix of alternating document/UI regions and a re-walked "
        "heap: MP/RP moderate, DP close.",
        recipes.mixed_app(
            [
                recipes.alternation_app(
                    core_pages=60, batches=2, rounds=160,
                    refs_per_page=1.8, hot=(24, 285.0),
                ),
                recipes.history_walk(
                    walk_pages=140, refs_per_page=1.5, sweeps=35,
                    hot=(24, 285.0),
                ),
            ],
            burst_runs=18,
        ),
        seed=3005,
    ),
)
