"""Registry of all 56 application models across the four suites.

Lookup helpers used throughout the benchmarks and the CLI:

- :func:`get_app` — fetch an :class:`~repro.workloads.composer.AppSpec`
  by name.
- :func:`get_trace` — build (and memoize) the deterministic reference
  trace for an app at a given scale.
- :data:`HIGH_MISS_APPS` — the paper's eight highest-miss-rate apps
  used for Figure 9 and (its first five columns' subset) Table 3.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import UnknownWorkloadError
from repro.mem.trace import ReferenceTrace
from repro.workloads.composer import AppSpec, build_trace
from repro.workloads.etch import ETCH_APPS
from repro.workloads.mediabench import MEDIABENCH_APPS
from repro.workloads.ptrdist import PTRDIST_APPS
from repro.workloads.spec2000 import SPEC2000_APPS

#: Suite name -> tuple of specs, in the paper's figure order.
SUITES: dict[str, tuple[AppSpec, ...]] = {
    "spec2000": SPEC2000_APPS,
    "mediabench": MEDIABENCH_APPS,
    "etch": ETCH_APPS,
    "ptrdist": PTRDIST_APPS,
}

_ALL_APPS: dict[str, AppSpec] = {
    spec.name: spec for suite in SUITES.values() for spec in suite
}

#: The paper's "8 applications which have the highest TLB miss rates"
#: (Section 3.2), in the order of Figure 9's x-axis.
HIGH_MISS_APPS: tuple[str, ...] = (
    "vpr",
    "mcf",
    "twolf",
    "galgel",
    "ammp",
    "lucas",
    "apsi",
    "adpcm-enc",
)

#: The Table 3 subset: the five of the eight where RP's prediction
#: accuracy beats DP's.
TABLE3_APPS: tuple[str, ...] = ("ammp", "mcf", "vpr", "twolf", "lucas")


def all_app_names() -> list[str]:
    """Every application name, suite by suite, figure order."""
    return [spec.name for suite in SUITES.values() for spec in suite]


def app_names_for_suite(suite: str) -> list[str]:
    """Application names of one suite, in figure order."""
    if suite not in SUITES:
        raise UnknownWorkloadError(suite, list(SUITES))
    return [spec.name for spec in SUITES[suite]]


def get_app(name: str) -> AppSpec:
    """Look up an application spec by its paper name."""
    spec = _ALL_APPS.get(name)
    if spec is None:
        raise UnknownWorkloadError(name, list(_ALL_APPS))
    return spec


@lru_cache(maxsize=128)
def get_trace(name: str, scale: float = 1.0) -> ReferenceTrace:
    """Build (and cache) the deterministic trace for ``name``.

    Traces are pure functions of (name, scale); the cache makes
    repeated benchmark invocations cheap within a process.
    """
    return build_trace(get_app(name), scale=scale)
