"""SPEC CPU2000 application models (26 apps).

Each model reproduces the behaviour class the paper's Section 3.2
narrative assigns to the application, with miss rates steered so the
paper's "8 highest TLB miss rate" selection (galgel 0.228, adpcm 0.192,
mcf 0.090, apsi 0.018, vpr 0.016, lucas 0.016, twolf 0.013, ammp
0.0113 for a 128-entry fully-associative TLB) comes out on top in the
same order, and every other application stays below that band.

The ``paper_note`` on each spec quotes/summarizes the observation from
the paper the model is designed to reproduce; EXPERIMENTS.md checks the
measured outcome against it.
"""

from __future__ import annotations

from repro.workloads.composer import AppSpec, BehaviorClass
from repro.workloads import recipes

_HIGH = frozenset({"high-miss"})


def _spec(
    name: str,
    behavior: BehaviorClass,
    paper_note: str,
    builder,
    seed: int,
    tags: frozenset[str] = frozenset(),
) -> AppSpec:
    return AppSpec(
        name=name,
        suite="spec2000",
        behavior=behavior,
        paper_note=paper_note,
        builder=builder,
        seed=seed,
        tags=tags,
    )


SPEC2000_APPS: tuple[AppSpec, ...] = (
    _spec(
        "gzip",
        BehaviorClass.STRIDED_ONE_TOUCH,
        "ASP captures first-time strided references; DP matches it; "
        "history schemes (RP/MP) have nothing to learn from.",
        recipes.one_touch_strided(
            segment_pages=1500, strides=[1, 2, 1], refs_per_page=2.0,
            repeats=3, hot=(24, 300.0),
        ),
        seed=1001,
    ),
    _spec(
        "vpr",
        BehaviorClass.IRREGULAR_REPEATING,
        "High-miss app (0.016); RP's accuracy slightly exceeds DP's, "
        "yet DP wins execution cycles (Table 3).",
        recipes.history_walk(
            walk_pages=420, refs_per_page=1.3, sweeps=40,
            strided_pages=250, strided_sweeps=12, strided_refs_per_page=1.5,
            hot=(24, 60.0),
        ),
        seed=1002,
        tags=_HIGH,
    ),
    _spec(
        "gcc",
        BehaviorClass.IRREGULAR_REPEATING,
        "RP best or close to best; DP comes very close (good history "
        "repetition over a modest working set).",
        recipes.history_walk(
            walk_pages=180, refs_per_page=1.4, sweeps=60,
            strided_pages=200, strided_sweeps=20, strided_refs_per_page=2.0,
            hot=(24, 360.0),
        ),
        seed=1003,
    ),
    _spec(
        "mcf",
        BehaviorClass.IRREGULAR_REPEATING,
        "High-miss app (0.090); RP accuracy beats DP, but RP's pointer "
        "traffic makes it *slower* than no prefetching (Table 3: 1.09).",
        recipes.history_walk(
            walk_pages=1000, refs_per_page=1.2, sweeps=30,
            strided_pages=600, strided_sweeps=33, strided_refs_per_page=1.2,
            hot=(24, 10.0),
        ),
        seed=1004,
        tags=_HIGH,
    ),
    _spec(
        "crafty",
        BehaviorClass.IRREGULAR_REPEATING,
        "Accesses not strided enough for ASP; historical indication "
        "(RP, and MP when it fits) does much better.",
        recipes.history_walk(
            walk_pages=220, refs_per_page=1.5, sweeps=50, hot=(24, 330.0),
        ),
        seed=1005,
    ),
    _spec(
        "parser",
        BehaviorClass.IRREGULAR_REPEATING,
        "Alternation in history lets MP (s=2) beat even RP; ASP does "
        "not do well; DP comes close to MP.",
        recipes.alternation_app(
            core_pages=80, batches=2, rounds=300, refs_per_page=1.8,
            hot=(24, 300.0),
        ),
        seed=1006,
    ),
    _spec(
        "perlbmk",
        BehaviorClass.STRIDED_ONE_TOUCH,
        "First-time references captured by ASP; DP delivers accuracies "
        "as good as ASP.",
        recipes.one_touch_strided(
            segment_pages=1200, strides=[1], refs_per_page=2.2,
            repeats=4, hot=(24, 360.0),
        ),
        seed=1007,
    ),
    _spec(
        "eon",
        BehaviorClass.LOW_MISS,
        "So few TLB misses that no significant history or stride "
        "pattern builds up; prefetching unimportant here.",
        recipes.low_miss_app(
            hot_pages=56, laps=4000, refs_per_page=6.0,
            cold_pages=600, cold_steps=400,
        ),
        seed=1008,
    ),
    _spec(
        "gap",
        BehaviorClass.STRIDED_REPEATED,
        "Regular strided accesses repeatedly over the same items: "
        "nearly all mechanisms give good accuracy.",
        recipes.strided_repeated(
            footprint=230, refs_per_page=2.6, sweeps=90, hot=(24, 270.0),
        ),
        seed=1009,
    ),
    _spec(
        "vortex",
        BehaviorClass.IRREGULAR_REPEATING,
        "Like parser: alternation favours MP over RP; DP close behind.",
        recipes.alternation_app(
            core_pages=100, batches=2, rounds=280, refs_per_page=1.6,
            hot=(24, 330.0),
        ),
        seed=1010,
    ),
    _spec(
        "bzip2",
        BehaviorClass.MIXED,
        "Mixed phases: block-sorting strides plus reuse; stride/distance "
        "schemes do well, history schemes partially.",
        recipes.mixed_app(
            [
                recipes.one_touch_strided(
                    segment_pages=800, strides=[1, 3], refs_per_page=2.0,
                    repeats=3, hot=(24, 300.0),
                ),
                recipes.strided_repeated(
                    footprint=260, refs_per_page=2.5, sweeps=60, hot=(24, 300.0),
                ),
            ],
            burst_runs=24,
        ),
        seed=1011,
    ),
    _spec(
        "twolf",
        BehaviorClass.IRREGULAR_REPEATING,
        "High-miss app (0.013); RP accuracy a touch above DP; execution "
        "cycles tie at 0.98 (Table 3).",
        recipes.history_walk(
            walk_pages=380, refs_per_page=1.3, sweeps=50,
            strided_pages=150, strided_sweeps=10, strided_refs_per_page=1.5,
            hot=(24, 75.0),
        ),
        seed=1012,
        tags=_HIGH,
    ),
    _spec(
        "wupwise",
        BehaviorClass.IRREGULAR_REPEATING,
        "DP does much better than all others: interleaved streams give "
        "a repeating distance cycle no PC-stride or history scheme sees.",
        recipes.interleaved_stream_app(
            num_streams=3, stream_gap=600_000, length=12_000,
            refs_per_page=2.2, sweeps=1, pc_pool=2, hot=(24, 300.0),
            asp_side_pages=1500, asp_side_sweeps=2,
        ),
        seed=1013,
    ),
    _spec(
        "swim",
        BehaviorClass.IRREGULAR_REPEATING,
        "DP much better than the others (multi-array stencil sweeps).",
        recipes.interleaved_stream_app(
            num_streams=4, stream_gap=500_000, length=9_000,
            refs_per_page=2.0, sweeps=1, pc_pool=2, hot=(24, 285.0),
            asp_side_pages=1200, asp_side_sweeps=2,
        ),
        seed=1014,
    ),
    _spec(
        "mgrid",
        BehaviorClass.IRREGULAR_REPEATING,
        "DP much better than the others (grid stencil streams with a "
        "non-unit stride).",
        recipes.interleaved_stream_app(
            num_streams=3, stream_gap=550_000, length=8_000,
            refs_per_page=2.4, sweeps=1, stream_stride=2, pc_pool=2,
            hot=(24, 315.0), asp_side_pages=900, asp_side_sweeps=2,
        ),
        seed=1015,
    ),
    _spec(
        "applu",
        BehaviorClass.IRREGULAR_REPEATING,
        "DP much better than the others (repeating non-constant "
        "distance cycle through the operator splitting sweeps).",
        recipes.distance_cycle_app(
            cycle=[1, 3, 1, 13], steps=30_000, refs_per_page=2.2,
            hot=(24, 300.0),
        ),
        seed=1016,
    ),
    _spec(
        "mesa",
        BehaviorClass.STRIDED_REPEATED,
        "All mechanisms good, but MP performs poorly with small r: the "
        "data set is too large for a small on-chip history table.",
        recipes.strided_repeated(
            footprint=900, refs_per_page=3.0, sweeps=45, hot=(24, 285.0),
        ),
        seed=1017,
    ),
    _spec(
        "galgel",
        BehaviorClass.STRIDED_REPEATED,
        "Highest miss rate of all (0.228); regular strided repeats: "
        "every mechanism except small-table MP is accurate.",
        recipes.strided_repeated(footprint=700, refs_per_page=4.4, sweeps=220),
        seed=1018,
        tags=_HIGH,
    ),
    _spec(
        "art",
        BehaviorClass.STRIDED_REPEATED,
        "All mechanisms good; MP poor at small r (large data set).",
        recipes.strided_repeated(
            footprint=1300, refs_per_page=3.5, sweeps=28, hot=(24, 300.0),
        ),
        seed=1019,
    ),
    _spec(
        "equake",
        BehaviorClass.STRIDED_ONE_TOUCH,
        "First-time strided references: ASP and DP good, history "
        "schemes near zero.",
        recipes.one_touch_strided(
            segment_pages=1600, strides=[1, 2], refs_per_page=2.0,
            repeats=3, hot=(24, 285.0),
        ),
        seed=1020,
    ),
    _spec(
        "facerec",
        BehaviorClass.STRIDED_REPEATED,
        "Nearly all mechanisms give quite good prediction accuracies "
        "(strided repeats within modest footprint).",
        recipes.strided_repeated(
            footprint=220, refs_per_page=3.0, sweeps=110, hot=(24, 300.0),
        ),
        seed=1021,
    ),
    _spec(
        "ammp",
        BehaviorClass.IRREGULAR_REPEATING,
        "High-miss app (0.0113); RP's accuracy is best but DP comes "
        "close — and wins cycles 0.86 vs 0.97 (Table 3).",
        recipes.history_walk(
            walk_pages=200, refs_per_page=1.4, sweeps=55,
            strided_pages=220, strided_sweeps=40, strided_refs_per_page=1.6,
            hot=(24, 86.0, 2),
        ),
        seed=1022,
        tags=_HIGH,
    ),
    _spec(
        "lucas",
        BehaviorClass.IRREGULAR_REPEATING,
        "High-miss app (0.016); RP best, DP slightly behind in accuracy "
        "but ahead in cycles (Table 3: 1.00 vs 0.99).",
        recipes.history_walk(
            walk_pages=330, refs_per_page=1.3, sweeps=50,
            strided_pages=130, strided_sweeps=10, strided_refs_per_page=1.5,
            hot=(24, 60.0),
        ),
        seed=1023,
        tags=_HIGH,
    ),
    _spec(
        "fma3d",
        BehaviorClass.IRREGULAR,
        "Irregularity makes it very difficult for any mechanism to do "
        "well — the negative control.",
        recipes.random_touch(
            footprint=2500, steps=26_000, refs_per_page=2.0, hot=(24, 285.0),
        ),
        seed=1024,
    ),
    _spec(
        "sixtrack",
        BehaviorClass.IRREGULAR_REPEATING,
        "RP gives best or close-to-best accuracy (good history "
        "repetition).",
        recipes.history_walk(
            walk_pages=240, refs_per_page=1.5, sweeps=45,
            strided_pages=60, strided_sweeps=8, strided_refs_per_page=1.5,
            hot=(24, 315.0),
        ),
        seed=1025,
    ),
    _spec(
        "apsi",
        BehaviorClass.IRREGULAR_REPEATING,
        "High-miss app (0.018); RP best or close, DP decent; one of the "
        "apps where ASP's accuracy drops at r=1024 from buffer churn.",
        recipes.history_walk(
            walk_pages=350, refs_per_page=1.4, sweeps=45,
            strided_pages=200, strided_sweeps=14, strided_refs_per_page=1.5,
            hot=(24, 54.0),
        ),
        seed=1026,
        tags=_HIGH,
    ),
)
