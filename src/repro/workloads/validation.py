"""Programmatic validation of the application models' paper claims.

Each application model carries a ``paper_note`` describing the
observation from the paper it was built to reproduce. This module turns
the observations that are *checkable* — the behaviour-class orderings
of Section 3.2 — into executable claims, so a change to the pattern
library or a mechanism that silently breaks an app's class is caught by
``repro-tlb validate`` (and by the benchmark suite that reuses these
claims).

One claim set per behaviour group; apps are mapped to groups here
rather than in the registry because a claim can span mechanisms in ways
the per-app metadata doesn't encode.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.analysis.experiments import ExperimentContext
from repro.prefetch.factory import create_prefetcher

#: app -> mechanism -> accuracy, for one app.
Accuracies = dict[str, float]
#: A claim returns None when satisfied, else a human-readable failure.
Claim = Callable[[Accuracies], str | None]


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of checking one application's claims."""

    app: str
    group: str
    accuracies: Accuracies
    failures: tuple[str, ...]

    @property
    def passed(self) -> bool:
        return not self.failures


def _all_good_except_small_mp(acc: Accuracies) -> str | None:
    # RP carries a one-sweep cold start (no history the first time
    # over the data), so its floor is a touch lower at small scales.
    if min(acc["DP"], acc["ASP"]) < 0.7 or acc["RP"] < 0.65:
        return f"expected RP/DP/ASP all good, got {acc}"
    return None


def _history_rp_leads(acc: Accuracies) -> str | None:
    if acc["RP"] < max(acc.values()) - 0.06:
        return f"expected RP best or close, got {acc}"
    return None


def _alternation_mp_beats_rp(acc: Accuracies) -> str | None:
    if acc["MP"] <= acc["RP"]:
        return f"expected MP above RP, got {acc}"
    if acc["ASP"] > 0.1:
        return f"expected ASP to fail on alternation, got {acc}"
    return None


def _one_touch_stride_schemes_only(acc: Accuracies) -> str | None:
    if acc["ASP"] < 0.45 or acc["DP"] < 0.45:
        return f"expected ASP and DP to capture cold strides, got {acc}"
    if acc["RP"] > 0.1 or acc["MP"] > 0.1:
        return f"expected history schemes near zero on one-touch data, got {acc}"
    return None


def _distance_dp_dominates(acc: Accuracies) -> str | None:
    others = max(acc["RP"], acc["MP"], acc["ASP"])
    if acc["DP"] < others + 0.25:
        return f"expected DP well ahead, got {acc}"
    return None


def _dp_only_noticeable(acc: Accuracies) -> str | None:
    if not 0.05 < acc["DP"] < 0.4:
        return f"expected DP noticeable but modest, got {acc}"
    if max(acc["RP"], acc["MP"], acc["ASP"]) > 0.08:
        return f"expected other mechanisms near zero, got {acc}"
    return None


def _nobody_predicts(acc: Accuracies) -> str | None:
    if max(acc.values()) > 0.12:
        return f"expected no mechanism to predict, got {acc}"
    return None


def _mixed_no_claim(acc: Accuracies) -> str | None:
    return None  # mixed/desktop apps: checked only for valid accuracies


#: Behaviour groups: name -> (claim, apps). Apps not listed fall under
#: the "mixed" group with structural checks only.
CLAIM_GROUPS: dict[str, tuple[Claim, tuple[str, ...]]] = {
    "strided-repeated": (
        _all_good_except_small_mp,
        ("galgel", "gap", "facerec", "mesa", "art", "adpcm-enc", "adpcm-dec",
         "texgen-mesa", "mpeg-enc"),
    ),
    "history": (
        _history_rp_leads,
        ("gcc", "crafty", "ammp", "lucas", "sixtrack", "apsi", "gs",
         "vpr", "mcf", "twolf"),
    ),
    "alternation": (_alternation_mp_beats_rp, ("parser", "vortex")),
    "one-touch": (
        _one_touch_stride_schemes_only,
        ("gzip", "perlbmk", "equake", "epic", "unepic", "rasta",
         "mipmap-mesa", "pgp-enc", "anagram", "yacr2"),
    ),
    "distance": (
        _distance_dp_dominates,
        ("wupwise", "swim", "mgrid", "applu", "mpeg-dec", "mpegply", "perl4"),
    ),
    "dp-only": (
        _dp_only_noticeable,
        ("gsm-enc", "gsm-dec", "jpeg-enc", "jpeg-dec", "msvc",
         "pegwit-enc", "pegwit-dec", "ks", "bc"),
    ),
    "nobody": (
        _nobody_predicts,
        ("eon", "fma3d", "g721-enc", "g721-dec", "pgp-dec"),
    ),
    "mixed": (_mixed_no_claim, ("bzip2", "bcc", "winword", "ft")),
}


def group_of(app: str) -> str:
    """Behaviour group an application's claims belong to."""
    for group, (_, apps) in CLAIM_GROUPS.items():
        if app in apps:
            return group
    return "mixed"


def measure_accuracies(app: str, context: ExperimentContext) -> Accuracies:
    """Accuracy of the four head-to-head mechanisms on ``app``."""
    miss_trace = context.miss_trace(app)
    accuracies: Accuracies = {}
    for mechanism in ("RP", "MP", "DP", "ASP"):
        from repro.sim.two_phase import replay_prefetcher

        stats = replay_prefetcher(
            miss_trace, create_prefetcher(mechanism, rows=256)
        )
        accuracies[mechanism] = stats.prediction_accuracy
    return accuracies


def validate_app(app: str, context: ExperimentContext) -> ValidationResult:
    """Check one application against its behaviour-group claims."""
    group = group_of(app)
    claim, _ = CLAIM_GROUPS[group]
    accuracies = measure_accuracies(app, context)
    failures: list[str] = []
    for mechanism, value in accuracies.items():
        if not 0.0 <= value <= 1.0:
            failures.append(f"{mechanism} accuracy out of range: {value}")
    message = claim(accuracies)
    if message is not None:
        failures.append(message)
    return ValidationResult(
        app=app, group=group, accuracies=accuracies, failures=tuple(failures)
    )


def validate_all(
    context: ExperimentContext, apps: list[str] | None = None
) -> list[ValidationResult]:
    """Validate every (or the given) application model."""
    from repro.workloads.registry import all_app_names

    names = apps if apps is not None else all_app_names()
    return [validate_app(app, context) for app in names]


def render_report(results: list[ValidationResult]) -> str:
    """Human-readable validation summary."""
    lines = []
    failed = [r for r in results if not r.passed]
    lines.append(
        f"validated {len(results)} application models: "
        f"{len(results) - len(failed)} passed, {len(failed)} failed"
    )
    for result in results:
        status = "ok " if result.passed else "FAIL"
        accuracy_text = " ".join(
            f"{mechanism}={value:.2f}"
            for mechanism, value in result.accuracies.items()
        )
        lines.append(f"  [{status}] {result.app:<14} ({result.group:<16}) {accuracy_text}")
        for failure in result.failures:
            lines.append(f"         -> {failure}")
    return "\n".join(lines)
