"""Application specifications and trace building.

An :class:`AppSpec` ties a benchmark name to the reference-behaviour
class the paper reports for it, a deterministic seed, and a builder
that assembles the pattern composition at a given ``scale``. The scale
knob multiplies trace *volume* (sweeps/steps) without changing the
footprint or behaviour class — the equivalent of simulating more or
fewer instructions of the same program.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.trace import ReferenceTrace
from repro.workloads.patterns import Pattern


class BehaviorClass(enum.Enum):
    """The paper's Section 1 taxonomy of reference behaviour."""

    STRIDED_ONE_TOUCH = "a: strided, touched once"
    STRIDED_REPEATED = "b: strided, touched repeatedly"
    CHANGING_STRIDE = "c: stride changes over time"
    IRREGULAR_REPEATING = "d: irregular but repeating"
    IRREGULAR = "e: no regularity"
    MIXED = "mixed phases"
    LOW_MISS = "working set fits: few TLB misses"


@dataclass(frozen=True)
class AppSpec:
    """A named synthetic application model.

    Attributes:
        name: benchmark name as it appears in the paper's figures.
        suite: ``spec2000`` / ``mediabench`` / ``etch`` / ``ptrdist``.
        behavior: dominant behaviour class (paper Section 1 taxonomy).
        paper_note: what the paper observes about this app — the claim
            the synthetic model is built to reproduce.
        builder: ``builder(scale) -> Pattern`` assembling the model.
        seed: RNG seed; traces are fully deterministic in (name, scale).
        tags: free-form markers used by the experiment harness (e.g.
            ``high-miss`` for the Figure 9 / Table 3 selection).
    """

    name: str
    suite: str
    behavior: BehaviorClass
    paper_note: str
    builder: Callable[[float], Pattern]
    seed: int
    tags: frozenset[str] = field(default_factory=frozenset)


def scaled(value: float, scale: float, minimum: int = 1) -> int:
    """Scale a volume parameter, keeping it a positive integer."""
    if scale <= 0:
        raise ConfigurationError(f"scale must be > 0, got {scale}")
    return max(minimum, round(value * scale))


def build_trace(spec: AppSpec, scale: float = 1.0) -> ReferenceTrace:
    """Generate the deterministic reference trace for ``spec``.

    The same (spec, scale) always yields the identical trace: the RNG
    is seeded from the spec and consumed in a fixed order by the
    pattern composition.
    """
    rng = np.random.default_rng(spec.seed)
    pattern = spec.builder(scale)
    pcs, pages, counts = pattern.emit(rng)
    return ReferenceTrace(pcs, pages, counts, name=spec.name)
