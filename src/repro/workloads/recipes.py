"""Builder factories shared by the per-suite registries.

Each factory returns a ``builder(scale) -> Pattern`` closure for
:class:`~repro.workloads.composer.AppSpec`. The factories correspond to
the archetypes the paper's Section 3.2 narrative sorts applications
into; the per-suite registries instantiate them with per-app footprints
and miss-rate dilution.

Address-space layout: every sub-pattern of an app gets its own region
base so distinct "data structures" never alias. PC layout mirrors it —
each pattern's instructions occupy a distinct PC block.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.workloads.composer import scaled
from repro.workloads.patterns import (
    ChangingStrideSweep,
    Concat,
    DistanceCycleScan,
    HotSetLoop,
    InterleavedStreams,
    MarkovAlternation,
    Pattern,
    PermutationWalk,
    RandomWalk,
    RoundRobinMix,
    StridedSweep,
    WithHotTraffic,
    WithNoise,
)

Builder = Callable[[float], Pattern]

#: Region bases for an app's sub-patterns ("data structures").
_REGION = [0, 4_000_000, 8_000_000, 12_000_000, 16_000_000, 20_000_000]
#: PC block per sub-pattern ("loop nests").
_PC = [0x1000, 0x2000, 0x3000, 0x4000, 0x5000, 0x6000]
#: Region/PC used for hot-set (stack/globals) traffic.
_HOT_REGION = 30_000_000
_HOT_PC = 0xF000
#: Region/PC used for injected noise references.
_NOISE_REGION = 40_000_000
_NOISE_PC = 0xE000

#: Hot-set dilution: (hot pages, hot references per inner run) with an
#: optional third element giving the miss-burst factor, or None.
HotSpec = tuple[int, float] | tuple[int, float, int] | None


def _diluted(inner: Pattern, hot: HotSpec, noise: float = 0.0) -> Pattern:
    if noise > 0.0:
        inner = WithNoise(
            inner, fraction=noise, noise_pc=_NOISE_PC, noise_base=_NOISE_REGION
        )
    if hot is None:
        return inner
    hot_pages, hot_refs = hot[0], hot[1]
    burst_every = hot[2] if len(hot) > 2 else 1
    return WithHotTraffic(
        inner,
        hot_pc=_HOT_PC,
        hot_base=_HOT_REGION,
        hot_pages=hot_pages,
        hot_refs_per_run=hot_refs,
        burst_every=burst_every,
    )


def strided_repeated(
    footprint: int,
    refs_per_page: float,
    sweeps: int,
    stride: int = 1,
    hot: HotSpec = None,
) -> Builder:
    """Class (b): repeated strided traversals (galgel/adpcm archetype).

    With ``footprint`` beyond TLB reach, every touched page misses each
    sweep, so the miss rate is about ``1 / refs_per_page`` (before hot
    dilution). Stride schemes lock immediately; history schemes learn
    from the second sweep; MP needs ~``footprint`` table rows.
    """

    def build(scale: float) -> Pattern:
        inner = StridedSweep(
            pc=_PC[0],
            base=_REGION[0],
            count=footprint,
            stride=stride,
            refs_per_page=refs_per_page,
            sweeps=scaled(sweeps, scale),
        )
        return _diluted(inner, hot)

    return build


def one_touch_strided(
    segment_pages: int,
    strides: Sequence[int],
    refs_per_page: float,
    repeats: int = 1,
    hot: HotSpec = None,
    noise: float = 0.10,
) -> Builder:
    """Classes (a)/(c): fresh data walked at (changing) strides.

    ``repeats`` re-runs the phase over *new* regions, so no page is
    ever revisited — the gzip/equake archetype where first-time
    references dominate and only stride/distance schemes can predict.
    ``noise`` injects the unpredictable side misses that keep real
    applications' accuracy bars below 1.0.
    """

    def build(scale: float) -> Pattern:
        phases: list[Pattern] = []
        total = scaled(repeats, scale)
        for phase_index in range(total):
            phases.append(
                ChangingStrideSweep(
                    pc=_PC[phase_index % 3],
                    base=_REGION[0] + phase_index * 2_000_000,
                    segment_pages=segment_pages,
                    strides=strides,
                    refs_per_page=refs_per_page,
                    sweeps=1,
                )
            )
        return _diluted(Concat(*phases), hot, noise=noise)

    return build


def interleaved_stream_app(
    num_streams: int,
    stream_gap: int,
    length: int,
    refs_per_page: float,
    sweeps: int = 1,
    stream_stride: int = 1,
    pc_pool: int = 2,
    hot: HotSpec = None,
    noise: float = 0.06,
    asp_side_pages: int = 0,
    asp_side_sweeps: int = 1,
) -> Builder:
    """Class (d) via lock-step streams (swim/mgrid/applu archetype).

    The miss-stream distances cycle through the inter-stream gaps:
    regular enough for DP to learn in ``num_streams`` rows, invisible
    to a PC-indexed stride table (the PC pool is smaller than the
    stream count), and unlearnable by history schemes on first touch.
    ``asp_side_pages`` adds a small private-PC strided stream so ASP
    keeps the modest non-zero bar the paper shows for these apps.
    """

    def build(scale: float) -> Pattern:
        streams = [
            (_REGION[0] + s * stream_gap, stream_stride) for s in range(num_streams)
        ]
        inner: Pattern = InterleavedStreams(
            pc=_PC[0],
            streams=streams,
            length=scaled(length, scale),
            refs_per_page=refs_per_page,
            sweeps=sweeps,
            shared_pcs=True,
            pc_pool=pc_pool,
        )
        if asp_side_pages > 0:
            side = StridedSweep(
                pc=_PC[4],
                base=_REGION[4],
                count=asp_side_pages,
                stride=1,
                refs_per_page=refs_per_page,
                sweeps=scaled(asp_side_sweeps, scale),
            )
            inner = RoundRobinMix([inner, side], burst_runs=16)
        return _diluted(inner, hot, noise=noise)

    return build


def distance_cycle_app(
    cycle: Sequence[int],
    steps: int,
    refs_per_page: float,
    sweeps: int = 1,
    hot: HotSpec = None,
    noise: float = 0.06,
) -> Builder:
    """Class (d): pages advance by a repeating distance cycle.

    The paper's 1,2,4,5,7,8 example generalized — the purest showcase
    of distance prefetching.
    """

    def build(scale: float) -> Pattern:
        inner = DistanceCycleScan(
            pc=_PC[0],
            base=_REGION[0],
            cycle=cycle,
            steps=scaled(steps, scale),
            refs_per_page=refs_per_page,
            sweeps=sweeps,
        )
        return _diluted(inner, hot, noise=noise)

    return build


def history_walk(
    walk_pages: int,
    refs_per_page: float,
    sweeps: int,
    strided_pages: int = 0,
    strided_sweeps: int = 1,
    strided_refs_per_page: float = 2.0,
    burst_runs: int = 12,
    hot: HotSpec = None,
) -> Builder:
    """Class (d) pointer-chasing with an optional strided side stream
    (the gcc/ammp/mcf archetype where history schemes lead).

    A fixed permutation of ``walk_pages`` is re-walked every sweep:
    RP's in-memory stack reconstructs the order regardless of footprint;
    MP needs ``walk_pages`` rows; stride schemes see noise. The strided
    side stream (interleaved in bursts) is the share of the miss stream
    DP and ASP *can* capture — its size tunes how close DP gets to RP.
    """

    def build(scale: float) -> Pattern:
        walk = PermutationWalk(
            pc=_PC[0],
            base=_REGION[0],
            count=walk_pages,
            refs_per_page=refs_per_page,
            sweeps=scaled(sweeps, scale),
            pc_pool=4,
        )
        if strided_pages <= 0:
            return _diluted(walk, hot)
        strided = StridedSweep(
            pc=_PC[1],
            base=_REGION[1],
            count=strided_pages,
            stride=1,
            refs_per_page=strided_refs_per_page,
            sweeps=scaled(strided_sweeps, scale),
        )
        inner = RoundRobinMix([walk, strided], burst_runs=burst_runs)
        return _diluted(inner, hot)

    return build


def alternation_app(
    core_pages: int,
    batches: int,
    rounds: int,
    refs_per_page: float,
    hot: HotSpec = None,
    core_only_rounds: bool = False,
) -> Builder:
    """Class (d) alternation (parser/vortex archetype): MP's ``s`` slots
    retain every alternating successor of a page, beating RP's single
    recency neighbourhood (which always reflects only the last round's
    batch).
    """

    def build(scale: float) -> Pattern:
        inner = MarkovAlternation(
            pc=_PC[0],
            base=_REGION[0],
            core_count=core_pages,
            batches=batches,
            rounds=scaled(rounds, scale),
            refs_per_page=refs_per_page,
            core_only_rounds=core_only_rounds,
        )
        return _diluted(inner, hot)

    return build


def random_touch(
    footprint: int,
    steps: int,
    refs_per_page: float,
    hot: HotSpec = None,
) -> Builder:
    """Class (e): uniform random (fma3d archetype) — nobody predicts."""

    def build(scale: float) -> Pattern:
        inner = RandomWalk(
            pc=_PC[0],
            base=_REGION[0],
            count=footprint,
            steps=scaled(steps, scale),
            refs_per_page=refs_per_page,
        )
        return _diluted(inner, hot)

    return build


def low_miss_app(
    hot_pages: int,
    laps: int,
    refs_per_page: float = 6.0,
    cold_pages: int = 0,
    cold_steps: int = 0,
) -> Builder:
    """Working set inside TLB reach (eon/g721 archetype): few misses,
    so "TLB prefetching is not as important for them anyway".

    An optional random cold sprinkle supplies the handful of misses the
    paper still plots for these apps.
    """

    def build(scale: float) -> Pattern:
        hot = HotSetLoop(
            pc=_PC[0],
            base=_REGION[0],
            count=hot_pages,
            laps=scaled(laps, scale),
            refs_per_page=refs_per_page,
            permute=True,  # the one-time cold fill must be unpredictable
        )
        if cold_pages <= 0 or cold_steps <= 0:
            return hot
        cold = RandomWalk(
            pc=_PC[1],
            base=_REGION[1],
            count=cold_pages,
            steps=scaled(cold_steps, scale),
            refs_per_page=1.0,
        )
        return RoundRobinMix([hot, cold], burst_runs=max(4, hot_pages // 2))

    return build


def dp_only_app(
    random_footprint: int,
    random_steps: int,
    cycle: Sequence[int],
    cycle_steps: int,
    refs_per_page: float,
    burst_runs: int = 16,
    hot: HotSpec = None,
) -> Builder:
    """Mostly-irregular stream with embedded distance-cycle bursts
    (gsm/jpeg/ks archetype): DP reaches ~10–20% accuracy from the
    bursts; every other mechanism stays near zero.
    """

    def build(scale: float) -> Pattern:
        noise = RandomWalk(
            pc=_PC[0],
            base=_REGION[0],
            count=random_footprint,
            steps=scaled(random_steps, scale),
            refs_per_page=refs_per_page,
        )
        bursts = DistanceCycleScan(
            pc=_PC[1],
            base=_REGION[1],
            cycle=cycle,
            steps=scaled(cycle_steps, scale),
            refs_per_page=refs_per_page,
        )
        inner = RoundRobinMix([noise, bursts], burst_runs=burst_runs)
        return _diluted(inner, hot)

    return build


def mixed_app(builders: Sequence[Builder], burst_runs: int = 16) -> Builder:
    """Interleave several archetypes (desktop/compiler-style phases)."""

    def build(scale: float) -> Pattern:
        return RoundRobinMix([b(scale) for b in builders], burst_runs=burst_runs)

    return build
