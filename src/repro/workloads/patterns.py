"""Reference-pattern primitives for synthesizing application traces.

Each primitive emits a run-length-encoded page reference stream as
parallel numpy arrays ``(pcs, pages, counts)``. The primitives map onto
the paper's Section 1 taxonomy of reference behaviour:

(a) regular strided, items touched once      -> :class:`StridedSweep`
    (``sweeps=1``), :class:`ChangingStrideSweep`
(b) regular strided, items touched repeatedly -> :class:`StridedSweep`
    (``sweeps>1``)
(c) strides that change over time             -> :class:`ChangingStrideSweep`
(d) irregular but repeating                   -> :class:`PermutationWalk`
    (``sweeps>1``), :class:`MarkovAlternation`,
    :class:`InterleavedStreams` / :class:`DistanceCycleScan` (the
    stride *changes* repeat even on first touch)
(e) no regularity                             -> :class:`RandomWalk`

``refs_per_page`` throttles the TLB miss rate: a page is referenced
that many times (on average) before the next page is touched, so a
pattern whose every new page misses yields a miss rate of about
``1 / refs_per_page``. :class:`WithHotTraffic` dilutes miss rates
further with TLB-resident hot-set references, the way a benchmark's
stack/global traffic does.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Emitted stream: (pcs, pages, counts), equal-length int64 arrays.
RunArrays = tuple[np.ndarray, np.ndarray, np.ndarray]


def _as_run_arrays(pcs: np.ndarray, pages: np.ndarray, counts: np.ndarray) -> RunArrays:
    return (
        np.ascontiguousarray(pcs, dtype=np.int64),
        np.ascontiguousarray(pages, dtype=np.int64),
        np.ascontiguousarray(counts, dtype=np.int64),
    )


def draw_counts(rng: np.random.Generator, n: int, refs_per_page: float) -> np.ndarray:
    """Draw ``n`` per-run reference counts averaging ``refs_per_page``.

    Counts are ``floor(refs_per_page)`` plus a Bernoulli unit for the
    fractional part, so the expected total is exact while every count
    stays >= 1.
    """
    if refs_per_page < 1.0:
        raise ConfigurationError(f"refs_per_page must be >= 1, got {refs_per_page}")
    base = int(refs_per_page)
    frac = refs_per_page - base
    counts = np.full(n, base, dtype=np.int64)
    if frac > 0.0:
        counts += rng.random(n) < frac
    return np.maximum(counts, 1)


class Pattern(abc.ABC):
    """A generator of run-length-encoded page references."""

    @abc.abstractmethod
    def emit(self, rng: np.random.Generator) -> RunArrays:
        """Produce the pattern's reference runs using ``rng``."""


class StridedSweep(Pattern):
    """Visit ``count`` pages at a constant stride, ``sweeps`` times over.

    One sweep models a single array traversal (behaviour class (a));
    repeated sweeps model the repeated traversals of galgel-class codes
    (class (b)). With ``count`` exceeding the TLB reach, every touched
    page misses, yielding a miss rate of ``~1/refs_per_page``.
    """

    def __init__(
        self,
        pc: int,
        base: int,
        count: int,
        stride: int = 1,
        refs_per_page: float = 1.0,
        sweeps: int = 1,
    ) -> None:
        if count <= 0 or sweeps <= 0:
            raise ConfigurationError("count and sweeps must be > 0")
        if stride == 0:
            raise ConfigurationError("stride must be non-zero")
        self.pc = pc
        self.base = base
        self.count = count
        self.stride = stride
        self.refs_per_page = refs_per_page
        self.sweeps = sweeps

    def emit(self, rng: np.random.Generator) -> RunArrays:
        one_sweep = self.base + np.arange(self.count, dtype=np.int64) * self.stride
        if self.stride < 0:
            one_sweep -= self.stride * (self.count - 1)  # keep pages >= base
        pages = np.tile(one_sweep, self.sweeps)
        n = pages.size
        pcs = np.full(n, self.pc, dtype=np.int64)
        counts = draw_counts(rng, n, self.refs_per_page)
        return _as_run_arrays(pcs, pages, counts)


class ChangingStrideSweep(Pattern):
    """Strided traversal whose stride changes between segments.

    Behaviour class (c): the same data structure is walked with
    different strides over time (e.g. row- then column-order passes).
    An adaptive stride scheme re-locks after each change; a plain
    history scheme sees each page once and learns nothing on one-touch
    data.
    """

    def __init__(
        self,
        pc: int,
        base: int,
        segment_pages: int,
        strides: Sequence[int],
        refs_per_page: float = 1.0,
        sweeps: int = 1,
    ) -> None:
        if segment_pages <= 0 or sweeps <= 0:
            raise ConfigurationError("segment_pages and sweeps must be > 0")
        if not strides or any(s == 0 for s in strides):
            raise ConfigurationError("strides must be non-empty and non-zero")
        self.pc = pc
        self.base = base
        self.segment_pages = segment_pages
        self.strides = list(strides)
        self.refs_per_page = refs_per_page
        self.sweeps = sweeps

    def emit(self, rng: np.random.Generator) -> RunArrays:
        segments: list[np.ndarray] = []
        cursor = self.base
        for stride in self.strides:
            steps = np.arange(self.segment_pages, dtype=np.int64) * stride
            if stride < 0:
                cursor -= stride * (self.segment_pages - 1)
            segment = cursor + steps
            segments.append(segment)
            cursor = int(segment.max()) + 1
        one_sweep = np.concatenate(segments)
        pages = np.tile(one_sweep, self.sweeps)
        pcs = np.full(pages.size, self.pc, dtype=np.int64)
        counts = draw_counts(rng, pages.size, self.refs_per_page)
        return _as_run_arrays(pcs, pages, counts)


class InterleavedStreams(Pattern):
    """K strided streams advancing in lock-step (stencil/vector codes).

    The page-level miss stream of ``c[i] = a[i] + b[i]``-style loops:
    page transitions of the streams arrive interleaved, so the distance
    sequence cycles through the inter-stream gaps — regular, yet not a
    constant stride. With ``shared_pcs=True`` (default) the misses come
    from a small rotating PC pool, modelling the page-crossing touch
    falling on different instructions of an unrolled/fused loop
    iteration — which denies a PC-indexed stride table a stable stride,
    while the distance *cycle* remains trivially learnable. This is the
    swim/mgrid/applu-class pattern where the paper finds DP far ahead.
    """

    def __init__(
        self,
        pc: int,
        streams: Sequence[tuple[int, int]],
        length: int,
        refs_per_page: float = 1.0,
        sweeps: int = 1,
        shared_pcs: bool = True,
        pc_pool: int = 2,
    ) -> None:
        if not streams:
            raise ConfigurationError("need at least one stream")
        if length <= 0 or sweeps <= 0:
            raise ConfigurationError("length and sweeps must be > 0")
        if any(stride == 0 for _, stride in streams):
            raise ConfigurationError("stream strides must be non-zero")
        self.pc = pc
        self.streams = list(streams)
        self.length = length
        self.refs_per_page = refs_per_page
        self.sweeps = sweeps
        self.shared_pcs = shared_pcs
        self.pc_pool = max(1, pc_pool)

    def emit(self, rng: np.random.Generator) -> RunArrays:
        steps = np.arange(self.length, dtype=np.int64)
        columns = [base + steps * stride for base, stride in self.streams]
        matrix = np.stack(columns, axis=1)  # (length, K)
        one_sweep = matrix.reshape(-1)
        pages = np.tile(one_sweep, self.sweeps)
        n = pages.size
        if self.shared_pcs:
            pcs = self.pc + (np.arange(n, dtype=np.int64) % self.pc_pool)
        else:
            stream_pcs = self.pc + np.arange(len(self.streams), dtype=np.int64)
            pcs = np.tile(stream_pcs, self.length * self.sweeps)
        counts = draw_counts(rng, n, self.refs_per_page)
        return _as_run_arrays(pcs, pages, counts)


class DistanceCycleScan(Pattern):
    """Pages advance by a repeating cycle of distances.

    The paper's running example — the reference string 1, 2, 4, 5, 7, 8
    — is ``DistanceCycleScan(cycle=[1, 2])``: DP captures it with two
    table rows while MP needs one row per page.
    """

    def __init__(
        self,
        pc: int,
        base: int,
        cycle: Sequence[int],
        steps: int,
        refs_per_page: float = 1.0,
        sweeps: int = 1,
        pc_pool: int = 1,
    ) -> None:
        if not cycle or any(d == 0 for d in cycle):
            raise ConfigurationError("cycle must be non-empty with non-zero distances")
        if steps <= 0 or sweeps <= 0:
            raise ConfigurationError("steps and sweeps must be > 0")
        self.pc = pc
        self.base = base
        self.cycle = list(cycle)
        self.steps = steps
        self.refs_per_page = refs_per_page
        self.sweeps = sweeps
        self.pc_pool = max(1, pc_pool)

    def emit(self, rng: np.random.Generator) -> RunArrays:
        reps = -(-self.steps // len(self.cycle))  # ceil division
        deltas = np.tile(np.asarray(self.cycle, dtype=np.int64), reps)[: self.steps]
        offsets = np.concatenate(([0], np.cumsum(deltas)[:-1]))
        one_sweep = self.base + offsets
        minimum = int(one_sweep.min())
        if minimum < 0:  # keep page numbers non-negative for mixed-sign cycles
            one_sweep = one_sweep - minimum
        pages = np.tile(one_sweep, self.sweeps)
        n = pages.size
        pcs = self.pc + (np.arange(n, dtype=np.int64) % self.pc_pool)
        counts = draw_counts(rng, n, self.refs_per_page)
        return _as_run_arrays(pcs, pages, counts)


class PermutationWalk(Pattern):
    """Walk a fixed random permutation of a region, ``sweeps`` times.

    Behaviour class (d) in its purest form: no stride regularity at
    all, but each sweep repeats the previous sweep's order exactly —
    pointer-chasing over a stable heap (the mcf/ammp class). History
    mechanisms (RP, and MP when its table is big enough) excel from the
    second sweep on; stride mechanisms never lock.

    ``reshuffle_each_sweep=True`` destroys the repetition (class (e)
    behaviour with a uniform footprint).
    """

    def __init__(
        self,
        pc: int,
        base: int,
        count: int,
        refs_per_page: float = 1.0,
        sweeps: int = 2,
        reshuffle_each_sweep: bool = False,
        pc_pool: int = 4,
    ) -> None:
        if count <= 1 or sweeps <= 0:
            raise ConfigurationError("count must be > 1 and sweeps > 0")
        self.pc = pc
        self.base = base
        self.count = count
        self.refs_per_page = refs_per_page
        self.sweeps = sweeps
        self.reshuffle_each_sweep = reshuffle_each_sweep
        self.pc_pool = max(1, pc_pool)

    def emit(self, rng: np.random.Generator) -> RunArrays:
        if self.reshuffle_each_sweep:
            pages = np.concatenate(
                [self.base + rng.permutation(self.count) for _ in range(self.sweeps)]
            )
        else:
            order = self.base + rng.permutation(self.count)
            pages = np.tile(order, self.sweeps)
        n = pages.size
        pcs = self.pc + (np.arange(n, dtype=np.int64) % self.pc_pool)
        counts = draw_counts(rng, n, self.refs_per_page)
        return _as_run_arrays(pcs, pages, counts)


class MarkovAlternation(Pattern):
    """A core sequence alternated with recurring side batches.

    The paper's parser/vortex explanation: a reference string like
    1,2,3,4, 1,5,2,6,3,7,4,8, 1,2,3,4, ... where the successor of a core
    page *alternates* between the next core page and a side page. With
    ``s = 2`` slots MP retains both successors and predicts either
    continuation; RP's single recency neighbourhood keeps being
    reorganized and does worse.

    With ``core_only_rounds=True``, rounds alternate between the bare
    core sequence and the core interleaved with one of ``batches``
    recurring side batches; with ``False`` every round interleaves,
    rotating through the batches — each core page then has exactly
    ``batches`` alternating successors, the regime where MP's ``s``
    slots beat RP's single recency neighbourhood most cleanly.

    With ``permute_core=True`` (default) the core and batches are fixed
    random page orders — pointer-linked structures — so neither a
    PC-indexed stride table nor a pure distance table can shortcut the
    pattern, exactly the regime where per-page Markov history wins.
    PCs are drawn randomly from a small pool for the same reason.
    """

    def __init__(
        self,
        pc: int,
        base: int,
        core_count: int,
        batches: int = 2,
        rounds: int = 8,
        refs_per_page: float = 1.0,
        pc_pool: int = 4,
        permute_core: bool = True,
        core_only_rounds: bool = True,
    ) -> None:
        if core_count <= 1 or batches <= 0 or rounds <= 0:
            raise ConfigurationError("core_count > 1, batches > 0, rounds > 0 required")
        self.pc = pc
        self.base = base
        self.core_count = core_count
        self.batches = batches
        self.rounds = rounds
        self.refs_per_page = refs_per_page
        self.pc_pool = max(1, pc_pool)
        self.permute_core = permute_core
        self.core_only_rounds = core_only_rounds

    def emit(self, rng: np.random.Generator) -> RunArrays:
        if self.permute_core:
            core = self.base + rng.permutation(self.core_count).astype(np.int64)
        else:
            core = self.base + np.arange(self.core_count, dtype=np.int64)
        batch_pages = []
        for b in range(self.batches):
            batch = np.arange(self.core_count, dtype=np.int64)
            if self.permute_core:
                batch = rng.permutation(self.core_count).astype(np.int64)
            batch_pages.append(self.base + self.core_count * (1 + b) + batch)
        chunks: list[np.ndarray] = []
        for round_index in range(self.rounds):
            if self.core_only_rounds and round_index % 2 == 0:
                chunks.append(core)
                continue
            if self.core_only_rounds:
                batch = batch_pages[(round_index // 2) % self.batches]
            else:
                batch = batch_pages[round_index % self.batches]
            interleaved = np.empty(2 * self.core_count, dtype=np.int64)
            interleaved[0::2] = core
            interleaved[1::2] = batch
            chunks.append(interleaved)
        pages = np.concatenate(chunks)
        n = pages.size
        pcs = self.pc + rng.integers(0, self.pc_pool, size=n, dtype=np.int64)
        counts = draw_counts(rng, n, self.refs_per_page)
        return _as_run_arrays(pcs, pages, counts)


class RandomWalk(Pattern):
    """Uniformly random page touches: behaviour class (e), fma3d-style.

    Nothing repeats and strides carry no signal, so no mechanism should
    achieve noticeable accuracy (a negative control for the harness).
    """

    def __init__(
        self,
        pc: int,
        base: int,
        count: int,
        steps: int,
        refs_per_page: float = 1.0,
        pc_pool: int = 8,
    ) -> None:
        if count <= 1 or steps <= 0:
            raise ConfigurationError("count must be > 1 and steps > 0")
        self.pc = pc
        self.base = base
        self.count = count
        self.steps = steps
        self.refs_per_page = refs_per_page
        self.pc_pool = max(1, pc_pool)

    def emit(self, rng: np.random.Generator) -> RunArrays:
        pages = self.base + rng.integers(0, self.count, size=self.steps, dtype=np.int64)
        pcs = self.pc + rng.integers(0, self.pc_pool, size=self.steps, dtype=np.int64)
        counts = draw_counts(rng, self.steps, self.refs_per_page)
        return _as_run_arrays(pcs, pages, counts)


class HotSetLoop(Pattern):
    """Round-robin references over a set small enough to stay resident.

    Produces almost no misses after the first lap — the eon/g721 class
    where "TLB prefetching is not as important anyway". Also the
    building block for diluting other patterns via
    :class:`WithHotTraffic`.
    """

    def __init__(
        self,
        pc: int,
        base: int,
        count: int,
        laps: int,
        refs_per_page: float = 4.0,
        pc_pool: int = 4,
        permute: bool = False,
    ) -> None:
        if count <= 0 or laps <= 0:
            raise ConfigurationError("count and laps must be > 0")
        self.pc = pc
        self.base = base
        self.count = count
        self.laps = laps
        self.refs_per_page = refs_per_page
        self.pc_pool = max(1, pc_pool)
        self.permute = permute

    def emit(self, rng: np.random.Generator) -> RunArrays:
        if self.permute:
            # Permuted lap order: the one-time cold fill of the hot set
            # is unpredictable (no mechanism should score on it).
            lap = self.base + rng.permutation(self.count).astype(np.int64)
        else:
            lap = self.base + np.arange(self.count, dtype=np.int64)
        pages = np.tile(lap, self.laps)
        n = pages.size
        pcs = self.pc + (np.arange(n, dtype=np.int64) % self.pc_pool)
        counts = draw_counts(rng, n, self.refs_per_page)
        return _as_run_arrays(pcs, pages, counts)


class WithHotTraffic(Pattern):
    """Interleave an inner pattern with TLB-resident hot-set references.

    A run to the next page of a small rotating hot set is emitted after
    every ``burst_every`` inner runs. Hot pages stay TLB-resident, so
    the *miss stream* of the inner pattern is preserved while the total
    reference count — and hence the miss rate — is diluted by roughly
    ``1 + hot_refs_per_run / inner_refs_per_run``. This models the
    stack/global traffic that gives real benchmarks miss rates of a few
    percent rather than tens of percent.

    ``burst_every > 1`` concentrates the dilution: inner runs (and
    their misses) arrive in back-to-back bursts separated by long
    hot-set stretches — the bursty miss timing of pointer-chasing
    phases, which matters to the cycle model (a prefetch channel that
    keeps up with the *average* miss rate can still saturate inside
    bursts). ``hot_refs_per_run`` stays the per-inner-run average, so
    the miss rate is independent of the burst factor.
    """

    def __init__(
        self,
        inner: Pattern,
        hot_pc: int,
        hot_base: int,
        hot_pages: int = 24,
        hot_refs_per_run: float = 8.0,
        burst_every: int = 1,
    ) -> None:
        if hot_pages <= 0:
            raise ConfigurationError("hot_pages must be > 0")
        if hot_refs_per_run < 1.0:
            raise ConfigurationError("hot_refs_per_run must be >= 1")
        if burst_every < 1:
            raise ConfigurationError("burst_every must be >= 1")
        self.inner = inner
        self.hot_pc = hot_pc
        self.hot_base = hot_base
        self.hot_pages = hot_pages
        self.hot_refs_per_run = hot_refs_per_run
        self.burst_every = burst_every

    def emit(self, rng: np.random.Generator) -> RunArrays:
        in_pcs, in_pages, in_counts = self.inner.emit(rng)
        n = in_pages.size
        k = n // self.burst_every
        if k == 0:
            return _as_run_arrays(in_pcs, in_pages, in_counts)
        hot_pages = self.hot_base + (np.arange(k, dtype=np.int64) % self.hot_pages)
        hot_pcs = np.full(k, self.hot_pc, dtype=np.int64)
        hot_counts = draw_counts(
            rng, k, self.hot_refs_per_run * self.burst_every
        )
        insert_positions = (np.arange(k, dtype=np.int64) + 1) * self.burst_every
        pages = np.insert(in_pages, insert_positions, hot_pages)
        pcs = np.insert(in_pcs, insert_positions, hot_pcs)
        counts = np.insert(in_counts, insert_positions, hot_counts)
        return _as_run_arrays(pcs, pages, counts)


class WithNoise(Pattern):
    """Inject occasional random-page runs into an inner pattern.

    A fraction of the inner runs are followed by a reference to a
    random page in a dedicated noise region. Unlike hot-set traffic the
    noise pages *do* miss, so they dilute every mechanism's accuracy and
    break prediction streaks — the impurity that keeps real benchmarks'
    bars below 1.0. Noise references use their own PC block so they do
    not corrupt the inner pattern's per-PC stride streams.
    """

    def __init__(
        self,
        inner: Pattern,
        fraction: float,
        noise_pc: int,
        noise_base: int,
        noise_pages: int = 50_000,
        refs_per_page: float = 1.0,
    ) -> None:
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError(f"fraction must be in [0, 1), got {fraction}")
        if noise_pages <= 0:
            raise ConfigurationError("noise_pages must be > 0")
        self.inner = inner
        self.fraction = fraction
        self.noise_pc = noise_pc
        self.noise_base = noise_base
        self.noise_pages = noise_pages
        self.refs_per_page = refs_per_page

    def emit(self, rng: np.random.Generator) -> RunArrays:
        in_pcs, in_pages, in_counts = self.inner.emit(rng)
        if self.fraction == 0.0:
            return _as_run_arrays(in_pcs, in_pages, in_counts)
        n = in_pages.size
        inject_after = np.flatnonzero(rng.random(n) < self.fraction)
        k = inject_after.size
        if k == 0:
            return _as_run_arrays(in_pcs, in_pages, in_counts)
        noise_pages = self.noise_base + rng.integers(
            0, self.noise_pages, size=k, dtype=np.int64
        )
        noise_counts = draw_counts(rng, k, self.refs_per_page)
        # Build the merged stream: positions after the chosen inner runs.
        insert_positions = inject_after + 1
        pages = np.insert(in_pages, insert_positions, noise_pages)
        pcs = np.insert(in_pcs, insert_positions, np.full(k, self.noise_pc, dtype=np.int64))
        counts = np.insert(in_counts, insert_positions, noise_counts)
        return _as_run_arrays(pcs, pages, counts)


class Concat(Pattern):
    """Play several patterns back to back (program phases)."""

    def __init__(self, *patterns: Pattern) -> None:
        if not patterns:
            raise ConfigurationError("Concat needs at least one pattern")
        self.patterns = patterns

    def emit(self, rng: np.random.Generator) -> RunArrays:
        parts = [pattern.emit(rng) for pattern in self.patterns]
        return _as_run_arrays(
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
            np.concatenate([p[2] for p in parts]),
        )


class RoundRobinMix(Pattern):
    """Interleave patterns in bursts of ``burst_runs`` runs each.

    Models independent access streams (e.g. two data structures used in
    the same loop nest) whose misses arrive interleaved. Patterns that
    run out of runs drop out of the rotation.
    """

    def __init__(self, patterns: Sequence[Pattern], burst_runs: int = 8) -> None:
        if not patterns:
            raise ConfigurationError("RoundRobinMix needs at least one pattern")
        if burst_runs <= 0:
            raise ConfigurationError("burst_runs must be > 0")
        self.patterns = list(patterns)
        self.burst_runs = burst_runs

    def emit(self, rng: np.random.Generator) -> RunArrays:
        parts = [pattern.emit(rng) for pattern in self.patterns]
        cursors = [0] * len(parts)
        out_pcs: list[np.ndarray] = []
        out_pages: list[np.ndarray] = []
        out_counts: list[np.ndarray] = []
        remaining = sum(p[1].size for p in parts)
        while remaining > 0:
            for index, (pcs, pages, counts) in enumerate(parts):
                cursor = cursors[index]
                if cursor >= pages.size:
                    continue
                end = min(cursor + self.burst_runs, pages.size)
                out_pcs.append(pcs[cursor:end])
                out_pages.append(pages[cursor:end])
                out_counts.append(counts[cursor:end])
                cursors[index] = end
                remaining -= end - cursor
        return _as_run_arrays(
            np.concatenate(out_pcs),
            np.concatenate(out_pages),
            np.concatenate(out_counts),
        )
