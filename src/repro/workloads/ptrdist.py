"""Pointer-Intensive benchmark suite models (5 apps).

The suite (anagram, bc, ft, ks, yacr2) evaluates "the mechanisms for
non-array based reference behavior, which can be more irregular".
Working sets are small — the paper notes bc and ks have so few TLB
misses that neither history nor strides establish, while DP is still
the only mechanism with any noticeable predictions on them.
"""

from __future__ import annotations

from repro.workloads.composer import AppSpec, BehaviorClass
from repro.workloads import recipes


def _ptr(
    name: str,
    behavior: BehaviorClass,
    paper_note: str,
    builder,
    seed: int,
) -> AppSpec:
    return AppSpec(
        name=name,
        suite="ptrdist",
        behavior=behavior,
        paper_note=paper_note,
        builder=builder,
        seed=seed,
    )


PTRDIST_APPS: tuple[AppSpec, ...] = (
    _ptr(
        "anagram",
        BehaviorClass.STRIDED_ONE_TOUCH,
        "Cold misses prominent (small working set); ASP captures the "
        "first-time references, DP keeps pace.",
        recipes.one_touch_strided(
            segment_pages=900, strides=[1, 1, 2], refs_per_page=1.8,
            repeats=3, hot=(24, 270.0),
        ),
        seed=4001,
    ),
    _ptr(
        "bc",
        BehaviorClass.IRREGULAR_REPEATING,
        "Few TLB misses; DP is the only mechanism with noticeable "
        "predictions (and one where DP does much better than others).",
        recipes.dp_only_app(
            random_footprint=400, random_steps=2_600,
            cycle=[1, 3], cycle_steps=700, refs_per_page=3.0,
            burst_runs=14, hot=(40, 480.0),
        ),
        seed=4002,
    ),
    _ptr(
        "ft",
        BehaviorClass.MIXED,
        "Small pointer graph re-walked plus cold edge scans; modest "
        "accuracy everywhere, ASP nonzero (one of the apps where ASP's "
        "r=1024 table over-prefetches).",
        recipes.mixed_app(
            [
                recipes.history_walk(
                    walk_pages=130, refs_per_page=1.5, sweeps=25,
                    hot=(24, 330.0),
                ),
                recipes.one_touch_strided(
                    segment_pages=260, strides=[1], refs_per_page=2.0,
                    repeats=2, hot=(24, 330.0),
                ),
            ],
            burst_runs=14,
        ),
        seed=4003,
    ),
    _ptr(
        "ks",
        BehaviorClass.IRREGULAR_REPEATING,
        "Few TLB misses; only DP makes noticeable predictions (<20%).",
        recipes.dp_only_app(
            random_footprint=350, random_steps=2_400,
            cycle=[2, 2, 5], cycle_steps=650, refs_per_page=3.0,
            burst_runs=14, hot=(36, 450.0),
        ),
        seed=4004,
    ),
    _ptr(
        "yacr2",
        BehaviorClass.STRIDED_ONE_TOUCH,
        "Cold misses prominent; ASP (and DP) capture the first-time "
        "strided references.",
        recipes.one_touch_strided(
            segment_pages=800, strides=[1, 2, 1], refs_per_page=1.8,
            repeats=3, hot=(24, 255.0),
        ),
        seed=4005,
    ),
)
