"""Synthetic application models standing in for the paper's 56 traces.

The paper drives its evaluation with SimpleScalar/Shade traces of SPEC
CPU2000 (26 apps), MediaBench (20), the Etch desktop traces (5) and the
Pointer-Intensive suite (5). Those binaries and traces are not
reproducible here, so each application is modelled as a composition of
reference-pattern primitives chosen to land it in the behaviour class
the paper reports for it — see DESIGN.md section 2 for the substitution
argument and :mod:`repro.workloads.registry` for the lookup API.

- :mod:`repro.workloads.patterns` — the pattern primitives (strided
  sweeps, interleaved streams, permutation walks, Markov alternation,
  random walks, hot-set traffic...).
- :mod:`repro.workloads.composer` — :class:`AppSpec` and trace building.
- :mod:`repro.workloads.spec2000`, :mod:`~repro.workloads.mediabench`,
  :mod:`~repro.workloads.etch`, :mod:`~repro.workloads.ptrdist` — the
  per-suite registries.
"""

from repro.workloads.composer import AppSpec, BehaviorClass, build_trace
from repro.workloads.registry import (
    all_app_names,
    app_names_for_suite,
    get_app,
    get_trace,
    SUITES,
)

__all__ = [
    "AppSpec",
    "BehaviorClass",
    "SUITES",
    "all_app_names",
    "app_names_for_suite",
    "build_trace",
    "get_app",
    "get_trace",
]
