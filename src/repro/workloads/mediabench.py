"""MediaBench application models (20 apps).

MediaBench applications are "characteristic of those in embedded and
media processing systems": smaller working sets than SPEC, where cold
misses become prominent — which is why first-touch-capable mechanisms
(ASP, DP) shine on this suite in the paper's Figure 8 while history
schemes often sit near zero.
"""

from __future__ import annotations

from repro.workloads.composer import AppSpec, BehaviorClass
from repro.workloads import recipes

_HIGH = frozenset({"high-miss"})


def _media(
    name: str,
    behavior: BehaviorClass,
    paper_note: str,
    builder,
    seed: int,
    tags: frozenset[str] = frozenset(),
) -> AppSpec:
    return AppSpec(
        name=name,
        suite="mediabench",
        behavior=behavior,
        paper_note=paper_note,
        builder=builder,
        seed=seed,
        tags=tags,
    )


MEDIABENCH_APPS: tuple[AppSpec, ...] = (
    _media(
        "adpcm-enc",
        BehaviorClass.STRIDED_REPEATED,
        "Second-highest miss rate (0.192). RP and ASP do very well; MP "
        "performs very poorly — the footprint needs more history rows "
        "than a small table has; DP matches the leaders.",
        recipes.strided_repeated(footprint=2400, refs_per_page=5.2, sweeps=55),
        seed=2001,
        tags=_HIGH,
    ),
    _media(
        "adpcm-dec",
        BehaviorClass.STRIDED_REPEATED,
        "Same shape as adpcm-enc: RP/ASP/DP good, MP very poor — but "
        "the decoder's compressed input keeps its miss rate below the "
        "paper's top-8 band (only adpcm-enc appears in that list).",
        recipes.strided_repeated(
            footprint=2000, refs_per_page=5.0, sweeps=40, hot=(24, 90.0),
        ),
        seed=2002,
    ),
    _media(
        "epic",
        BehaviorClass.STRIDED_ONE_TOUCH,
        "First-time references: ASP captures them, DP keeps pace, "
        "history schemes cannot.",
        recipes.one_touch_strided(
            segment_pages=1400, strides=[1, 2], refs_per_page=2.2,
            repeats=3, hot=(24, 285.0),
        ),
        seed=2003,
    ),
    _media(
        "unepic",
        BehaviorClass.STRIDED_ONE_TOUCH,
        "Like epic (inverse transform): ASP/DP good on cold strided data.",
        recipes.one_touch_strided(
            segment_pages=1100, strides=[2, 1], refs_per_page=2.0,
            repeats=3, hot=(24, 300.0),
        ),
        seed=2004,
    ),
    _media(
        "gsm-enc",
        BehaviorClass.IRREGULAR_REPEATING,
        "DP is the only mechanism with noticeable predictions, though "
        "accuracy stays under ~20%.",
        recipes.dp_only_app(
            random_footprint=1800, random_steps=22_000,
            cycle=[1, 4, 2], cycle_steps=5_000, refs_per_page=2.0,
            hot=(24, 240.0),
        ),
        seed=2005,
    ),
    _media(
        "gsm-dec",
        BehaviorClass.IRREGULAR_REPEATING,
        "Like gsm-enc: only DP makes noticeable predictions (<20%).",
        recipes.dp_only_app(
            random_footprint=1600, random_steps=20_000,
            cycle=[2, 5], cycle_steps=4_200, refs_per_page=2.0,
            hot=(24, 255.0),
        ),
        seed=2006,
    ),
    _media(
        "rasta",
        BehaviorClass.STRIDED_ONE_TOUCH,
        "Moderate accuracy for the stride/distance schemes on cold "
        "filter-bank sweeps.",
        recipes.one_touch_strided(
            segment_pages=700, strides=[1, 3, 1], refs_per_page=2.4,
            repeats=3, hot=(24, 270.0),
        ),
        seed=2007,
    ),
    _media(
        "gs",
        BehaviorClass.IRREGULAR_REPEATING,
        "RP gives best or close-to-best accuracy (history repeats).",
        recipes.history_walk(
            walk_pages=210, refs_per_page=1.5, sweeps=45,
            strided_pages=80, strided_sweeps=10, strided_refs_per_page=1.5,
            hot=(24, 285.0),
        ),
        seed=2008,
    ),
    _media(
        "g721-enc",
        BehaviorClass.LOW_MISS,
        "So few TLB misses that neither history nor strides establish; "
        "prefetching is unimportant.",
        recipes.low_miss_app(
            hot_pages=40, laps=5000, refs_per_page=6.0,
            cold_pages=400, cold_steps=250,
        ),
        seed=2009,
    ),
    _media(
        "g721-dec",
        BehaviorClass.LOW_MISS,
        "Like g721-enc: few misses, no mechanism predicts.",
        recipes.low_miss_app(
            hot_pages=44, laps=4600, refs_per_page=6.0,
            cold_pages=400, cold_steps=230,
        ),
        seed=2010,
    ),
    _media(
        "mipmap-mesa",
        BehaviorClass.STRIDED_ONE_TOUCH,
        "ASP captures the first-time texture sweeps; DP matches.",
        recipes.one_touch_strided(
            segment_pages=2000, strides=[1, 2, 4], refs_per_page=2.0,
            repeats=3, hot=(24, 270.0),
        ),
        seed=2011,
    ),
    _media(
        "jpeg-enc",
        BehaviorClass.IRREGULAR_REPEATING,
        "Only DP makes noticeable predictions (block traversals embed "
        "a distance cycle in otherwise irregular misses).",
        recipes.dp_only_app(
            random_footprint=1500, random_steps=20_000,
            cycle=[1, 7], cycle_steps=4_600, refs_per_page=2.2,
            hot=(24, 255.0),
        ),
        seed=2012,
    ),
    _media(
        "jpeg-dec",
        BehaviorClass.IRREGULAR_REPEATING,
        "Like jpeg-enc: only DP noticeable, under 20%.",
        recipes.dp_only_app(
            random_footprint=1400, random_steps=19_000,
            cycle=[7, 1], cycle_steps=4_200, refs_per_page=2.2,
            hot=(24, 255.0),
        ),
        seed=2013,
    ),
    _media(
        "texgen-mesa",
        BehaviorClass.STRIDED_REPEATED,
        "RP does better than MP (long history over a big footprint); "
        "ASP and DP also good thanks to stride regularity.",
        recipes.strided_repeated(
            footprint=1900, refs_per_page=3.2, sweeps=40, hot=(24, 270.0),
        ),
        seed=2014,
    ),
    _media(
        "mpeg-enc",
        BehaviorClass.STRIDED_REPEATED,
        "Strided repeats within a modest footprint: all mechanisms "
        "reasonable, MP included.",
        recipes.strided_repeated(
            footprint=240, refs_per_page=2.8, sweeps=110, hot=(24, 285.0),
        ),
        seed=2015,
    ),
    _media(
        "mpeg-dec",
        BehaviorClass.IRREGULAR_REPEATING,
        "DP does much better than the others (motion-compensation row "
        "streams interleave into a distance cycle).",
        recipes.interleaved_stream_app(
            num_streams=3, stream_gap=450_000, length=8_000,
            refs_per_page=2.2, sweeps=1, pc_pool=2, hot=(24, 270.0),
        ),
        seed=2016,
    ),
    _media(
        "pgp-enc",
        BehaviorClass.STRIDED_ONE_TOUCH,
        "First-time references captured by ASP (and DP).",
        recipes.one_touch_strided(
            segment_pages=1300, strides=[1], refs_per_page=2.0,
            repeats=3, hot=(24, 300.0),
        ),
        seed=2017,
    ),
    _media(
        "pgp-dec",
        BehaviorClass.LOW_MISS,
        "Few TLB misses; no mechanism makes significant predictions.",
        recipes.low_miss_app(
            hot_pages=52, laps=4400, refs_per_page=6.0,
            cold_pages=700, cold_steps=320,
        ),
        seed=2018,
    ),
    _media(
        "pegwit-enc",
        BehaviorClass.IRREGULAR_REPEATING,
        "Mostly irregular crypto access; DP alone gets slight traction.",
        recipes.dp_only_app(
            random_footprint=900, random_steps=12_000,
            cycle=[3, 2, 4], cycle_steps=2_200, refs_per_page=2.0,
            hot=(24, 270.0),
        ),
        seed=2019,
    ),
    _media(
        "pegwit-dec",
        BehaviorClass.IRREGULAR_REPEATING,
        "Like pegwit-enc: DP slight, others near zero.",
        recipes.dp_only_app(
            random_footprint=850, random_steps=11_000,
            cycle=[2, 3], cycle_steps=2_000, refs_per_page=2.0,
            hot=(24, 270.0),
        ),
        seed=2020,
    ),
)
