"""Queryable, serializable collections of simulation results.

A :class:`ResultSet` wraps the :class:`~repro.sim.stats.PrefetchRunStats`
rows a :class:`~repro.run.runner.Runner` produced and gives callers the
operations every table/figure script was hand-rolling: field-based
filtering, grouping, pivoting into ``workload -> mechanism -> value``
dictionaries, flat row export, and JSON save/load so sweeps run on
different machines (or at different times) can be joined and compared.

Field names accepted by :meth:`ResultSet.filter`, :meth:`group_by`,
:meth:`pivot` and :meth:`to_rows` resolve against, in order: dataclass
fields (``workload``, ``mechanism``, ...), derived properties
(``prediction_accuracy``, ``miss_rate``, ...), then the per-run
``extra`` annotations (``spec_key``, ``scale``, sweep coordinates...).
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import asdict, fields
from pathlib import Path
from typing import Any

from repro.errors import ResultMergeError
from repro.sim.stats import PrefetchRunStats

#: Stored dataclass fields, in declaration order.
STAT_FIELDS: tuple[str, ...] = tuple(
    f.name for f in fields(PrefetchRunStats) if f.name != "extra"
)

#: Derived metrics exposed alongside the stored fields.
DERIVED_FIELDS: tuple[str, ...] = (
    "prediction_accuracy",
    "miss_rate",
    "memory_ops_total",
    "memory_ops_per_miss",
    "buffer_waste_fraction",
)

_SCHEMA = "repro.resultset/v1"


def value_of(run: PrefetchRunStats, name: str) -> Any:
    """Resolve ``name`` on a run: field, derived metric, or extra key."""
    if name in STAT_FIELDS or name in DERIVED_FIELDS:
        return getattr(run, name)
    if name in run.extra:
        return run.extra[name]
    raise KeyError(
        f"unknown result field {name!r}; stored fields: {STAT_FIELDS}, "
        f"derived: {DERIVED_FIELDS}, extra keys on this run: "
        f"{tuple(run.extra)}"
    )


class ResultSet(Sequence[PrefetchRunStats]):
    """An ordered, immutable-by-convention collection of run results."""

    def __init__(self, runs: Iterable[PrefetchRunStats] = ()) -> None:
        self._runs: list[PrefetchRunStats] = list(runs)

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._runs)

    def __iter__(self) -> Iterator[PrefetchRunStats]:
        return iter(self._runs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ResultSet(self._runs[index])
        return self._runs[index]

    def __add__(self, other: "ResultSet") -> "ResultSet":
        return ResultSet([*self._runs, *other._runs])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self._runs == other._runs

    def __repr__(self) -> str:
        workloads = {run.workload for run in self._runs}
        mechanisms = {run.mechanism for run in self._runs}
        return (
            f"ResultSet({len(self._runs)} runs, "
            f"{len(workloads)} workloads, {len(mechanisms)} mechanisms)"
        )

    @property
    def runs(self) -> list[PrefetchRunStats]:
        """The underlying rows (a defensive copy)."""
        return list(self._runs)

    # -- querying ----------------------------------------------------------

    def filter(
        self,
        predicate: Callable[[PrefetchRunStats], bool] | None = None,
        **equals: Any,
    ) -> "ResultSet":
        """Rows matching a predicate and/or field equality constraints.

        ``results.filter(workload="galgel", mechanism_name="DP")``
        """
        selected = self._runs
        if predicate is not None:
            selected = [run for run in selected if predicate(run)]
        for name, wanted in equals.items():
            selected = [run for run in selected if value_of(run, name) == wanted]
        return ResultSet(selected)

    def group_by(
        self, key: str | Callable[[PrefetchRunStats], Any]
    ) -> dict[Any, "ResultSet"]:
        """Partition rows by a field name or key function."""
        key_of = key if callable(key) else (lambda run: value_of(run, key))
        groups: dict[Any, list[PrefetchRunStats]] = {}
        for run in self._runs:
            groups.setdefault(key_of(run), []).append(run)
        return {group: ResultSet(runs) for group, runs in groups.items()}

    def pivot(
        self,
        index: str = "workload",
        columns: str = "mechanism",
        values: str = "prediction_accuracy",
    ) -> dict[Any, dict[Any, Any]]:
        """Two-level dictionary ``index -> column -> value``.

        The shape every figure renderer consumes (later duplicates win,
        matching how the figure sweeps are constructed).
        """
        table: dict[Any, dict[Any, Any]] = {}
        for run in self._runs:
            table.setdefault(value_of(run, index), {})[value_of(run, columns)] = (
                value_of(run, values)
            )
        return table

    def to_rows(self, field_names: Sequence[str] | None = None) -> list[dict[str, Any]]:
        """Flat dictionaries per run: stored + derived fields + extras."""
        if field_names is not None:
            return [
                {name: value_of(run, name) for name in field_names}
                for run in self._runs
            ]
        rows = []
        for run in self._runs:
            row = {name: getattr(run, name) for name in STAT_FIELDS}
            row.update({name: getattr(run, name) for name in DERIVED_FIELDS})
            row.update(run.extra)
            rows.append(row)
        return rows

    def merge(self, *others: "ResultSet") -> "ResultSet":
        """Union with duplicate-spec detection.

        Rows are identified by their ``spec_key`` annotation (stamped by
        the :class:`~repro.run.runner.Runner`): a spec appearing on both
        sides with *identical* rows is kept once, so a store-loaded
        partial sweep merges cleanly with the freshly computed
        remainder. Two *different* rows for the same spec raise
        :class:`~repro.errors.ResultMergeError` — that means two
        contradictory measurements, and silently keeping one would
        corrupt the sweep. Rows without a ``spec_key`` (e.g. from the
        low-level ``evaluate`` wrapper) are always appended verbatim.
        """
        merged: list[PrefetchRunStats] = []
        seen: dict[str, PrefetchRunStats] = {}
        for run in (run for source in (self, *others) for run in source):
            key = run.extra.get("spec_key")
            if key is None:
                merged.append(run)
                continue
            existing = seen.get(key)
            if existing is None:
                seen[key] = run
                merged.append(run)
            elif existing != run:
                raise ResultMergeError(
                    f"conflicting rows for spec {key!r} "
                    f"({existing.workload}/{existing.mechanism}): the sets "
                    "disagree about the same spec; re-run one side or drop "
                    "the stale rows"
                )
        return ResultSet(merged)

    # -- persistence -------------------------------------------------------

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to the versioned interchange format."""
        payload = {"schema": _SCHEMA, "runs": [asdict(run) for run in self._runs]}
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        """Parse :meth:`to_json` output, failing loudly on any other shape.

        Files saved by a different (older or newer) schema raise
        :class:`ValueError` with the offending schema named — never a
        bare ``KeyError``/``TypeError`` from the row constructor.
        """
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError(
                f"not a ResultSet file: expected a JSON object, got "
                f"{type(payload).__name__}"
            )
        schema = payload.get("schema")
        if schema != _SCHEMA:
            raise ValueError(
                f"unsupported ResultSet schema: {schema!r} (this library "
                f"reads {_SCHEMA!r}); re-save the results with this version"
            )
        runs_payload = payload.get("runs")
        if not isinstance(runs_payload, list):
            raise ValueError(
                f"ResultSet file declares schema {_SCHEMA!r} but has no "
                "'runs' list"
            )
        runs = []
        for position, run in enumerate(runs_payload):
            try:
                runs.append(PrefetchRunStats(**run))
            except TypeError as exc:
                raise ValueError(
                    f"run {position} does not match schema {_SCHEMA!r} "
                    f"(saved by another version?): {exc}"
                ) from exc
        return cls(runs)

    def save(self, path: str | Path) -> Path:
        """Write the set to ``path`` as JSON; returns the path."""
        path = Path(path)
        path.write_text(self.to_json(indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ResultSet":
        """Read a set previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())
