"""Unified execution API: declarative specs, shared streams, batches.

This package is the one way to execute simulations:

- :class:`~repro.run.spec.RunSpec` / :class:`~repro.run.spec.MechanismSpec`
  describe a run as frozen, hashable, pickleable data with a stable
  content-addressed :meth:`~repro.run.spec.RunSpec.key`;
- :class:`~repro.run.runner.Runner` executes batches of specs over a
  process-wide miss-stream cache, serially or in a process pool;
- :class:`~repro.run.results.ResultSet` makes the outcome queryable
  (filter / group_by / pivot / to_rows) and persistable (JSON).

The pre-existing entry points (``evaluate``, ``filter_tlb``,
``replay_prefetcher``, ``sweep``, ``ExperimentContext``) remain as thin
layers over this package.
"""

from repro.run.results import DERIVED_FIELDS, STAT_FIELDS, ResultSet
from repro.run.runner import SHARED_CACHE, MissStreamCache, Runner, build_miss_stream
from repro.run.spec import MechanismSpec, RunSpec

__all__ = [
    "DERIVED_FIELDS",
    "MechanismSpec",
    "MissStreamCache",
    "ResultSet",
    "RunSpec",
    "Runner",
    "SHARED_CACHE",
    "STAT_FIELDS",
    "build_miss_stream",
]
