"""Declarative run specifications: what to simulate, as plain data.

A :class:`RunSpec` names everything one simulation needs — workload,
scale, TLB shape, mechanism configuration, prefetch-buffer and warm-up
knobs, page size — as a frozen, hashable, pickleable record. Because a
spec is pure data:

- it has a stable content-addressed identity (:meth:`RunSpec.key`) that
  survives process boundaries, so result sets from different runs can
  be joined and compared;
- the specs sharing a TLB miss stream are discoverable *before* any
  simulation happens (:meth:`RunSpec.stream_key`), which is what lets
  :class:`~repro.run.runner.Runner` filter each (workload, scale, TLB,
  page size) exactly once and fan replays out to worker processes.

Mechanisms are described by :class:`MechanismSpec` — a factory name
plus canonicalized parameters — rather than by live
:class:`~repro.prefetch.base.Prefetcher` instances, so that every
worker can build its own fresh, untrained instance.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError, UnknownPrefetcherError
from repro.mem.address import DEFAULT_PAGE_SIZE, page_shift_for_size
from repro.prefetch.base import Prefetcher
from repro.prefetch.factory import PREFETCHER_NAMES, create_prefetcher
from repro.sim.config import SimulationConfig, TLBConfig
from repro.sim.engine import validate_engine


@dataclass(frozen=True)
class MechanismSpec:
    """A prefetch mechanism as data: factory name + parameters.

    Parameters are stored as a sorted tuple of ``(key, value)`` pairs so
    two specs built with the same keywords in any order compare (and
    hash, and pickle) identically. Use :meth:`of` rather than the raw
    constructor.
    """

    name: str
    params: tuple[tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.name not in PREFETCHER_NAMES:
            raise UnknownPrefetcherError(self.name, list(PREFETCHER_NAMES))

    @classmethod
    def of(cls, name: str, **params: int) -> "MechanismSpec":
        """Build a spec from keyword parameters (canonical order)."""
        return cls(name, tuple(sorted(params.items())))

    def build(self) -> Prefetcher:
        """Instantiate a fresh, untrained mechanism."""
        return create_prefetcher(self.name, **dict(self.params))

    @property
    def label(self) -> str:
        """Compact human-readable form, e.g. ``DP(rows=256,slots=2)``."""
        if not self.params:
            return self.name
        inner = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class RunSpec:
    """One simulation, fully described.

    Attributes:
        workload: registry application name (see ``repro.list-apps``).
        mechanism: the prefetch mechanism to evaluate.
        scale: workload volume multiplier (1.0 = full trace).
        tlb: TLB shape for the filtering phase.
        buffer_entries: prefetch buffer capacity ``b``.
        warmup_fraction: leading reference fraction excluded from
            accuracy accounting (mechanisms still train there).
        max_prefetches_per_miss: engine-level prefetch clamp, 0 = none.
        page_size: page size in bytes; traces are generated at 4 KiB and
            exactly re-aggregated for larger pages (superpage studies).
        engine: replay engine — ``"auto"`` (fast path when eligible,
            the default), ``"reference"``, or ``"fast"`` (forced; see
            :mod:`repro.sim.engine`). Engines are bit-identical by
            contract, so the engine is *execution metadata*: it is
            excluded from :meth:`canonical`/:meth:`key` and result
            rows from different engines join and compare freely.
    """

    workload: str
    mechanism: MechanismSpec
    scale: float = 1.0
    tlb: TLBConfig = field(default_factory=TLBConfig)
    buffer_entries: int = 16
    warmup_fraction: float = 0.0
    max_prefetches_per_miss: int = 0
    page_size: int = DEFAULT_PAGE_SIZE
    engine: str = "auto"

    def __post_init__(self) -> None:
        validate_engine(self.engine)
        # SimulationConfig owns the knob invariants; building one
        # validates buffer/warmup/clamp with the library's own errors.
        self.config()
        shift = page_shift_for_size(self.page_size)
        if shift < page_shift_for_size(DEFAULT_PAGE_SIZE):
            raise ConfigurationError(
                f"page_size {self.page_size} is below the 4 KiB trace granularity"
            )
        if not self.scale > 0:
            raise ConfigurationError(f"scale must be > 0, got {self.scale}")

    @classmethod
    def of(
        cls,
        workload: str,
        mechanism: str = "DP",
        *,
        scale: float = 1.0,
        tlb: TLBConfig | None = None,
        buffer_entries: int = 16,
        warmup_fraction: float = 0.0,
        max_prefetches_per_miss: int = 0,
        page_size: int = DEFAULT_PAGE_SIZE,
        engine: str = "auto",
        **mechanism_params: int,
    ) -> "RunSpec":
        """Ergonomic constructor: ``RunSpec.of("galgel", "DP", rows=256)``."""
        return cls(
            workload=workload,
            mechanism=MechanismSpec.of(mechanism, **mechanism_params),
            scale=scale,
            tlb=tlb if tlb is not None else TLBConfig(),
            buffer_entries=buffer_entries,
            warmup_fraction=warmup_fraction,
            max_prefetches_per_miss=max_prefetches_per_miss,
            page_size=page_size,
            engine=engine,
        )

    def derive(self, **changes: object) -> "RunSpec":
        """Copy of this spec with some fields replaced."""
        return replace(self, **changes)

    def config(self) -> SimulationConfig:
        """The equivalent :class:`SimulationConfig` (validates knobs)."""
        return SimulationConfig(
            tlb=self.tlb,
            buffer_entries=self.buffer_entries,
            warmup_fraction=self.warmup_fraction,
            max_prefetches_per_miss=self.max_prefetches_per_miss,
        )

    def build_prefetcher(self) -> Prefetcher:
        """Fresh mechanism instance for this spec."""
        return self.mechanism.build()

    def stream_key(self) -> tuple:
        """Identity of the TLB miss stream this run replays over.

        Every field that affects phase 1 (TLB filtering) and nothing
        else: specs that differ only in mechanism, buffer size or
        prefetch clamp share a stream and therefore a cache entry.
        """
        return (
            self.workload,
            self.scale,
            self.tlb.entries,
            self.tlb.ways,
            self.warmup_fraction,
            self.page_size,
        )

    def to_dict(self) -> dict:
        """Flat JSON-friendly form (the service/store interchange shape).

        Round-trips through :meth:`from_dict`; mechanism parameters are
        flattened into a ``params`` mapping.
        """
        return {
            "workload": self.workload,
            "mechanism": self.mechanism.name,
            "params": dict(self.mechanism.params),
            "scale": self.scale,
            "tlb_entries": self.tlb.entries,
            "tlb_ways": self.tlb.ways,
            "buffer_entries": self.buffer_entries,
            "warmup_fraction": self.warmup_fraction,
            "max_prefetches_per_miss": self.max_prefetches_per_miss,
            "page_size": self.page_size,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, payload: object) -> "RunSpec":
        """Parse :meth:`to_dict` output (e.g. a service request body).

        Unknown keys raise :class:`ConfigurationError` — a misspelled
        knob must not silently run the default configuration.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"RunSpec payload must be an object, got {type(payload).__name__}"
            )
        data = dict(payload)
        if "workload" not in data:
            raise ConfigurationError("RunSpec payload is missing 'workload'")
        known = {
            "workload", "mechanism", "params", "scale", "tlb_entries",
            "tlb_ways", "buffer_entries", "warmup_fraction",
            "max_prefetches_per_miss", "page_size", "engine",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown RunSpec fields {sorted(unknown)}; known: {sorted(known)}"
            )
        params = data.get("params", {})
        if not isinstance(params, dict):
            raise ConfigurationError(
                f"'params' must be a mapping, got {type(params).__name__}"
            )
        # Only forward the keys that are present: absent knobs fall
        # through to the dataclass defaults, so there is exactly one
        # place those defaults are defined.
        kwargs = {
            name: data[name]
            for name in (
                "scale", "buffer_entries", "warmup_fraction",
                "max_prefetches_per_miss", "page_size", "engine",
            )
            if name in data
        }
        tlb_kwargs = {}
        if "tlb_entries" in data:
            tlb_kwargs["entries"] = data["tlb_entries"]
        if "tlb_ways" in data:
            tlb_kwargs["ways"] = data["tlb_ways"]
        return cls(
            workload=data["workload"],
            mechanism=MechanismSpec.of(data.get("mechanism", "DP"), **params),
            tlb=TLBConfig(**tlb_kwargs),
            **kwargs,
        )

    def canonical(self) -> str:
        """Canonical one-line text form (the input to :meth:`key`).

        Deliberately excludes :attr:`engine`: engines are bit-identical
        (differential-tested), so two runs of the same spec on
        different engines share one identity.
        """
        mech = f"{self.mechanism.name}[" + ",".join(
            f"{k}={v}" for k, v in self.mechanism.params
        ) + "]"
        return (
            f"workload={self.workload};scale={self.scale!r};"
            f"tlb={self.tlb.entries},{self.tlb.ways};mech={mech};"
            f"buffer={self.buffer_entries};warmup={self.warmup_fraction!r};"
            f"clamp={self.max_prefetches_per_miss};page={self.page_size}"
        )

    def key(self) -> str:
        """Stable content-addressed identity (hex digest).

        Equal specs have equal keys in every process and on every
        platform (no dependence on ``PYTHONHASHSEED`` or object
        identity), so keys are safe to persist alongside saved results.
        """
        return hashlib.sha256(self.canonical().encode()).hexdigest()[:16]

    @property
    def label(self) -> str:
        """Short display form for progress lines and result tables."""
        return f"{self.workload}/{self.mechanism.label}@{self.tlb.label}"
