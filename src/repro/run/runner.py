"""The one way to execute simulations: shared cache + batch fan-out.

:class:`Runner` takes any iterable of :class:`~repro.run.spec.RunSpec`
and owns the expensive intermediate every caller used to re-implement:
the filtered TLB miss stream. Streams live in a process-wide LRU
(:data:`SHARED_CACHE`) keyed by :meth:`RunSpec.stream_key`, so a batch
touching twenty mechanism configurations per workload — the Figure 7
shape — filters each workload's TLB exactly once, and *separate*
batches in the same process reuse each other's streams too.

With ``workers=N`` the batch is grouped by stream key and the groups
are executed in a process pool: every group lands on exactly one
worker, preserving the filter-once guarantee across the pool, and
specs are pickleable by construction so nothing special is needed to
ship them. Replays are deterministic, so parallel results are
bit-identical to serial ones (the property is regression-tested).

With ``store=`` the runner additionally consults a persistent
:class:`~repro.store.ExperimentStore` before doing any work: stored
specs come back without filtering or replaying, freshly computed rows
(serial or from worker processes) are written back exactly once per
spec, and in-process stream builds are persisted for future processes.

With ``executor="distributed"`` (plus ``service_url=``) the batch is
not executed locally at all: it is submitted as a sweep to a scheduler
service (``repro-tlb serve``) and replayed by whatever worker fleet is
polling it — same rows, same order, byte-identical to serial.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from collections import OrderedDict
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor, as_completed

from pathlib import Path

from repro.mem.address import DEFAULT_PAGE_SIZE
from repro.mem.trace import MissTrace, ReferenceTrace
from repro.obs import REGISTRY, bind_context, drain_spans, trace
from repro.run.results import ResultSet
from repro.run.spec import RunSpec
from repro.store.store import (
    ExperimentStore,
    stream_digest_for_spec,
    stream_digest_for_trace,
)
from repro.sim import batchpath
from repro.sim.config import TLBConfig
from repro.sim.engine import batch_available, replay as engine_replay, resolve_engine
from repro.sim.stats import PrefetchRunStats
from repro.sim.sweep import rescale_trace
from repro.sim.two_phase import filter_tlb
from repro.workloads.registry import get_trace

#: Replay/stream telemetry. Instrumented per *replay* and per *stream
#: build* — never per miss entry — so the overhead stays far below the
#: smoke bench's 5% budget.
_OBS_REPLAY_SECONDS = REGISTRY.histogram(
    "repro_replay_seconds",
    "Wall-clock per replay by resolved engine.",
    labels=("engine",),
)
_OBS_REPLAY_ENTRIES = REGISTRY.counter(
    "repro_replay_entries_total",
    "Miss-stream entries replayed (batch replays count once per spec).",
    labels=("engine",),
)
_OBS_STREAM_BUILD_SECONDS = REGISTRY.histogram(
    "repro_stream_build_seconds",
    "Wall-clock per phase-1 TLB filter (miss-stream build).",
)
_OBS_STREAM_CACHE = REGISTRY.counter(
    "repro_stream_cache_events_total",
    "In-process miss-stream cache events (hits, misses, evictions).",
    labels=("event",),
)


class MissStreamCache:
    """Bounded LRU of filtered miss streams, with hit/miss accounting.

    The counters make the cache's contract testable: after a *serial*
    batch of ``k`` specs over ``g`` distinct stream keys, ``misses``
    grew by exactly ``g`` and ``hits`` by ``k - g``. (With
    ``workers>1`` filtering happens inside the worker processes — one
    filter per stream group there — and this cache is not consulted.)

    Thread-safe: a short-held lock guards the entry table and the
    counters, while ``build()`` runs under a *per-key* build lock
    (striped over a fixed pool). Concurrent requests for the same
    stream (the HTTP service shares one cache between handler threads)
    still build it exactly once — the second request blocks on the
    key's stripe and then finds the entry — but requests for *other*
    keys are no longer serialized behind one slow build, which used to
    stall every handler thread for the duration of a TLB filter.
    """

    #: Number of striped build locks. Distinct keys that hash to the
    #: same stripe still serialize their builds (a bounded-memory
    #: tradeoff); same-key requests always share a stripe, which is
    #: what makes the build-once guarantee hold.
    BUILD_LOCK_STRIPES = 16

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be > 0, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.RLock()
        self._build_locks = [
            threading.Lock() for _ in range(self.BUILD_LOCK_STRIPES)
        ]
        self._entries: OrderedDict[tuple, MissTrace] = OrderedDict()

    def _lookup(self, key: tuple) -> MissTrace | None:
        """Hit path under the table lock: promote, count, return."""
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            _OBS_STREAM_CACHE.inc(event="hit")
        return cached

    def get_or_build(self, key: tuple, build: Callable[[], MissTrace]) -> MissTrace:
        """Return the cached stream for ``key``, building it on miss."""
        with self._lock:
            cached = self._lookup(key)
            if cached is not None:
                return cached
        stripe = self._build_locks[hash(key) % self.BUILD_LOCK_STRIPES]
        with stripe:
            with self._lock:
                # Double-check: a same-stripe builder may have finished
                # this key while we waited for the stripe.
                cached = self._lookup(key)
                if cached is not None:
                    return cached
                self.misses += 1
                _OBS_STREAM_CACHE.inc(event="miss")
            built = build()
            with self._lock:
                self._entries[key] = built
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    _OBS_STREAM_CACHE.inc(event="eviction")
            return built

    def stats(self) -> dict[str, int]:
        """Counter snapshot — the cache-effectiveness record surfaced by
        ``repro-tlb cache stats`` and ``GET /stats``."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def clear(self) -> None:
        """Drop all entries and zero the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:
        return (
            f"MissStreamCache({len(self._entries)}/{self.maxsize} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


#: Process-wide default cache: every Runner (and, under ``fork``, every
#: worker process) shares it unless given a private cache.
SHARED_CACHE = MissStreamCache()


def build_miss_stream(spec: RunSpec) -> MissTrace:
    """Phase 1 for a spec: build (or fetch) the trace, filter the TLB."""
    began = time.perf_counter()
    with trace("stream.build", workload=spec.workload, scale=spec.scale):
        reference = get_trace(spec.workload, spec.scale)
        if spec.page_size != DEFAULT_PAGE_SIZE:
            reference = rescale_trace(reference, spec.page_size)
        stream = filter_tlb(reference, spec.tlb, spec.warmup_fraction)
    _OBS_STREAM_BUILD_SECONDS.observe(time.perf_counter() - began)
    return stream


def _replay(spec: RunSpec, miss_trace: MissTrace) -> PrefetchRunStats:
    """Phase 2 for a spec, annotated with its identity coordinates.

    The replay engine comes from ``spec.engine`` (``auto`` by default:
    the fast path whenever the mechanism is eligible, the reference
    engine otherwise — bit-identical either way, see
    :mod:`repro.sim.engine`).
    """
    prefetcher = spec.build_prefetcher()
    resolved = resolve_engine(prefetcher, spec.engine)
    began = time.perf_counter()
    with trace(
        "replay",
        workload=spec.workload,
        mechanism=spec.mechanism.label,
        engine=resolved,
    ):
        stats = engine_replay(
            miss_trace,
            prefetcher,
            buffer_entries=spec.buffer_entries,
            max_prefetches_per_miss=spec.max_prefetches_per_miss,
            engine=spec.engine,
        )
    _OBS_REPLAY_SECONDS.observe(time.perf_counter() - began, engine=resolved)
    _OBS_REPLAY_ENTRIES.inc(len(miss_trace), engine=resolved)
    return annotate_stats(stats, spec)


def annotate_stats(stats: PrefetchRunStats, spec: RunSpec) -> PrefetchRunStats:
    """Stamp a row with its identity coordinates (shared by all paths)."""
    stats.extra["spec_key"] = spec.key()
    stats.extra["mechanism_name"] = spec.mechanism.name
    stats.extra["scale"] = spec.scale
    stats.extra["buffer"] = spec.buffer_entries
    stats.extra["page_size"] = spec.page_size
    return stats


def _run_group(specs: tuple[RunSpec, ...]) -> list[PrefetchRunStats]:
    """Worker entry point: replay one stream-sharing group of specs.

    All specs in a group share a stream key, so the group costs one
    TLB filter in this worker (already-warm caches inherited via
    ``fork`` make it free). The group goes through the same serial
    path as in-process execution, so batch-eligible specs take the
    one-pass loop inside the worker too.
    """
    runner = Runner()
    return runner._run_serial(list(specs))


def _run_group_traced(
    specs: tuple[RunSpec, ...], trace_ctx: str | None
) -> tuple[list[PrefetchRunStats], list[dict]]:
    """Pool entry that carries trace context across the fork boundary.

    The parent's ``"trace_id:span_id"`` context rides in as a plain
    string; spans recorded inside this worker process are drained and
    shipped back with the rows so the parent's collector holds the
    whole trace. Rows are exactly ``_run_group``'s — tracing never
    touches the replay results.
    """
    # Under the ``fork`` start method the child inherits the parent's
    # span collector; drop that inheritance so the drain below ships
    # only spans this task produced (the parent already has its own).
    from repro.obs import COLLECTOR

    COLLECTOR.clear()
    with bind_context(trace_ctx):
        with trace("pool.group", specs=len(specs)):
            rows = _run_group(specs)
    return rows, drain_spans()


class Runner:
    """Executes batches of RunSpecs over shared miss streams.

    Args:
        workers: process-pool size for :meth:`run`; ``None``/``0``/``1``
            executes serially in-process. Capped to the CPU count.
        cache: private miss-stream cache; defaults to the process-wide
            :data:`SHARED_CACHE`. Only consulted for serial execution
            and :meth:`miss_stream` — parallel batches filter inside
            the worker processes (exactly once per stream group), so a
            private cache's counters stay at zero there.
        store: optional persistent
            :class:`~repro.store.ExperimentStore` (or a path, opened on
            the spot). When set, :meth:`run` consults the store before
            filtering or replaying — specs already stored come back
            without any simulation — and writes newly computed rows
            back exactly once per spec, including rows computed by
            worker processes. Miss streams built in-process are
            persisted too, so even a cold process skips phase 1 for
            streams the store has seen.
        executor: execution backend for :meth:`run` — ``"auto"``
            (default: a process pool when ``workers > 1``, else
            serial), ``"serial"``, ``"pool"``, or ``"distributed"``
            (submit batches as sweeps to a scheduler service; requires
            ``service_url``). All backends return identical rows.
        service_url: address of a ``repro-tlb serve`` instance for the
            distributed executor; giving one with ``executor="auto"``
            selects distributed execution.
        request_timeout: per-HTTP-request socket timeout in seconds for
            the distributed executor's service client (not the sweep
            deadline — a hung socket fails fast instead of masking the
            outage as an endless poll).
        service_token: API token for a tenant-mode service; forwarded
            to the distributed executor's client.
        checkpoint_every: when > 0, in-process replays run through a
            suspendable :class:`~repro.ckpt.ReplaySession`, leaving a
            resume bookmark in the store every N miss entries. A run
            killed mid-stream resumes from its last checkpoint on the
            next attempt (continuations are keyed by ``spec.key()``),
            and the completed row is byte-identical to an
            uninterrupted one. Requires ``store``.
    """

    EXECUTORS = ("auto", "serial", "pool", "distributed")

    def __init__(
        self,
        workers: int | None = None,
        cache: MissStreamCache | None = None,
        store: "ExperimentStore | str | Path | None" = None,
        executor: str = "auto",
        service_url: str | None = None,
        checkpoint_every: int = 0,
        request_timeout: float = 30.0,
        service_token: str | None = None,
    ) -> None:
        from repro.errors import ConfigurationError

        self.workers = max(0, int(workers or 0))
        self.cache = cache if cache is not None else SHARED_CACHE
        if store is not None and not isinstance(store, ExperimentStore):
            store = ExperimentStore(store)
        self.store = store
        self.checkpoint_every = max(0, int(checkpoint_every or 0))
        if self.checkpoint_every and store is None:
            raise ConfigurationError(
                "checkpoint_every needs a store to keep its resume "
                "bookmarks in; pass store="
            )
        if executor not in self.EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {executor!r}; expected one of {self.EXECUTORS}"
            )
        if executor == "auto" and service_url is not None:
            executor = "distributed"
        if executor == "distributed" and service_url is None:
            raise ConfigurationError(
                "executor='distributed' needs a service_url "
                "(a repro-tlb serve address)"
            )
        self.executor = executor
        self.service_url = service_url
        self.request_timeout = request_timeout
        self.service_token = service_token
        self._distributed = None
        if executor == "distributed":
            # Local import: repro.sched builds on this module.
            from repro.sched.executor import DistributedExecutor

            self._distributed = DistributedExecutor(
                service_url,
                request_timeout=request_timeout,
                token=service_token,
            )

    # -- miss streams ------------------------------------------------------

    def miss_stream_for(self, spec: RunSpec) -> MissTrace:
        """The (cached) miss stream a spec replays over."""
        return self.cache.get_or_build(
            spec.stream_key(),
            lambda: self._load_or_build_stream(
                stream_digest_for_spec(spec), lambda: build_miss_stream(spec)
            ),
        )

    def _load_or_build_stream(
        self, digest: str, build: Callable[[], MissTrace]
    ) -> MissTrace:
        """In-memory miss → try the persistent store, else build + persist."""
        if self.store is None:
            return build()
        cached = self.store.get_stream(digest)
        if cached is not None:
            return cached
        built = build()
        self.store.put_stream(digest, built)
        return built

    def miss_stream(
        self,
        source: str | ReferenceTrace,
        tlb: TLBConfig | None = None,
        scale: float = 1.0,
        warmup_fraction: float = 0.0,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> MissTrace:
        """Cached miss stream for a workload name or an ad-hoc trace.

        Ad-hoc :class:`ReferenceTrace` objects are keyed by their
        content digest, so equal traces share a cache entry no matter
        who built them (and ``scale`` does not apply to them).
        """
        tlb = tlb or TLBConfig()
        if isinstance(source, ReferenceTrace):
            trace = source
            if page_size != DEFAULT_PAGE_SIZE:
                trace = rescale_trace(trace, page_size)
            key = (
                ("trace", trace.content_key()),
                tlb.entries,
                tlb.ways,
                warmup_fraction,
            )
            digest = stream_digest_for_trace(
                trace.content_key(), tlb, warmup_fraction
            )
            miss = self.cache.get_or_build(
                key,
                lambda: self._load_or_build_stream(
                    digest, lambda: filter_tlb(trace, tlb, warmup_fraction)
                ),
            )
            if miss.name != trace.name:
                # The cache entry keeps the first builder's name; hand
                # equal-content traces a relabeled view (arrays shared)
                # so their stats report the caller's workload name.
                miss = dataclasses.replace(miss, name=trace.name)
            return miss
        spec = RunSpec.of(
            source,
            "none",
            scale=scale,
            tlb=tlb,
            warmup_fraction=warmup_fraction,
            page_size=page_size,
        )
        return self.miss_stream_for(spec)

    # -- execution ---------------------------------------------------------

    def run_one(self, spec: RunSpec) -> PrefetchRunStats:
        """Execute a single spec (always in-process).

        With :attr:`checkpoint_every` set, the replay is suspendable:
        it picks up any resume bookmark the store holds for this spec,
        replays in checkpoint-sized chunks, and clears the bookmark on
        completion — producing a byte-identical row either way.
        """
        if self.checkpoint_every:
            return self._run_resumable(spec)
        return _replay(spec, self.miss_stream_for(spec))

    def _run_resumable(self, spec: RunSpec) -> PrefetchRunStats:
        """Chunked replay with store-backed suspend/resume bookmarks."""
        # Local import: repro.ckpt.manager deliberately avoids importing
        # the store at runtime, and we return the favor here.
        from repro.ckpt import CheckpointManager, ReplaySession, SessionSnapshot

        manager = CheckpointManager(self.store)
        miss_trace = self.miss_stream_for(spec)
        key = spec.key()
        session = None
        resumed = manager.load_continuation(key)
        if resumed is not None:
            _, snap = resumed
            if isinstance(snap, SessionSnapshot):
                session = ReplaySession.resume(
                    snap, miss_trace, spec.build_prefetcher()
                )
        if session is None:
            session = ReplaySession(
                miss_trace,
                spec.build_prefetcher(),
                buffer_entries=spec.buffer_entries,
                max_prefetches_per_miss=spec.max_prefetches_per_miss,
            )
        while not session.finished:
            session.advance(self.checkpoint_every)
            if not session.finished:
                manager.save_continuation(key, session.offset, session.snapshot())
        manager.clear_continuation(key)
        return annotate_stats(session.stats(), spec)

    def run(self, specs: Iterable[RunSpec]) -> ResultSet:
        """Execute a batch; results come back in input order.

        Serial and parallel execution produce identical rows: replays
        are deterministic and every spec gets a fresh mechanism.

        With a :attr:`store`, every spec key is looked up first (one
        lookup per *unique* key — duplicates share the row) and only
        the missing specs are executed; their rows are written back in
        one batch, exactly one copy per spec. A warm re-run of a sweep
        therefore performs zero filters and zero replays, and the
        returned set is bit-identical to the cold run.
        """
        spec_list = list(specs)
        for spec in spec_list:
            if not isinstance(spec, RunSpec):
                raise TypeError(
                    f"Runner.run expects RunSpec items, got {type(spec).__name__}"
                )
        if self.store is not None:
            return self._run_with_store(spec_list)
        return ResultSet(self._execute(spec_list))

    def _execute(self, spec_list: list[RunSpec]) -> list[PrefetchRunStats]:
        """Compute every spec (no store consultation)."""
        if self._distributed is not None:
            return self._distributed.run(spec_list)
        if (
            self.executor != "serial"
            and self.workers > 1
            and len(spec_list) > 1
        ):
            return self._run_parallel(spec_list)
        return self._run_serial(spec_list)

    def _run_serial(self, spec_list: list[RunSpec]) -> list[PrefetchRunStats]:
        """In-process execution with one-pass batching of stream groups.

        Specs are grouped by stream key; within a group, every spec
        whose engine allows it (``"auto"`` or ``"batch"``) and whose
        mechanism the batch loop supports is replayed in a *single*
        pass over the shared miss stream
        (:func:`repro.sim.batchpath.replay_batch`). ``"auto"`` only
        batches groups of two or more such specs (a singleton has
        nothing to amortize and takes the fast engine); ``"batch"``
        forces the one-pass loop even for a group of one. Everything
        else — ``"reference"``/``"fast"`` specs, mechanisms without a
        batch loop — runs per-spec exactly as before, and checkpointed
        runs are never batched (the batch loop is not suspendable).

        The miss-stream cache is still consulted once per spec, so the
        hit/miss counter contract is identical to per-spec execution,
        and rows are bit-identical by the differential harness.
        """
        if self.checkpoint_every or (
            len(spec_list) < 2
            and not any(spec.engine == "batch" for spec in spec_list)
        ):
            # Nothing to group — unless a spec *forces* the batch loop.
            return [self.run_one(spec) for spec in spec_list]
        results: list[PrefetchRunStats | None] = [None] * len(spec_list)
        groups: OrderedDict[tuple, list[int]] = OrderedDict()
        for index, spec in enumerate(spec_list):
            groups.setdefault(spec.stream_key(), []).append(index)
        for indices in groups.values():
            batchable: list[tuple[int, RunSpec, object]] = []
            for index in indices:
                spec = spec_list[index]
                if spec.engine in ("auto", "batch"):
                    prefetcher = spec.build_prefetcher()
                    if batch_available(prefetcher):
                        batchable.append((index, spec, prefetcher))
                        continue
                results[index] = self.run_one(spec)
            if not batchable:
                continue
            forced = any(spec.engine == "batch" for _, spec, _ in batchable)
            if len(batchable) < 2 and not forced:
                for index, spec, _ in batchable:
                    results[index] = self.run_one(spec)
                continue
            miss_trace = None
            for _, spec, _ in batchable:
                miss_trace = self.miss_stream_for(spec)
            began = time.perf_counter()
            with trace(
                "replay.batch",
                workload=batchable[0][1].workload,
                specs=len(batchable),
            ):
                stats = batchpath.replay_batch(
                    miss_trace,
                    [
                        (p, spec.buffer_entries, spec.max_prefetches_per_miss)
                        for _, spec, p in batchable
                    ],
                )
            _OBS_REPLAY_SECONDS.observe(
                time.perf_counter() - began, engine="batch"
            )
            _OBS_REPLAY_ENTRIES.inc(
                len(miss_trace) * len(batchable), engine="batch"
            )
            for (index, spec, _), row in zip(batchable, stats):
                results[index] = annotate_stats(row, spec)
        return results  # type: ignore[return-value]

    def _run_with_store(self, spec_list: list[RunSpec]) -> ResultSet:
        by_key: OrderedDict[str, list[int]] = OrderedDict()
        for index, spec in enumerate(spec_list):
            by_key.setdefault(spec.key(), []).append(index)
        results: list[PrefetchRunStats | None] = [None] * len(spec_list)
        missing: list[RunSpec] = []
        for key, indices in by_key.items():
            cached = self.store.get_result(key)
            if cached is not None:
                for index in indices:
                    results[index] = cached
            else:
                missing.append(spec_list[indices[0]])
        if missing:
            computed = self._execute(missing)
            self.store.put_results(zip(missing, computed))
            for spec, stats in zip(missing, computed):
                for index in by_key[spec.key()]:
                    results[index] = stats
        return ResultSet(results)  # type: ignore[arg-type]

    def _run_parallel(self, spec_list: list[RunSpec]) -> list[PrefetchRunStats]:
        # One task per stream group: each (workload, scale, tlb, page
        # size) is filtered exactly once across the pool, and big
        # groups amortize their filter over many replays.
        groups: OrderedDict[tuple, list[int]] = OrderedDict()
        for index, spec in enumerate(spec_list):
            groups.setdefault(spec.stream_key(), []).append(index)
        workers = min(self.workers, len(groups), os.cpu_count() or 1)
        results: list[PrefetchRunStats | None] = [None] * len(spec_list)
        from repro.obs import COLLECTOR, current_context

        trace_ctx = current_context()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _run_group_traced,
                    tuple(spec_list[i] for i in indices),
                    trace_ctx,
                ): indices
                for indices in groups.values()
            }
            for future in as_completed(futures):
                rows, spans = future.result()
                for index, stats in zip(futures[future], rows):
                    results[index] = stats
                # Merge worker-process spans into the parent collector
                # so the batch reads as one trace.
                COLLECTOR.ingest(spans)
        return results  # type: ignore[return-value]
