"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A simulator, table, or workload was configured with invalid values.

    Raised eagerly at construction time (not at use time) so that a bad
    sweep parameter fails before a long simulation starts.
    """


class UnknownWorkloadError(ReproError, KeyError):
    """A workload name was not found in the registry."""

    def __init__(self, name: str, known: list[str] | None = None) -> None:
        self.name = name
        self.known = known or []
        hint = ""
        if self.known:
            hint = f" (known: {', '.join(sorted(self.known)[:8])}, ...)"
        super().__init__(f"unknown workload {name!r}{hint}")


class UnknownPrefetcherError(ReproError, KeyError):
    """A prefetcher name was not found in the factory registry."""

    def __init__(self, name: str, known: list[str] | None = None) -> None:
        self.name = name
        self.known = known or []
        hint = f" (known: {', '.join(sorted(self.known))})" if self.known else ""
        super().__init__(f"unknown prefetcher {name!r}{hint}")


class TraceError(ReproError):
    """A reference or miss trace is malformed (e.g. negative run count)."""


class StoreError(ReproError):
    """A persistent experiment store is unusable or an artifact is corrupt.

    Raised instead of the underlying JSON/npz/SQLite decode errors so
    callers see *which* store entry is broken and can delete or rebuild
    it, rather than chasing a bare ``JSONDecodeError`` with no path.
    """


class CkptError(ReproError):
    """A checkpoint blob is unusable or a snapshot cannot be applied.

    Raised for malformed ``repro.ckpt/v1`` blobs (bad magic, schema
    mismatch, truncation, digest corruption, trailing garbage) and for
    restore-time shape mismatches (e.g. applying a 256-row table
    snapshot to a 64-row mechanism). The message names the failing
    stage so a corrupt artifact can be deleted and rebuilt rather than
    chasing a bare ``struct.error``.
    """


class ObsError(ReproError):
    """The observability layer's persistent state is unusable.

    Raised for a telemetry journal whose SQLite schema does not match
    ``repro.obs/v1`` (use a fresh file or migrate), for malformed SLO
    rule definitions, and for corrupt benchmark-history records. Never
    raised from a metric update — the hot path stays exception-free.
    """


class SchedulerError(ReproError):
    """The distributed sweep scheduler cannot proceed.

    Raised for malformed queue operations (bad lease/limit values,
    conflicting sweep resubmissions) and by
    :meth:`~repro.sched.client.SchedulerClient.submit_sweep` when a
    sweep finishes with failed or cancelled jobs — the per-job errors
    are included so the caller sees *which* specs died and why.
    """


class SweepOwnershipError(SchedulerError):
    """A sweep id is already owned by a different tenant.

    Raised by :meth:`~repro.sched.queue.JobQueue.submit` when a scoped
    submission names a sweep whose recorded owner differs. The service
    maps this to the same 404 a missing sweep gets, so sweep ids cannot
    be probed across tenants.
    """


class ResultMergeError(ReproError, ValueError):
    """Two result sets disagree about the same spec key.

    Raised by :meth:`repro.run.results.ResultSet.merge` when both sides
    carry a row for the same ``spec_key`` with different numbers —
    merging would silently keep one of two contradictory measurements.
    """
