"""Admission control for the experiment service: tenants, rates, slots.

The service used to accept unlimited anonymous requests; every
connection got a ``ThreadingHTTPServer`` thread and went straight at
the handlers. This module is the front door that PR 10 puts between
the socket and the routes:

- :class:`TokenBucket` — the classic rate limiter: ``rate`` tokens per
  second refill, ``burst`` bucket depth, and a non-blocking
  ``try_acquire`` that answers "granted" or "come back in N seconds"
  (the number the ``Retry-After`` header carries).
- :class:`CostTracker` — the same bucket in *spec units* instead of
  requests, charged before a sweep is dispatched, so one tenant's
  10,000-spec sweep cannot starve everyone else's small batches.
- :class:`TenantConfig` — one API token mapped to one named tenant
  namespace, with its rate/cost budgets and a ``worker`` capability
  bit gating the fleet routes (``/claim``, ``/complete``,
  ``/heartbeat``).
- :class:`AdmissionController` — token → tenant resolution plus a
  bounded in-flight slot pool: at most ``max_inflight`` requests run
  concurrently, at most ``max_queue`` wait (briefly) for a slot, and
  everything beyond that is shed with 429 + ``Retry-After`` instead of
  piling up threads.

With no tenants configured the controller runs in **open mode**:
requests are anonymous, unauthenticated, and rate-unlimited — exactly
the pre-admission behaviour — but the in-flight bound still applies,
so a request flood degrades to fast 429s rather than thread buildup.

Everything here is observation-friendly but determinism-neutral: no
admission decision influences result rows, spec keys, or checkpoint
digests — a shed request simply never reaches the handlers.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from repro.errors import ReproError
from repro.obs import REGISTRY

#: Version stamp for tenant-config files (forward compatibility).
ADMISSION_SCHEMA = "repro.admission/v1"

#: Admission decisions by tenant and outcome. Label cardinality is
#: bounded: tenants come from the operator's config file, and the
#: outcome set is fixed below.
_OBS_ADMISSION = REGISTRY.counter(
    "repro_admission_requests_total",
    "Admission decisions by tenant and outcome (admitted, rate_limited, "
    "cost_limited, shed, unauthorized, forbidden).",
    labels=("tenant", "outcome"),
)
_OBS_INFLIGHT = REGISTRY.gauge(
    "repro_admission_inflight",
    "Requests currently holding an admission slot.",
)
_OBS_QUEUED = REGISTRY.gauge(
    "repro_admission_queued",
    "Requests currently waiting for an admission slot.",
)

#: The tenant label used for requests in open (no-tenant) mode.
ANONYMOUS = "anonymous"


class TokenBucket:
    """A thread-safe token bucket: ``rate``/s refill up to ``burst``.

    Args:
        rate: tokens added per second; must be > 0.
        burst: bucket depth (also the starting balance); must be > 0.
        clock: injectable monotonic time source (tests).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ReproError(f"token bucket rate must be > 0, got {rate}")
        if burst <= 0:
            raise ReproError(f"token bucket burst must be > 0, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available; returns the wait otherwise.

        Returns ``0.0`` when the acquisition succeeded, else the number
        of seconds until the bucket will hold ``tokens`` — the value a
        ``Retry-After`` header should carry. Asking for more than
        ``burst`` tokens can never succeed in one call; the returned
        wait still names when the deficit would be refilled, so a
        caller splitting its demand knows how long to pause.
        """
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            return (tokens - self._tokens) / self.rate

    @property
    def available(self) -> float:
        """Current balance (refreshing the refill first)."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            return self._tokens


class CostTracker:
    """A budget over *work units* (specs), not requests.

    Follows the rate-limiter/cost-tracker injection idiom: the service
    charges ``len(specs)`` before dispatching a ``POST /runs`` or
    ``POST /jobs`` body, so sweep cost is bounded per tenant even when
    each sweep is a single HTTP request.

    Attributes:
        charged: total units successfully charged.
        denied: number of charges refused.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._bucket = TokenBucket(rate, burst, clock)
        self._lock = threading.Lock()
        self.charged = 0.0
        self.denied = 0

    def try_charge(self, units: float) -> float:
        """Charge ``units``; ``0.0`` on success, else seconds to wait."""
        wait = self._bucket.try_acquire(units)
        with self._lock:
            if wait == 0.0:
                self.charged += units
            else:
                self.denied += 1
        return wait


@dataclass(frozen=True)
class TenantConfig:
    """One tenant namespace: a token, its budgets, its capabilities.

    Args:
        name: stable tenant identifier (labels metrics and store
            grants; must be non-empty).
        token: the API token presented as ``Authorization: Bearer``.
        rate: request tokens per second.
        burst: request bucket depth.
        cost_rate: spec units per second for sweep submission.
        cost_burst: spec-unit bucket depth (the largest sweep a tenant
            can submit at once).
        worker: whether this token may drive the fleet routes
            (``/claim``, ``/complete``, ``/heartbeat``).
    """

    name: str
    token: str
    rate: float = 50.0
    burst: float = 100.0
    cost_rate: float = 100.0
    cost_burst: float = 1000.0
    worker: bool = True

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ReproError(f"tenant name must be a non-empty string, got {self.name!r}")
        if "/" in self.name:
            # The name prefixes tenant-namespaced session keys with a
            # "/" separator; a slash inside it would make keys forgeable.
            raise ReproError(f"tenant name must not contain '/': {self.name!r}")
        if not self.token or not isinstance(self.token, str):
            raise ReproError(
                f"tenant {self.name!r}: token must be a non-empty string"
            )
        for field in ("rate", "burst", "cost_rate", "cost_burst"):
            value = getattr(self, field)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ReproError(
                    f"tenant {self.name!r}: {field} must be > 0, got {value!r}"
                )

    @classmethod
    def from_dict(cls, raw: dict) -> "TenantConfig":
        if not isinstance(raw, dict):
            raise ReproError(
                f"tenant entry must be an object, got {type(raw).__name__}"
            )
        known = {"name", "token", "rate", "burst", "cost_rate", "cost_burst", "worker"}
        unknown = set(raw) - known
        if unknown:
            raise ReproError(
                f"tenant entry has unknown fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**raw)


def load_tenant_config(path: str | Path) -> list[TenantConfig]:
    """Parse a tenant-config JSON file (``serve --tenant-config``).

    Accepts either a bare list of tenant objects or an envelope
    ``{"tenants": [...]}``. Duplicate names or tokens are rejected —
    a shared token would make the namespaces indistinguishable.
    """
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except OSError as exc:
        raise ReproError(f"cannot read tenant config {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"tenant config {path} is not JSON: {exc}") from exc
    entries = raw.get("tenants") if isinstance(raw, dict) else raw
    if not isinstance(entries, list):
        raise ReproError(
            f"tenant config {path} must be a list of tenant objects "
            "or {'tenants': [...]}"
        )
    tenants = [TenantConfig.from_dict(entry) for entry in entries]
    names = [tenant.name for tenant in tenants]
    if len(set(names)) != len(names):
        raise ReproError(f"tenant config {path}: duplicate tenant names")
    tokens = [tenant.token for tenant in tenants]
    if len(set(tokens)) != len(tokens):
        raise ReproError(f"tenant config {path}: duplicate tenant tokens")
    return tenants


class AdmissionController:
    """Token auth + per-tenant rate/cost budgets + bounded in-flight.

    Args:
        tenants: the configured tenant set; empty means **open mode**
            (anonymous, unauthenticated, rate-unlimited — but still
            in-flight bounded).
        max_inflight: concurrent requests allowed past admission.
        max_queue: requests allowed to wait (briefly) for a slot;
            arrivals beyond this are shed immediately.
        queue_wait_seconds: how long a queued request waits for a slot
            before being shed.
        shed_retry_after: the ``Retry-After`` hint attached to shed
            responses.
        clock: injectable time source for the tenant buckets (tests).
    """

    def __init__(
        self,
        tenants: Iterable[TenantConfig] = (),
        max_inflight: int = 64,
        max_queue: int = 256,
        queue_wait_seconds: float = 0.5,
        shed_retry_after: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_inflight < 1:
            raise ReproError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ReproError(f"max_queue must be >= 0, got {max_queue}")
        tenants = list(tenants)
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ReproError("duplicate tenant names")
        tokens = [tenant.token for tenant in tenants]
        if len(set(tokens)) != len(tokens):
            raise ReproError("duplicate tenant tokens")
        self._by_token = {tenant.token: tenant for tenant in tenants}
        self._buckets = {
            tenant.name: TokenBucket(tenant.rate, tenant.burst, clock)
            for tenant in tenants
        }
        self._costs = {
            tenant.name: CostTracker(tenant.cost_rate, tenant.cost_burst, clock)
            for tenant in tenants
        }
        self._clock = clock
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.queue_wait_seconds = float(queue_wait_seconds)
        self.shed_retry_after = float(shed_retry_after)
        self._cond = threading.Condition(threading.Lock())
        self._inflight = 0
        self._queued = 0
        self.shed_total = 0

    # -- identity ----------------------------------------------------------

    @property
    def open_mode(self) -> bool:
        """True when no tenants are configured (anonymous access)."""
        return not self._by_token

    def note(self, tenant: str | None, outcome: str) -> None:
        """Record one admission decision in the metrics registry."""
        _OBS_ADMISSION.inc(tenant=tenant or ANONYMOUS, outcome=outcome)

    def authenticate(
        self, authorization: str | None
    ) -> tuple[TenantConfig | None, str | None]:
        """Resolve an ``Authorization`` header to ``(tenant, error)``.

        Open mode returns ``(None, None)``: the request is anonymous
        and unrestricted. In token mode a missing, malformed, or
        unknown token yields ``(None, message)`` — a 401. The token
        itself never appears in the error message.
        """
        if self.open_mode:
            return None, None
        if authorization is None:
            self.note(None, "unauthorized")
            return None, "missing Authorization header (expected 'Bearer <token>')"
        scheme, _, token = authorization.partition(" ")
        if scheme.lower() != "bearer" or not token.strip():
            self.note(None, "unauthorized")
            return None, "malformed Authorization header (expected 'Bearer <token>')"
        tenant = self._by_token.get(token.strip())
        if tenant is None:
            self.note(None, "unauthorized")
            return None, "unknown API token"
        return tenant, None

    # -- budgets -----------------------------------------------------------

    def check_rate(self, tenant: TenantConfig | None) -> float:
        """Per-tenant request rate check: 0.0 ok, else retry-after."""
        if tenant is None:
            return 0.0
        wait = self._buckets[tenant.name].try_acquire()
        if wait > 0.0:
            self.note(tenant.name, "rate_limited")
        return wait

    def charge_cost(self, tenant: TenantConfig | None, units: float) -> float:
        """Charge ``units`` of sweep cost: 0.0 ok, else retry-after."""
        if tenant is None or units <= 0:
            return 0.0
        wait = self._costs[tenant.name].try_charge(units)
        if wait > 0.0:
            self.note(tenant.name, "cost_limited")
        return wait

    # -- bounded in-flight pool --------------------------------------------

    def try_enter(self, tenant: TenantConfig | None = None) -> float | None:
        """Claim an in-flight slot; ``None`` granted, else retry-after.

        Granted callers **must** pair this with :meth:`leave`. When the
        pool is full the caller waits up to ``queue_wait_seconds``
        (bounded to ``max_queue`` concurrent waiters); past either
        bound the request is shed.
        """
        # Same injected clock as the token buckets, so tests drive the
        # queue-wait deadline and slot shedding deterministically too.
        deadline = self._clock() + self.queue_wait_seconds
        with self._cond:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                _OBS_INFLIGHT.set(self._inflight)
                return None
            if self._queued >= self.max_queue:
                return self._shed(tenant)
            self._queued += 1
            _OBS_QUEUED.set(self._queued)
            try:
                while self._inflight >= self.max_inflight:
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        return self._shed(tenant)
                    self._cond.wait(remaining)
                self._inflight += 1
                _OBS_INFLIGHT.set(self._inflight)
                return None
            finally:
                self._queued -= 1
                _OBS_QUEUED.set(self._queued)

    def _shed(self, tenant: TenantConfig | None) -> float:
        # Callers hold self._cond.
        self.shed_total += 1
        self.note(tenant.name if tenant is not None else None, "shed")
        return self.shed_retry_after

    def leave(self) -> None:
        """Release the slot claimed by a granted :meth:`try_enter`."""
        with self._cond:
            self._inflight -= 1
            _OBS_INFLIGHT.set(self._inflight)
            self._cond.notify()

    # -- reporting ---------------------------------------------------------

    def census(self) -> dict:
        """Live admission state for ``GET /stats`` and the gauges."""
        with self._cond:
            inflight, queued = self._inflight, self._queued
        return {
            "mode": "open" if self.open_mode else "tenants",
            "tenants": len(self._by_token),
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "inflight": inflight,
            "queued": queued,
            "shed_total": self.shed_total,
        }

    def refresh_gauges(self) -> None:
        """Push the live slot counts into the registry gauges."""
        with self._cond:
            _OBS_INFLIGHT.set(self._inflight)
            _OBS_QUEUED.set(self._queued)
