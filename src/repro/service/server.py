"""The experiment query service: routing, handlers, HTTP plumbing.

:class:`ExperimentService` is the pure request handler — method + path
+ query + body in, ``(status, payload)`` out — so every route is unit
testable without sockets. :func:`make_server` wraps it in a threading
stdlib HTTP server; :func:`serve` is the blocking CLI entry point.

Execution goes through a store-backed
:class:`~repro.run.runner.Runner`, so ``POST /runs`` serves previously
computed specs straight from the store and persists anything it had to
simulate — submitting the same batch twice costs one simulation pass,
total.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qsl, urlparse

from repro.errors import ReproError, StoreError
from repro.run.results import ResultSet
from repro.run.runner import MissStreamCache, Runner
from repro.run.spec import RunSpec
from repro.store import ExperimentStore

#: Version stamp on every service response envelope.
SERVICE_SCHEMA = "repro.service/v1"


def _coerce(value: str) -> Any:
    """Best-effort typing for query-string values (int, float, str)."""
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            continue
    return value


class ExperimentService:
    """Route table + handlers over one store and one runner.

    Args:
        store: the persistent store to serve.
        runner: execution engine for ``POST /runs``; defaults to a
            serial store-backed runner with a private miss-stream cache
            (the service is long-lived — a private cache keeps its
            counters meaningful in ``GET /stats``).
    """

    def __init__(self, store: ExperimentStore, runner: Runner | None = None) -> None:
        self.store = store
        self.runner = (
            runner
            if runner is not None
            else Runner(cache=MissStreamCache(), store=store)
        )

    # -- dispatch ----------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        query: dict[str, str] | None = None,
        body: dict | None = None,
    ) -> tuple[int, dict]:
        """Dispatch one request; never raises — errors become payloads."""
        query = query or {}
        try:
            if method == "GET" and path == "/stats":
                return self._get_stats()
            if method == "GET" and path == "/results":
                return self._get_results(query)
            if method == "GET" and path.startswith("/runs/"):
                return self._get_run(path[len("/runs/"):])
            if method == "POST" and path == "/runs":
                return self._post_runs(body if body is not None else {})
            return 404, self._envelope({"error": f"unknown route {method} {path}"})
        except StoreError as exc:
            # A corrupt artifact is a server-side problem, not a bad request.
            return 500, self._envelope({"error": str(exc)})
        except ReproError as exc:
            # Library-validated input (unknown workload/mechanism, bad
            # knob values, ...) is the client's mistake.
            return 400, self._envelope({"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - service must stay alive
            # Anything else is a server bug: report it as one instead of
            # blaming the request, and keep serving.
            return 500, self._envelope(
                {"error": f"internal error: {type(exc).__name__}: {exc}"}
            )

    @staticmethod
    def _envelope(payload: dict) -> dict:
        return {"schema": SERVICE_SCHEMA, **payload}

    # -- routes ------------------------------------------------------------

    def _get_stats(self) -> tuple[int, dict]:
        return 200, self._envelope(
            {
                "store": self.store.stats(),
                "stream_cache": self.runner.cache.stats(),
            }
        )

    def _get_run(self, key: str) -> tuple[int, dict]:
        if not key or "/" in key:
            return 400, self._envelope({"error": f"malformed run key {key!r}"})
        stats = self.store.get_result(key)
        if stats is None:
            return 404, self._envelope({"error": f"no stored run for key {key!r}"})
        return 200, self._envelope(
            {"key": key, "run": json.loads(ResultSet([stats]).to_json())["runs"][0]}
        )

    def _get_results(self, query: dict[str, str]) -> tuple[int, dict]:
        filters = {name: _coerce(value) for name, value in query.items()}
        results = self.store.load_results()
        if filters:
            try:
                results = results.filter(**filters)
            except KeyError as exc:
                return 400, self._envelope({"error": str(exc)})
        payload = json.loads(results.to_json())
        payload["count"] = len(results)
        payload["filters"] = filters
        return 200, self._envelope(payload)

    def _post_runs(self, body: dict) -> tuple[int, dict]:
        if not isinstance(body, dict):
            return 400, self._envelope(
                {"error": f"request body must be an object, got {type(body).__name__}"}
            )
        raw_specs = body.get("specs")
        if not isinstance(raw_specs, list):
            return 400, self._envelope(
                {"error": "request body needs a 'specs' list of RunSpec objects"}
            )
        workers = body.get("workers", 0)
        if not isinstance(workers, int) or workers < 0:
            return 400, self._envelope(
                {"error": f"'workers' must be a non-negative integer, got {workers!r}"}
            )
        try:
            specs = [RunSpec.from_dict(raw) for raw in raw_specs]
        except (TypeError, ValueError) as exc:
            # Covers ConfigurationError plus raw type mistakes (e.g. a
            # string scale) the dataclass validators trip over.
            return 400, self._envelope({"error": str(exc)})
        runner = self.runner
        if workers > 1:
            runner = Runner(workers=workers, cache=self.runner.cache, store=self.store)
        # Per-request accounting via index probes, not global-counter
        # deltas: concurrent requests share the store's persistent
        # counters, so differencing them would attribute other
        # requests' lookups to this one. One probe per unique key —
        # "state at submission time".
        unique_keys = list(dict.fromkeys(spec.key() for spec in specs))
        hits = sum(1 for key in unique_keys if self.store.has_result(key))
        results = runner.run(specs)
        payload = json.loads(results.to_json())
        payload.update(
            {
                "keys": [spec.key() for spec in specs],
                "count": len(results),
                "store_hits": hits,
                "store_misses": len(unique_keys) - hits,
            }
        )
        return 200, self._envelope(payload)


class _RequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def _respond(self, status: int, payload: dict) -> None:
        data = json.dumps(payload, sort_keys=True).encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        status, payload = self.server.service.handle(
            "GET", parsed.path, dict(parse_qsl(parsed.query))
        )
        self._respond(status, payload)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            self._respond(
                400,
                {"schema": SERVICE_SCHEMA, "error": f"request body is not JSON: {exc}"},
            )
            return
        parsed = urlparse(self.path)
        status, payload = self.server.service.handle(
            "POST", parsed.path, dict(parse_qsl(parsed.query)), body
        )
        self._respond(status, payload)

    def log_message(self, format: str, *args: object) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class ExperimentServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`ExperimentService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: ExperimentService,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        super().__init__(address, _RequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(
    store: ExperimentStore | str,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 0,
    verbose: bool = False,
) -> ExperimentServer:
    """Build a ready-to-run server (``port=0`` picks a free port)."""
    if not isinstance(store, ExperimentStore):
        store = ExperimentStore(store)
    runner = Runner(workers=workers, cache=MissStreamCache(), store=store)
    return ExperimentServer((host, port), ExperimentService(store, runner), verbose)


def serve(
    store: ExperimentStore | str,
    host: str = "127.0.0.1",
    port: int = 8321,
    workers: int = 0,
    verbose: bool = False,
) -> int:
    """Blocking CLI entry point: print the address and serve forever."""
    server = make_server(store, host=host, port=port, workers=workers, verbose=verbose)
    print(
        f"repro-tlb service on {server.url} "
        f"(store: {server.service.store.root}, workers: {workers})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
    return 0
