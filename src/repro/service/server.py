"""The experiment query service: routing, handlers, HTTP plumbing.

:class:`ExperimentService` is the pure request handler — method + path
+ query + body in, ``(status, payload)`` out — so every route is unit
testable without sockets. :func:`make_server` wraps it in a threading
stdlib HTTP server; :func:`serve` is the blocking CLI entry point.

Execution goes through a store-backed
:class:`~repro.run.runner.Runner`, so ``POST /runs`` serves previously
computed specs straight from the store and persists anything it had to
simulate — submitting the same batch twice costs one simulation pass,
total.

The service also hosts the distributed sweep scheduler: a persistent
:class:`~repro.sched.queue.JobQueue` (stored next to the experiment
artifacts as ``<store>/jobs.sqlite``) behind ``POST /jobs`` / ``/claim``
/ ``/complete`` / ``/heartbeat`` and ``GET /jobs/<id>`` /
``/progress``. Submission probes the store so already-computed specs
never enter the queue, claims re-probe it so a spec landed mid-sweep is
never handed out twice, and completions write rows back through the
store — content-addressed and deduplicated.

Streaming replay lives under ``/streams``: ``POST /streams`` opens a
suspendable :class:`~repro.ckpt.ReplaySession` for one spec, chunked
``POST /streams/<id>/advance`` replays the next N miss entries, and
``GET /streams/<id>/stats`` reports progress and statistics so far.
Every advance checkpoints the session (content-addressed snapshot +
descriptor record) through the store's ``ckpt`` artifacts, so sessions
survive idle eviction *and* full server restarts: an unknown session id
is restored from its persisted snapshot on the next touch, and the
final statistics are byte-identical to a single-shot replay no matter
how the stream was chunked or interrupted.

Health lives under ``GET /healthz`` (componentwise: store writable,
queue lag, worker leases, live sessions; 200 ok / 503 degraded) and
``GET /alerts`` (SLO alert records with firing→resolved state). When
telemetry is enabled the service also journals registry snapshots to
``<store>/telemetry.sqlite`` on a watchdog cadence, so latency and
queue history survive restarts and feed ``repro-tlb top`` trends.

Every request passes through an
:class:`~repro.service.admission.AdmissionController` first: API
tokens map to per-tenant namespaces (tenant-scoped result, stream, and
sweep visibility over the shared content-addressed artifacts), each
tenant has a token-bucket request rate and a sweep cost budget checked
before dispatch, and a bounded in-flight pool sheds overload with
``429`` + ``Retry-After`` instead of letting the threading server pile
up handler threads. The ops routes (``/healthz``, ``/alerts``,
``/metrics``) bypass admission so health probes keep answering while
the service sheds. With no tenants configured the service runs open
(anonymous, unlimited rate) exactly as before — only the in-flight
bound applies.
"""

from __future__ import annotations

import json
import math
import threading
import time
import uuid
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterable, Iterator
from urllib.parse import parse_qsl, unquote, urlparse

from repro.ckpt import CheckpointManager, ReplaySession, SessionSnapshot
from repro.errors import CkptError, ReproError, StoreError, SweepOwnershipError
from repro.obs import (
    COLLECTOR,
    REGISTRY,
    TRACE_HEADER,
    HealthWatchdog,
    MetricsJournal,
    RuleEngine,
    bind_context,
    component_health,
    current_context,
    default_rules,
    enable_console,
    get_logger,
    is_enabled,
    trace,
)
from repro.run.results import ResultSet
from repro.run.runner import MissStreamCache, Runner, annotate_stats
from repro.run.spec import RunSpec
from repro.sched.queue import JobQueue
from repro.service.admission import (
    AdmissionController,
    TenantConfig,
    load_tenant_config,
)
from repro.sim.stats import PrefetchRunStats
from repro.store import ExperimentStore

#: Version stamp on every service response envelope.
SERVICE_SCHEMA = "repro.service/v1"

#: Upper bound on a POST body. Anything larger is refused with 413
#: before a byte is read — a bogus ``Content-Length: 1e18`` must not
#: turn into an allocation.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Per-route request accounting. Routes are *normalized* (keys and ids
#: replaced by ``:key``/``:id`` placeholders) so label cardinality is
#: bounded by the route table, not by the store's contents.
_OBS_HTTP_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests served, by method, normalized route, and status.",
    labels=("method", "route", "status"),
)
_OBS_HTTP_SECONDS = REGISTRY.histogram(
    "repro_http_request_seconds",
    "HTTP request handling latency, by method and normalized route.",
    labels=("method", "route"),
)
_OBS_STORE_ENTRIES = REGISTRY.gauge(
    "repro_store_entries",
    "Store index entries per artifact kind at last scrape.",
    labels=("kind",),
)
_OBS_STORE_BYTES = REGISTRY.gauge(
    "repro_store_total_bytes",
    "Total bytes of stored artifacts at last scrape.",
)
_OBS_CACHE_ENTRIES = REGISTRY.gauge(
    "repro_stream_cache_entries",
    "Live entries in the service's miss-stream cache at last scrape.",
)
_OBS_SESSIONS = REGISTRY.gauge(
    "repro_stream_sessions",
    "Streaming replay sessions by lifecycle state.",
    labels=("state",),
)

_KNOWN_ROUTES = frozenset(
    (
        "/stats", "/results", "/progress", "/runs", "/jobs", "/claim",
        "/complete", "/heartbeat", "/cancel", "/streams", "/metrics", "/trace",
        "/healthz", "/alerts",
    )
)

#: Stream sub-route verbs the dispatcher actually serves. Anything else
#: under ``/streams/<id>/`` is a 404 and must not mint its own label.
_STREAM_VERBS = frozenset(("advance", "stats"))

#: Routes that bypass admission entirely: health probes and the
#: metrics scrape must keep answering while the service sheds load —
#: ``wait_healthy`` is exactly how operators watch a shedding service
#: recover. (``/metrics`` is served before ``handle()`` but is listed
#: for completeness.)
_OPS_ROUTES = frozenset(("/healthz", "/alerts", "/metrics"))

#: Routes reserved for worker-capable tenants: the fleet protocol
#: hands out other tenants' specs, so a plain (non-worker) token gets
#: 403 here instead of a cross-tenant view.
_WORKER_ROUTES = frozenset(("/claim", "/complete", "/heartbeat"))

_LOG = get_logger("service")


def _route_label(path: str) -> str:
    """Collapse a request path onto its route template.

    Every unroutable path — including unknown ``/streams/<id>/<verb>``
    verbs — shares the single ``<unknown>`` label, so a client probing
    arbitrary paths cannot grow the ``/metrics`` exposition: label
    cardinality is bounded by the route table, not by request traffic.
    """
    if path.startswith("/runs/"):
        return "/runs/:key"
    if path.startswith("/jobs/"):
        return "/jobs/:id"
    if path.startswith("/streams/"):
        _, _, verb = path[len("/streams/"):].partition("/")
        if verb in _STREAM_VERBS:
            return f"/streams/:id/{verb}"
        return "<unknown>"
    return path if path in _KNOWN_ROUTES else "<unknown>"


def _coerce(value: str) -> Any:
    """Best-effort typing for query-string values (int, float, str)."""
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            continue
    return value


class _SessionEntry:
    """One streaming session's slot in the sharded table.

    ``lock`` serializes everything that mutates *this* session —
    advance, checkpoint, restore — while other sessions proceed in
    parallel. ``dead`` marks an entry that has been evicted or
    discarded after a holder fetched it but before it acquired the
    lock: the holder must drop it and fetch a fresh entry.
    """

    __slots__ = ("lock", "session", "spec", "tenant", "touched", "dead")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.session: ReplaySession | None = None
        self.spec: RunSpec | None = None
        self.tenant: str | None = None
        self.touched = time.monotonic()
        self.dead = False


class _SessionShard:
    __slots__ = ("lock", "entries")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.entries: dict[str, _SessionEntry] = {}


class _SessionTable:
    """Sharded session map with per-session locks.

    Replaces the single service-wide ``_streams_lock`` RLock that
    serialized every ``/streams`` request: shard locks are held only
    for dict lookups (microseconds), and the per-entry locks serialize
    work on one session without blocking any other. Lock ordering
    rule: a shard lock is never held while *blocking* on an entry lock
    (eviction uses a non-blocking try-acquire), so the two layers
    cannot deadlock.
    """

    def __init__(self, shards: int = 16) -> None:
        self._shards = [_SessionShard() for _ in range(max(1, shards))]
        self._stats_lock = threading.Lock()
        self.restored = 0
        self.evicted = 0

    def _shard(self, session_id: str) -> _SessionShard:
        return self._shards[hash(session_id) % len(self._shards)]

    def get_or_create(self, session_id: str) -> _SessionEntry:
        """The live entry for ``session_id`` (a fresh one if absent/dead)."""
        shard = self._shard(session_id)
        with shard.lock:
            entry = shard.entries.get(session_id)
            if entry is None or entry.dead:
                entry = _SessionEntry()
                shard.entries[session_id] = entry
            return entry

    def discard(self, session_id: str, entry: _SessionEntry) -> None:
        """Drop ``entry`` (placeholder cleanup); marks it dead."""
        shard = self._shard(session_id)
        with shard.lock:
            if shard.entries.get(session_id) is entry:
                del shard.entries[session_id]
        entry.dead = True

    def __contains__(self, session_id: str) -> bool:
        shard = self._shard(session_id)
        with shard.lock:
            entry = shard.entries.get(session_id)
            return entry is not None and entry.session is not None

    def clear(self) -> None:
        """Forget every live session (tests simulate memory loss)."""
        for shard in self._shards:
            with shard.lock:
                for entry in shard.entries.values():
                    entry.dead = True
                    entry.session = None
                shard.entries.clear()

    def note_restored(self) -> None:
        with self._stats_lock:
            self.restored += 1

    def evict_idle(self, max_idle_seconds: float) -> int:
        """Evict sessions idle past the threshold; returns the count.

        Entries busy in another request (entry lock held) are skipped
        — they are by definition not idle — and a session's persisted
        checkpoint survives eviction, so the next touch restores it.
        """
        if max_idle_seconds <= 0:
            return 0
        now = time.monotonic()
        evicted = 0
        for shard in self._shards:
            with shard.lock:
                stale = [
                    (session_id, entry)
                    for session_id, entry in shard.entries.items()
                    if entry.session is not None
                    and now - entry.touched > max_idle_seconds
                ]
            for session_id, entry in stale:
                if not entry.lock.acquire(blocking=False):
                    continue
                try:
                    if (
                        entry.session is not None
                        and now - entry.touched > max_idle_seconds
                    ):
                        with shard.lock:
                            if shard.entries.get(session_id) is entry:
                                del shard.entries[session_id]
                        entry.dead = True
                        entry.session = None
                        evicted += 1
                finally:
                    entry.lock.release()
        if evicted:
            with self._stats_lock:
                self.evicted += evicted
        return evicted

    def census(self) -> dict[str, int]:
        """Live/restored/evicted counts for stats, healthz, gauges."""
        active = 0
        for shard in self._shards:
            with shard.lock:
                active += sum(
                    1 for entry in shard.entries.values()
                    if entry.session is not None
                )
        with self._stats_lock:
            return {
                "active": active,
                "restored": self.restored,
                "evicted": self.evicted,
            }


class ExperimentService:
    """Route table + handlers over one store and one runner.

    Args:
        store: the persistent store to serve.
        runner: execution engine for ``POST /runs``; defaults to a
            serial store-backed runner with a private miss-stream cache
            (the service is long-lived — a private cache keeps its
            counters meaningful in ``GET /stats``).
        queue: the scheduler's job queue; defaults to a persistent one
            at ``<store root>/jobs.sqlite``, so a restarted server
            resumes exactly where the fleet left off.
        max_idle_seconds: streaming sessions untouched for this long
            are evicted from memory (their persisted checkpoint stays
            in the store; the next touch restores them transparently).
        watchdog_interval_seconds: cadence of the background health
            watchdog (telemetry sampling + SLO evaluation). The
            watchdog is *constructed* here but only *started* by
            :func:`make_server`, so pure-handler tests stay
            single-threaded and drive ``GET /healthz`` synchronously.
        admission: the admission controller every non-ops request
            passes through; defaults to an open-mode controller
            (anonymous, rate-unlimited, in-flight bounded). Configure
            tenants for token auth + per-tenant budgets.

    When telemetry is enabled, the service owns a
    :class:`~repro.obs.journal.MetricsJournal` at
    ``<store root>/telemetry.sqlite`` (GC-exempt, survives restarts)
    and a :class:`~repro.obs.rules.RuleEngine` over
    :func:`~repro.obs.rules.default_rules`; ``REPRO_OBS_DISABLED``
    leaves all three of ``journal``/``engine``/``watchdog`` as
    ``None`` and ``GET /healthz`` falls back to direct probes only.
    """

    def __init__(
        self,
        store: ExperimentStore,
        runner: Runner | None = None,
        queue: JobQueue | None = None,
        max_idle_seconds: float = 300.0,
        watchdog_interval_seconds: float = 5.0,
        admission: AdmissionController | None = None,
    ) -> None:
        self.store = store
        self.runner = (
            runner
            if runner is not None
            else Runner(cache=MissStreamCache(), store=store)
        )
        self.queue = (
            queue if queue is not None else JobQueue(store.root / "jobs.sqlite")
        )
        self.ckpt = CheckpointManager(store)
        self.max_idle_seconds = max_idle_seconds
        self.admission = (
            admission if admission is not None else AdmissionController()
        )
        # Sharded session table with per-session locks: sessions mutate
        # under advance, so each one is serialized by its own entry
        # lock — but thousands of concurrent streams no longer funnel
        # through one service-wide lock.
        self._sessions = _SessionTable()
        # sweep_id -> the submitting request's trace context, so jobs
        # claimed later (a different request, a different worker) can
        # join the sweep's trace. Bounded FIFO; purely observability.
        # Handler threads mutate it concurrently, hence the lock.
        # (Sweep *ownership* is not kept here: it lives in the job
        # queue's sweeps table, so it survives restarts and is checked
        # atomically with submission.)
        self._sweep_traces: dict[str, str] = {}
        self._sweep_traces_max = 256
        self._sweep_traces_lock = threading.Lock()
        self.journal: MetricsJournal | None = None
        self.engine: RuleEngine | None = None
        self.watchdog: HealthWatchdog | None = None
        if is_enabled():
            self.journal = MetricsJournal(store.journal_path)
            self.engine = RuleEngine(self.journal, default_rules())
            self.watchdog = HealthWatchdog(
                self.journal,
                self.engine,
                interval_seconds=watchdog_interval_seconds,
                collect=self._refresh_gauges,
            )

    def close(self) -> None:
        """Stop the watchdog and close the telemetry journal.

        The store, queue, and runner are caller-owned; only the
        observability resources this service constructed are torn
        down. Safe to call more than once.
        """
        if self.watchdog is not None:
            self.watchdog.stop()
        if self.journal is not None:
            self.journal.close()

    # -- dispatch ----------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        query: dict[str, str] | None = None,
        body: dict | None = None,
        trace_parent: str | None = None,
        authorization: str | None = None,
    ) -> tuple[int, dict]:
        """Dispatch one request; never raises — errors become payloads.

        ``trace_parent`` is the caller's ``X-Repro-Trace`` context (if
        any): the request span — and everything the handler does under
        it, replays and store writes included — joins the caller's
        trace instead of starting a fresh one. ``authorization`` is
        the raw ``Authorization`` header, resolved to a tenant by the
        admission controller before any route runs.
        """
        query = query or {}
        route = _route_label(path)
        began = time.perf_counter()
        with bind_context(trace_parent):
            with trace("http.request", method=method, route=route) as span:
                status, payload = self._admit(
                    method, path, query, body, authorization
                )
                span.attrs["status"] = status
        _OBS_HTTP_REQUESTS.inc(method=method, route=route, status=str(status))
        _OBS_HTTP_SECONDS.observe(
            time.perf_counter() - began, method=method, route=route
        )
        return status, payload

    def _admit(
        self,
        method: str,
        path: str,
        query: dict[str, str],
        body: dict | None,
        authorization: str | None,
    ) -> tuple[int, dict]:
        """Admission gauntlet: auth → capability → rate → slot → route.

        A 429 from any stage carries ``retry_after`` (seconds) in the
        payload, which the HTTP layer mirrors into a ``Retry-After``
        header. A shed or limited request never reaches a handler, so
        shedding is cheap by construction.
        """
        if path in _OPS_ROUTES:
            # Ops routes skip admission entirely — and run with admin
            # (tenant-unscoped) visibility, which they don't use.
            return self._dispatch(method, path, query, body, None)
        tenant, auth_error = self.admission.authenticate(authorization)
        if auth_error is not None:
            return 401, self._envelope({"error": auth_error})
        if (
            tenant is not None
            and path in _WORKER_ROUTES
            and not tenant.worker
        ):
            self.admission.note(tenant.name, "forbidden")
            return 403, self._envelope(
                {
                    "error": f"tenant {tenant.name!r} is not worker-capable; "
                    f"{path} requires a worker token"
                }
            )
        wait = self.admission.check_rate(tenant)
        if wait > 0.0:
            return 429, self._envelope(
                {
                    "error": "request rate limit exceeded",
                    "retry_after": round(wait, 3),
                }
            )
        shed = self.admission.try_enter(tenant)
        if shed is not None:
            return 429, self._envelope(
                {
                    "error": "service at capacity, request shed",
                    "retry_after": round(shed, 3),
                }
            )
        try:
            self.admission.note(
                tenant.name if tenant is not None else None, "admitted"
            )
            return self._dispatch(method, path, query, body, tenant)
        finally:
            self.admission.leave()

    def _dispatch(
        self,
        method: str,
        path: str,
        query: dict[str, str],
        body: dict | None,
        tenant: TenantConfig | None = None,
    ) -> tuple[int, dict]:
        try:
            if method == "GET" and path == "/stats":
                return self._get_stats()
            if method == "GET" and path == "/healthz":
                return self._get_healthz()
            if method == "GET" and path == "/alerts":
                return self._get_alerts()
            if method == "GET" and path == "/results":
                return self._get_results(query, tenant)
            if method == "GET" and path == "/progress":
                return self._get_progress(query, tenant)
            if method == "GET" and path.startswith("/runs/"):
                return self._get_run(path[len("/runs/"):], tenant)
            if method == "GET" and path.startswith("/jobs/"):
                return self._get_job(path[len("/jobs/"):], tenant)
            if method == "GET" and path.startswith("/streams/"):
                session_id, _, verb = path[len("/streams/"):].partition("/")
                if verb == "stats":
                    return self._get_stream_stats(unquote(session_id), tenant)
                return 404, self._envelope(
                    {"error": f"unknown route {method} {path}"}
                )
            if method == "POST" and path == "/streams":
                return self._post_streams(
                    body if body is not None else {}, tenant
                )
            if method == "POST" and path.startswith("/streams/"):
                session_id, _, verb = path[len("/streams/"):].partition("/")
                if verb == "advance":
                    return self._post_stream_advance(
                        unquote(session_id),
                        body if body is not None else {},
                        tenant,
                    )
                return 404, self._envelope(
                    {"error": f"unknown route {method} {path}"}
                )
            if method == "POST" and path == "/runs":
                return self._post_runs(body if body is not None else {}, tenant)
            if method == "POST" and path == "/jobs":
                return self._post_jobs(body if body is not None else {}, tenant)
            if method == "POST" and path == "/claim":
                return self._post_claim(body if body is not None else {})
            if method == "POST" and path == "/complete":
                return self._post_complete(body if body is not None else {})
            if method == "POST" and path == "/heartbeat":
                return self._post_heartbeat(body if body is not None else {})
            if method == "POST" and path == "/cancel":
                return self._post_cancel(body if body is not None else {}, tenant)
            if method == "POST" and path == "/trace":
                return self._post_trace(body if body is not None else {})
            if method == "GET" and path == "/trace":
                return self._get_trace(query)
            return 404, self._envelope({"error": f"unknown route {method} {path}"})
        except (StoreError, CkptError) as exc:
            # A corrupt artifact (result row or checkpoint blob) is a
            # server-side problem, not a bad request.
            return 500, self._envelope({"error": str(exc)})
        except ReproError as exc:
            # Library-validated input (unknown workload/mechanism, bad
            # knob values, ...) is the client's mistake.
            return 400, self._envelope({"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - service must stay alive
            # Anything else is a server bug: report it as one instead of
            # blaming the request, and keep serving.
            return 500, self._envelope(
                {"error": f"internal error: {type(exc).__name__}: {exc}"}
            )

    @staticmethod
    def _envelope(payload: dict) -> dict:
        return {"schema": SERVICE_SCHEMA, **payload}

    # -- routes ------------------------------------------------------------

    def _get_stats(self) -> tuple[int, dict]:
        return 200, self._envelope(
            {
                "store": self.store.stats(),
                "stream_cache": self.runner.cache.stats(),
                "queue": self.queue.stats(),
                "streams": self._sessions.census(),
                "admission": self.admission.census(),
                "metrics": self._metrics_summary(),
            }
        )

    def _metrics_summary(self) -> dict:
        """Registry-derived latency/throughput digest for ``GET /stats``.

        The full registry is on ``GET /metrics``; this is the
        dashboard-sized cut (request latency quantiles, replay timing)
        that ``repro-tlb top`` polls.
        """
        http = _OBS_HTTP_SECONDS.summary()
        summary: dict[str, Any] = {
            "http_requests": int(http["count"]),
            "http_p50_ms": http["p50"] * 1000.0,
            "http_p99_ms": http["p99"] * 1000.0,
        }
        replay = REGISTRY.get("repro_replay_seconds")
        if replay is not None:
            rep = replay.summary()
            summary["replays"] = int(rep["count"])
            summary["replay_p50_ms"] = rep["p50"] * 1000.0
        summary["spans_collected"] = len(COLLECTOR)
        return summary

    def _refresh_gauges(self) -> None:
        """Refresh every scrape-time gauge from its owning layer.

        Shared by ``GET /metrics`` scrapes and the health watchdog's
        collect hook, so journal samples and expositions both reflect
        current state (queue depth *and* SLO lag, store entry counts,
        live sessions), not last-touch state.
        """
        self.queue.stats()  # refreshes the repro_sched_jobs gauges
        self.queue.slo_snapshot()  # refreshes queue-age / lease gauges
        store_stats = self.store.stats()
        for kind in ("result", "stream", "ckpt"):
            _OBS_STORE_ENTRIES.set(store_stats[f"{kind}_entries"], kind=kind)
        _OBS_STORE_BYTES.set(store_stats["total_bytes"])
        _OBS_CACHE_ENTRIES.set(self.runner.cache.stats()["entries"])
        sessions = self._sessions.census()
        for state in ("active", "restored", "evicted"):
            _OBS_SESSIONS.set(sessions[state], state=state)
        self.admission.refresh_gauges()

    def scrape_metrics(self) -> str:
        """Prometheus text for ``GET /metrics`` (gauges refreshed first)."""
        self._refresh_gauges()
        return REGISTRY.render()

    # -- health routes -----------------------------------------------------

    def _store_writable(self) -> bool:
        """Probe the artifact root with a real write + unlink."""
        probe = self.store.root / f".healthz-{uuid.uuid4().hex[:8]}"
        try:
            probe.write_bytes(b"")
            probe.unlink()
            return True
        except OSError:
            return False

    def _get_healthz(self) -> tuple[int, dict]:
        """Componentwise health: 200 when everything is ok, 503 if not.

        When the background watchdog is not running (pure-handler use,
        or a service that was never started), a synchronous watchdog
        tick samples the journal and re-evaluates the rules first, so
        the report is current either way. Works with telemetry
        disabled too — the componentwise probes don't need the
        registry, there are just no alerts to fold in.
        """
        if self.watchdog is not None and not self.watchdog.running:
            self.watchdog.tick()
        slo = self.queue.slo_snapshot()
        report = component_health(
            self._store_writable(), slo, self._sessions.census(), self.engine
        )
        return (200 if report["status"] == "ok" else 503), self._envelope(report)

    def _get_alerts(self) -> tuple[int, dict]:
        """Alert records with firing/resolved state (re-evaluated if idle)."""
        if self.engine is None:
            return 200, self._envelope(
                {"enabled": False, "alerts": [], "firing": []}
            )
        if self.watchdog is not None and not self.watchdog.running:
            self.watchdog.tick()
        return 200, self._envelope(
            {
                "enabled": True,
                "alerts": self.engine.alerts(),
                "firing": self.engine.firing(),
            }
        )

    def _get_run(
        self, key: str, tenant: TenantConfig | None = None
    ) -> tuple[int, dict]:
        if not key or "/" in key:
            return 400, self._envelope({"error": f"malformed run key {key!r}"})
        if tenant is not None and not self.store.is_granted(
            tenant.name, "result", key
        ):
            # Same answer as a missing key: a tenant cannot probe for
            # the existence of other tenants' results.
            return 404, self._envelope({"error": f"no stored run for key {key!r}"})
        stats = self.store.get_result(key)
        if stats is None:
            return 404, self._envelope({"error": f"no stored run for key {key!r}"})
        return 200, self._envelope(
            {"key": key, "run": json.loads(ResultSet([stats]).to_json())["runs"][0]}
        )

    def _get_results(
        self, query: dict[str, str], tenant: TenantConfig | None = None
    ) -> tuple[int, dict]:
        query = dict(query)
        page = {}
        for name, default in (("limit", None), ("offset", 0)):
            raw = query.pop(name, None)
            if raw is None:
                page[name] = default
                continue
            value = _coerce(raw)
            if not isinstance(value, int) or value < 0:
                return 400, self._envelope(
                    {"error": f"'{name}' must be a non-negative integer, got {raw!r}"}
                )
            page[name] = value
        filters = {name: _coerce(value) for name, value in query.items()}
        if tenant is not None:
            # Tenant-scoped view: only granted keys, filtered and paged
            # in memory (the grant set is the tenant's working set, not
            # the whole store).
            granted = self.store.granted_keys(tenant.name, "result")
            results = ResultSet(
                [
                    row
                    for row in self.store.load_results()
                    if row.extra.get("spec_key") in granted
                ]
            )
            if filters:
                try:
                    results = results.filter(**filters)
                except KeyError as exc:
                    return 400, self._envelope({"error": str(exc)})
            total = len(results)
            if page["offset"]:
                results = results[page["offset"]:]
            if page["limit"] is not None:
                results = results[:page["limit"]]
        elif filters:
            # Filters need every row in memory; page *after* filtering
            # so offset/limit walk the filtered set.
            try:
                results = self.store.load_results().filter(**filters)
            except KeyError as exc:
                return 400, self._envelope({"error": str(exc)})
            total = len(results)
            if page["offset"]:
                results = results[page["offset"]:]
            if page["limit"] is not None:
                results = results[:page["limit"]]
        else:
            # Unfiltered pages go through the index's LIMIT/OFFSET: one
            # page of artifact reads, however large the store is.
            total = self.store.count_results()
            results = self.store.load_results(
                limit=page["limit"], offset=page["offset"]
            )
        payload = json.loads(results.to_json())
        payload["count"] = len(results)
        payload["total"] = total
        payload["filters"] = filters
        payload.update(page)
        return 200, self._envelope(payload)

    def _post_runs(
        self, body: dict, tenant: TenantConfig | None = None
    ) -> tuple[int, dict]:
        if not isinstance(body, dict):
            return 400, self._envelope(
                {"error": f"request body must be an object, got {type(body).__name__}"}
            )
        raw_specs = body.get("specs")
        if not isinstance(raw_specs, list):
            return 400, self._envelope(
                {"error": "request body needs a 'specs' list of RunSpec objects"}
            )
        workers = body.get("workers", 0)
        if not isinstance(workers, int) or workers < 0:
            return 400, self._envelope(
                {"error": f"'workers' must be a non-negative integer, got {workers!r}"}
            )
        try:
            specs = [RunSpec.from_dict(raw) for raw in raw_specs]
        except (TypeError, ValueError) as exc:
            # Covers ConfigurationError plus raw type mistakes (e.g. a
            # string scale) the dataclass validators trip over.
            return 400, self._envelope({"error": str(exc)})
        # Sweep cost is charged *before* dispatch: one request, N specs
        # of work. Nothing has executed yet, so a 429 here is free to
        # retry once the budget refills.
        cost_wait = self.admission.charge_cost(tenant, len(specs))
        if cost_wait > 0.0:
            return 429, self._envelope(
                {
                    "error": f"sweep cost budget exhausted "
                    f"({len(specs)} specs requested)",
                    "retry_after": round(cost_wait, 3),
                }
            )
        runner = self.runner
        if workers > 1:
            runner = Runner(workers=workers, cache=self.runner.cache, store=self.store)
        # Per-request accounting via index probes, not global-counter
        # deltas: concurrent requests share the store's persistent
        # counters, so differencing them would attribute other
        # requests' lookups to this one. One probe per unique key —
        # "state at submission time".
        unique_keys = list(dict.fromkeys(spec.key() for spec in specs))
        hits = sum(1 for key in unique_keys if self.store.has_result(key))
        results = runner.run(specs)
        if tenant is not None:
            # Visibility grant, not a copy: the artifacts stay shared
            # and content-addressed across tenants.
            self.store.grant(tenant.name, "result", unique_keys)
        payload = json.loads(results.to_json())
        payload.update(
            {
                "keys": [spec.key() for spec in specs],
                "count": len(results),
                "store_hits": hits,
                "store_misses": len(unique_keys) - hits,
            }
        )
        return 200, self._envelope(payload)

    # -- streaming routes --------------------------------------------------

    @staticmethod
    def _session_key(session_id: str, tenant: TenantConfig | None) -> str:
        """The table/checkpoint key for a tenant's view of ``session_id``.

        Session ids are namespaced per tenant: tenant ``alpha`` opening
        ``s1`` and tenant ``beta`` opening ``s1`` are two unrelated
        sessions. That makes cross-tenant ids not merely unreadable but
        *uncolliding* — ``POST /streams`` with a foreign id opens your
        own fresh session instead of leaking a 409. Unambiguous because
        session ids may not contain ``/`` (validated on every route)
        while the separator is one.
        """
        return session_id if tenant is None else f"{tenant.name}/{session_id}"

    def _checkpoint_session(
        self,
        session_key: str,
        spec: RunSpec,
        session: ReplaySession,
        tenant: str | None = None,
    ) -> str:
        """Persist the session's snapshot and descriptor; returns the digest.

        Blob first, record second: a crash between the writes leaves at
        worst an orphan blob, never a record pointing at nothing newer
        than the previous checkpoint. The owning tenant rides in the
        descriptor record, so scoping survives eviction and restarts.
        """
        digest = self.ckpt.save(session.snapshot())
        self.ckpt.save_session(
            session_key,
            {
                "spec": spec.to_dict(),
                "spec_key": spec.key(),
                "stream_offset": session.offset,
                "state_digest": digest,
                "tenant": tenant,
            },
        )
        return digest

    def _restore_into(
        self, session_key: str, entry: _SessionEntry, session_id: str
    ) -> tuple[int, dict] | None:
        """Restore a persisted session into ``entry`` (lock held).

        ``session_key`` is the tenant-namespaced lookup key;
        ``session_id`` is the caller-visible id used in error messages.
        Returns ``None`` on success, or the ``(status, payload)`` error
        pair when the id is unknown (404) or its checkpoint blob has
        been garbage-collected (410).
        """
        record = self.ckpt.load_session(session_key)
        if record is None:
            return 404, self._envelope(
                {"error": f"no streaming session {session_id!r}"}
            )
        digest = record.get("state_digest")
        if not isinstance(digest, str):
            raise CkptError(
                f"corrupt session record {session_id!r}: no state digest"
            )
        snap = self.ckpt.load(digest)
        if snap is None:
            return 410, self._envelope(
                {
                    "error": f"session {session_id!r} cannot be restored: "
                    f"checkpoint {digest} was garbage-collected"
                }
            )
        if not isinstance(snap, SessionSnapshot):
            raise CkptError(
                f"session {session_id!r} points at a {type(snap).__name__}, "
                "not a session snapshot"
            )
        try:
            spec = RunSpec.from_dict(record.get("spec"))
        except (TypeError, ValueError) as error:
            # The record came from our own store, so a spec that no
            # longer parses is corruption, not a client mistake.
            raise CkptError(
                f"corrupt session record {session_id!r}: {error}"
            ) from error
        entry.session = ReplaySession.resume(
            snap, self.runner.miss_stream_for(spec), spec.build_prefetcher()
        )
        entry.spec = spec
        entry.tenant = record.get("tenant")
        entry.touched = time.monotonic()
        self._sessions.note_restored()
        return None

    @contextmanager
    def _locked_session(
        self, session_id: str, tenant: TenantConfig | None
    ) -> Iterator[tuple[_SessionEntry | None, tuple[int, dict] | None]]:
        """Yield ``(entry, error)`` with the entry's lock held.

        Exactly one of the pair is non-``None``. The lock is held for
        the caller's whole body, so an advance-and-checkpoint is atomic
        per session while other sessions run in parallel. An entry
        evicted between lookup and lock acquisition is detected by its
        ``dead`` flag and simply re-fetched (the restore path then
        brings it back from its checkpoint).
        """
        if not session_id or "/" in session_id:
            # No such id can ever be created (``POST /streams`` rejects
            # them), and a percent-encoded ``/`` must not reach the
            # tenant-namespaced key where it could forge a separator.
            yield None, (
                400,
                self._envelope({"error": f"malformed session id {session_id!r}"}),
            )
            return
        key = self._session_key(session_id, tenant)
        while True:
            entry = self._sessions.get_or_create(key)
            with entry.lock:
                if entry.dead:
                    continue
                if entry.session is None:
                    try:
                        error = self._restore_into(key, entry, session_id)
                    except BaseException:
                        self._sessions.discard(key, entry)
                        raise
                    if error is not None:
                        self._sessions.discard(key, entry)
                        yield None, error
                        return
                if tenant is not None and entry.tenant != tenant.name:
                    # Defense in depth: keys are tenant-namespaced, so
                    # a foreign session can't even be addressed — but a
                    # mismatched record still answers like a missing
                    # session rather than trusting the key alone.
                    yield None, (
                        404,
                        self._envelope(
                            {"error": f"no streaming session {session_id!r}"}
                        ),
                    )
                    return
                entry.touched = time.monotonic()
                yield entry, None
                return

    def _session_payload(
        self,
        session_id: str,
        session: ReplaySession,
        spec: RunSpec,
        **extra: object,
    ) -> dict:
        stats = annotate_stats(session.stats(), spec)
        return self._envelope(
            {
                "session_id": session_id,
                "spec_key": spec.key(),
                "offset": session.offset,
                "total": session.total,
                "remaining": session.remaining,
                "finished": session.finished,
                "stats": json.loads(ResultSet([stats]).to_json())["runs"][0],
                **extra,
            }
        )

    def _post_streams(
        self, body: dict, tenant: TenantConfig | None = None
    ) -> tuple[int, dict]:
        """Open a suspendable streaming session for one spec."""
        if not isinstance(body, dict):
            return 400, self._envelope(
                {"error": f"request body must be an object, got {type(body).__name__}"}
            )
        raw_spec = body.get("spec")
        if not isinstance(raw_spec, dict):
            return 400, self._envelope(
                {"error": "request body needs a 'spec' RunSpec object"}
            )
        try:
            spec = RunSpec.from_dict(raw_spec)
        except (TypeError, ValueError) as exc:
            return 400, self._envelope({"error": str(exc)})
        session_id = body.get("session_id")
        if session_id is None:
            session_id = f"stream-{uuid.uuid4().hex[:12]}"
        if not isinstance(session_id, str) or not session_id or "/" in session_id:
            return 400, self._envelope(
                {"error": f"malformed session id {session_id!r}"}
            )
        self._sessions.evict_idle(self.max_idle_seconds)
        # The tenant-namespaced key means an id collision can only be
        # with the caller's *own* sessions: another tenant's identical
        # id lives under a different key, so no 409 (or any other
        # signal) ever reveals it.
        key = self._session_key(session_id, tenant)
        while True:
            entry = self._sessions.get_or_create(key)
            with entry.lock:
                if entry.dead:
                    continue
                try:
                    if (
                        entry.session is not None
                        or self.ckpt.load_session(key) is not None
                    ):
                        # A 409 must not leave a fresh placeholder behind:
                        # later opens would mistake it for a live session.
                        if entry.session is None:
                            self._sessions.discard(key, entry)
                        return 409, self._envelope(
                            {
                                "error": f"streaming session {session_id!r} "
                                "already exists"
                            }
                        )
                    session = ReplaySession(
                        self.runner.miss_stream_for(spec),
                        spec.build_prefetcher(),
                        buffer_entries=spec.buffer_entries,
                        max_prefetches_per_miss=spec.max_prefetches_per_miss,
                    )
                    owner = tenant.name if tenant is not None else None
                    digest = self._checkpoint_session(
                        key, spec, session, owner
                    )
                    entry.session = session
                    entry.spec = spec
                    entry.tenant = owner
                    entry.touched = time.monotonic()
                except BaseException:
                    if entry.session is None:
                        self._sessions.discard(key, entry)
                    raise
                return 200, self._session_payload(
                    session_id, session, spec, state_digest=digest
                )

    def _post_stream_advance(
        self, session_id: str, body: dict, tenant: TenantConfig | None = None
    ) -> tuple[int, dict]:
        """Replay the next chunk of a session, then checkpoint it."""
        if not isinstance(body, dict):
            return 400, self._envelope(
                {"error": f"request body must be an object, got {type(body).__name__}"}
            )
        count = body.get("count")
        if count is not None and (
            not isinstance(count, int) or isinstance(count, bool) or count < 0
        ):
            return 400, self._envelope(
                {
                    "error": "'count' must be a non-negative integer or "
                    f"null, got {count!r}"
                }
            )
        self._sessions.evict_idle(self.max_idle_seconds)
        with self._locked_session(session_id, tenant) as (entry, error):
            if error is not None:
                return error
            advanced = entry.session.advance(count)
            digest = self._checkpoint_session(
                self._session_key(session_id, tenant),
                entry.spec,
                entry.session,
                entry.tenant,
            )
            return 200, self._session_payload(
                session_id,
                entry.session,
                entry.spec,
                advanced=advanced,
                state_digest=digest,
            )

    def _get_stream_stats(
        self, session_id: str, tenant: TenantConfig | None = None
    ) -> tuple[int, dict]:
        """Progress and statistics-so-far; restores an evicted session."""
        with self._locked_session(session_id, tenant) as (entry, error):
            if error is not None:
                return error
            return 200, self._session_payload(
                session_id, entry.session, entry.spec
            )

    # -- scheduler routes --------------------------------------------------

    @staticmethod
    def _parse_specs(body: dict) -> list[RunSpec] | tuple[int, dict]:
        raw_specs = body.get("specs")
        if not isinstance(raw_specs, list):
            return 400, {"error": "request body needs a 'specs' list of RunSpec objects"}
        try:
            return [RunSpec.from_dict(raw) for raw in raw_specs]
        except (TypeError, ValueError) as exc:
            return 400, {"error": str(exc)}

    def _post_jobs(
        self, body: dict, tenant: TenantConfig | None = None
    ) -> tuple[int, dict]:
        """Enqueue a sweep; store-known specs are precompleted on the spot."""
        if not isinstance(body, dict):
            return 400, self._envelope(
                {"error": f"request body must be an object, got {type(body).__name__}"}
            )
        specs = self._parse_specs(body)
        if not isinstance(specs, list):
            status, payload = specs
            return status, self._envelope(payload)
        if not specs:
            # An empty sweep does no work but would still claim the
            # sweep id (ownership, trace slot) — reject it outright.
            return 400, self._envelope(
                {"error": "'specs' must be a non-empty list"}
            )
        sweep_id = body.get("sweep_id") or f"sweep-{uuid.uuid4().hex[:12]}"
        if not isinstance(sweep_id, str):
            return 400, self._envelope(
                {"error": f"'sweep_id' must be a string, got {sweep_id!r}"}
            )
        max_attempts = body.get("max_attempts")
        if max_attempts is not None and (
            not isinstance(max_attempts, int) or max_attempts < 1
        ):
            return 400, self._envelope(
                {"error": f"'max_attempts' must be a positive integer, got {max_attempts!r}"}
            )
        owner = tenant.name if tenant is not None else None
        if tenant is not None:
            # Probe-hiding pre-check before the cost charge: a sweep id
            # owned by someone else answers exactly like a missing one,
            # and the tenant is not billed for the collision. The
            # authoritative check is the one inside ``queue.submit`` —
            # atomic with enqueueing, so ownership cannot be raced.
            known, recorded = self.queue.sweep_owner(sweep_id)
            if known and recorded != tenant.name:
                return 404, self._envelope({"error": f"no sweep {sweep_id!r}"})
        cost_wait = self.admission.charge_cost(tenant, len(specs))
        if cost_wait > 0:
            return 429, self._envelope(
                {
                    "error": "sweep cost budget exhausted "
                    f"({len(specs)} specs requested)",
                    "retry_after": round(cost_wait, 3),
                }
            )
        # Remember the submitting request's trace context so claims of
        # this sweep's jobs can hand it to workers (one connected trace
        # per sweep across client, service, and the whole fleet).
        sweep_ctx = current_context()
        if sweep_ctx is not None:
            with self._sweep_traces_lock:
                self._sweep_traces[sweep_id] = sweep_ctx
                while len(self._sweep_traces) > self._sweep_traces_max:
                    self._sweep_traces.pop(
                        next(iter(self._sweep_traces)), None
                    )
        keys = [spec.key() for spec in specs]
        stored = {key for key in set(keys) if self.store.has_result(key)}
        try:
            jobs = self.queue.submit(
                sweep_id,
                [(key, spec.to_dict()) for key, spec in zip(keys, specs)],
                precompleted=stored,
                max_attempts=max_attempts,
                owner=owner,
            )
        except SweepOwnershipError:
            # Lost the race between the pre-check and the transaction.
            return 404, self._envelope({"error": f"no sweep {sweep_id!r}"})
        if tenant is not None:
            # Granted at submission, not completion: the submitting
            # tenant may read the rows the moment workers land them.
            self.store.grant(tenant.name, "result", list(dict.fromkeys(keys)))
        counts: dict[str, int] = {}
        for job in jobs:
            counts[job["state"]] = counts.get(job["state"], 0) + 1
        return 200, self._envelope(
            {
                "sweep_id": sweep_id,
                "total": len(jobs),
                "queued": counts.get("queued", 0),
                "precompleted": sum(
                    job["state"] == "done" and job["result_source"] == "store"
                    for job in jobs
                ),
                "states": counts,
                "jobs": [
                    {"id": job["id"], "spec_key": job["spec_key"], "state": job["state"]}
                    for job in jobs
                ],
            }
        )

    def _sweep_trace(self, sweep_id: str) -> str | None:
        with self._sweep_traces_lock:
            return self._sweep_traces.get(sweep_id)

    def _post_claim(self, body: dict) -> tuple[int, dict]:
        """Lease queued jobs to a worker, store-probing each handout."""
        worker_id = body.get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            return 400, self._envelope(
                {"error": f"'worker_id' must be a non-empty string, got {worker_id!r}"}
            )
        limit = body.get("limit", 1)
        if not isinstance(limit, int) or limit < 1:
            return 400, self._envelope(
                {"error": f"'limit' must be a positive integer, got {limit!r}"}
            )
        lease = body.get("lease_seconds")
        if lease is not None and (
            not isinstance(lease, (int, float)) or lease <= 0
        ):
            return 400, self._envelope(
                {"error": f"'lease_seconds' must be > 0, got {lease!r}"}
            )
        handout: list[dict] = []
        while len(handout) < limit:
            batch = self.queue.claim(
                worker_id, limit=limit - len(handout), lease_seconds=lease
            )
            if not batch:
                break
            for job in batch:
                # Consult the store before handing a job out: a spec
                # another worker (or another sweep) already landed is
                # completed here, never replayed again.
                if self.store.has_result(job["spec_key"]):
                    self.queue.complete(job["id"], worker_id, source="store")
                else:
                    handout.append(
                        {
                            "id": job["id"],
                            "sweep_id": job["sweep_id"],
                            "spec_key": job["spec_key"],
                            "spec": job["spec"],
                            "attempts": job["attempts"],
                            "max_attempts": job["max_attempts"],
                            "lease_expires": job["lease_expires"],
                            "trace": self._sweep_trace(job["sweep_id"]),
                        }
                    )
        return 200, self._envelope({"worker_id": worker_id, "jobs": handout})

    def _post_complete(self, body: dict) -> tuple[int, dict]:
        """Record a job outcome; result rows land in the store first."""
        job_id = body.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            return 400, self._envelope(
                {"error": f"'job_id' must be a non-empty string, got {job_id!r}"}
            )
        worker_id = body.get("worker_id")
        job = self.queue.job(job_id)
        if job is None:
            return 404, self._envelope({"error": f"no job {job_id!r}"})
        error = body.get("error")
        if error is not None:
            failed = self.queue.fail(job_id, worker_id, error=str(error))
            return 200, self._envelope(
                {"id": job_id, "state": failed["state"], "attempts": failed["attempts"]}
            )
        run = body.get("run")
        if not isinstance(run, dict):
            return 400, self._envelope(
                {"error": "request body needs a 'run' result object (or an 'error')"}
            )
        try:
            stats = PrefetchRunStats(**run)
        except TypeError as exc:
            return 400, self._envelope({"error": f"malformed result row: {exc}"})
        if stats.extra.get("spec_key") != job["spec_key"]:
            return 400, self._envelope(
                {
                    "error": (
                        f"result row is for spec {stats.extra.get('spec_key')!r} "
                        f"but job {job_id} holds spec {job['spec_key']!r}"
                    )
                }
            )
        # Content-addressed write-back: first completion stores the row,
        # duplicates (late workers, client retries) find it present.
        stored = False
        if not self.store.has_result(job["spec_key"]):
            self.store.put_result(RunSpec.from_dict(job["spec"]), stats)
            stored = True
        outcome = self.queue.complete(job_id, worker_id, source="worker")
        return 200, self._envelope(
            {
                "id": job_id,
                "state": outcome["state"],
                "duplicate": outcome["duplicate"],
                "stored": stored,
            }
        )

    def _post_heartbeat(self, body: dict) -> tuple[int, dict]:
        worker_id = body.get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            return 400, self._envelope(
                {"error": f"'worker_id' must be a non-empty string, got {worker_id!r}"}
            )
        job_ids = body.get("job_ids")
        if not isinstance(job_ids, list) or not all(
            isinstance(job_id, str) for job_id in job_ids
        ):
            return 400, self._envelope(
                {"error": "'job_ids' must be a list of job id strings"}
            )
        lease = body.get("lease_seconds")
        if lease is not None and (
            not isinstance(lease, (int, float)) or lease <= 0
        ):
            return 400, self._envelope(
                {"error": f"'lease_seconds' must be > 0, got {lease!r}"}
            )
        beat = self.queue.heartbeat(worker_id, job_ids, lease_seconds=lease)
        return 200, self._envelope(beat)

    def _post_cancel(
        self, body: dict, tenant: TenantConfig | None = None
    ) -> tuple[int, dict]:
        sweep_id = body.get("sweep_id")
        if not isinstance(sweep_id, str) or not sweep_id:
            return 400, self._envelope(
                {"error": f"'sweep_id' must be a non-empty string, got {sweep_id!r}"}
            )
        if not self._owns_sweep(tenant, sweep_id):
            return 404, self._envelope({"error": f"no sweep {sweep_id!r}"})
        cancelled = self.queue.cancel(sweep_id)
        return 200, self._envelope({"sweep_id": sweep_id, "cancelled": cancelled})

    def _post_trace(self, body: dict) -> tuple[int, dict]:
        """Ingest spans shipped from a remote process (worker, client)."""
        if not isinstance(body, dict):
            return 400, self._envelope(
                {"error": f"request body must be an object, got {type(body).__name__}"}
            )
        spans = body.get("spans")
        if not isinstance(spans, list):
            return 400, self._envelope(
                {"error": "request body needs a 'spans' list of span objects"}
            )
        accepted = COLLECTOR.ingest(spans)
        return 200, self._envelope({"accepted": accepted})

    def _get_trace(self, query: dict[str, str]) -> tuple[int, dict]:
        """One trace's spans (``?trace_id=``) or summaries of all."""
        trace_id = query.get("trace_id")
        if trace_id:
            spans = [span.to_dict() for span in COLLECTOR.spans(trace_id)]
            return 200, self._envelope(
                {"trace_id": trace_id, "count": len(spans), "spans": spans}
            )
        return 200, self._envelope({"traces": COLLECTOR.traces()})

    def _owns_sweep(
        self, tenant: TenantConfig | None, sweep_id: str
    ) -> bool:
        """Whether ``tenant`` may act on ``sweep_id`` (admins always may).

        Ownership is read from the job queue's persistent record, so a
        tenant keeps access to their own sweeps across service restarts
        while other tenants keep getting 404s for them.
        """
        if tenant is None:
            return True
        known, owner = self.queue.sweep_owner(sweep_id)
        return known and owner == tenant.name

    def _get_job(
        self, job_id: str, tenant: TenantConfig | None = None
    ) -> tuple[int, dict]:
        if not job_id or "/" in job_id:
            return 400, self._envelope({"error": f"malformed job id {job_id!r}"})
        # Clients percent-encode the path segment (job ids embed the
        # user-supplied sweep id); decode it before the lookup.
        job_id = unquote(job_id)
        job = self.queue.job(job_id)
        if job is None:
            return 404, self._envelope({"error": f"no job {job_id!r}"})
        if not self._owns_sweep(tenant, job["sweep_id"]):
            # Same message as the missing case: job ids embed sweep ids,
            # so a 403 would leak which sweeps exist.
            return 404, self._envelope({"error": f"no job {job_id!r}"})
        return 200, self._envelope({"job": job})

    def _get_progress(
        self, query: dict[str, str], tenant: TenantConfig | None = None
    ) -> tuple[int, dict]:
        sweep_id = query.get("sweep_id")
        # Per-sweep progress is owner-only; the unscoped aggregate is
        # open to every tenant (counts only, no spec material).
        if sweep_id and not self._owns_sweep(tenant, sweep_id):
            return 404, self._envelope({"error": f"no sweep {sweep_id!r}"})
        return 200, self._envelope(self.queue.progress(sweep_id))


class _RequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def _respond(self, status: int, payload: dict) -> None:
        data = json.dumps(payload, sort_keys=True).encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        retry_after = payload.get("retry_after")
        if retry_after is not None:
            # The header is integer seconds per RFC 9110; the payload
            # keeps the precise float for clients that parse JSON.
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after))))
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _respond_text(self, status: int, text: str) -> None:
        data = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _access_log(self, method: str, status: int, began: float) -> None:
        _LOG.info(
            "%s %s %s %s %.1fms",
            self.address_string(),
            method,
            self.path,
            status,
            (time.perf_counter() - began) * 1000.0,
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        began = time.perf_counter()
        parsed = urlparse(self.path)
        if parsed.path == "/metrics":
            # Prometheus text, not a JSON envelope: rendered straight
            # from the registry, counted like any other route.
            text = self.server.service.scrape_metrics()
            _OBS_HTTP_REQUESTS.inc(method="GET", route="/metrics", status="200")
            _OBS_HTTP_SECONDS.observe(
                time.perf_counter() - began, method="GET", route="/metrics"
            )
            self._respond_text(200, text)
            self._access_log("GET", 200, began)
            return
        status, payload = self.server.service.handle(
            "GET",
            parsed.path,
            dict(parse_qsl(parsed.query)),
            trace_parent=self.headers.get(TRACE_HEADER),
            authorization=self.headers.get("Authorization"),
        )
        self._respond(status, payload)
        self._access_log("GET", status, began)

    def _read_body(self, began: float) -> bytes | None:
        """The request body, or ``None`` after responding with an error.

        Hardened against hostile framing: a malformed or negative
        ``Content-Length`` is a 400 and an oversized one a 413, both
        before reading a single body byte. The connection is closed on
        these paths — the unread body would otherwise be parsed as the
        next request on the keep-alive socket.
        """
        raw_length = self.headers.get("Content-Length")
        length: int | None
        try:
            length = int(raw_length) if raw_length is not None else 0
        except ValueError:
            length = None
        if length is None or length < 0:
            self.close_connection = True
            self._respond(
                400,
                {
                    "schema": SERVICE_SCHEMA,
                    "error": f"malformed Content-Length header {raw_length!r}",
                },
            )
            self._access_log("POST", 400, began)
            return None
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            self._respond(
                413,
                {
                    "schema": SERVICE_SCHEMA,
                    "error": (
                        f"request body of {length} bytes exceeds the "
                        f"{MAX_BODY_BYTES} byte cap"
                    ),
                },
            )
            self._access_log("POST", 413, began)
            return None
        return self.rfile.read(length)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        began = time.perf_counter()
        raw = self._read_body(began)
        if raw is None:
            return
        try:
            body = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            self._respond(
                400,
                {"schema": SERVICE_SCHEMA, "error": f"request body is not JSON: {exc}"},
            )
            self._access_log("POST", 400, began)
            return
        parsed = urlparse(self.path)
        status, payload = self.server.service.handle(
            "POST",
            parsed.path,
            dict(parse_qsl(parsed.query)),
            body,
            trace_parent=self.headers.get(TRACE_HEADER),
            authorization=self.headers.get("Authorization"),
        )
        self._respond(status, payload)
        self._access_log("POST", status, began)

    def log_message(self, format: str, *args: object) -> None:
        # http.server's own lines (error responses, malformed requests)
        # go through the structured logger instead of being discarded —
        # quiet by default, visible with --verbose or REPRO_OBS_LOG.
        _LOG.debug("%s %s", self.address_string(), format % args)


class ExperimentServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`ExperimentService`."""

    daemon_threads = True
    # The stdlib default listen backlog (5) resets connections under
    # concurrent load before admission control ever sees them; shedding
    # decisions belong to the AdmissionController, not the kernel.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service: ExperimentService,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        if verbose:
            enable_console("info")
        super().__init__(address, _RequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def server_close(self) -> None:
        """Tear down sockets, then the service's watchdog + journal."""
        super().server_close()
        self.service.close()


def make_server(
    store: ExperimentStore | str,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 0,
    verbose: bool = False,
    max_idle_seconds: float = 300.0,
    watchdog_interval_seconds: float = 5.0,
    tenants: Iterable[TenantConfig] | None = None,
    max_inflight: int = 64,
    max_queue: int = 256,
    admission: AdmissionController | None = None,
) -> ExperimentServer:
    """Build a ready-to-run server (``port=0`` picks a free port).

    The health watchdog starts here (when telemetry is enabled): a
    served store journals its metrics and evaluates SLO rules on the
    ``watchdog_interval_seconds`` cadence until ``server_close()``.

    With no ``tenants`` the service runs open (anonymous, unmetered
    rates) but still sheds load past ``max_inflight`` + ``max_queue``.
    Pass a prebuilt ``admission`` controller to tune the queue-wait
    and shed hints; it overrides the other three knobs.
    """
    if not isinstance(store, ExperimentStore):
        store = ExperimentStore(store)
    runner = Runner(workers=workers, cache=MissStreamCache(), store=store)
    if admission is None:
        admission = AdmissionController(
            tenants=tuple(tenants or ()),
            max_inflight=max_inflight,
            max_queue=max_queue,
        )
    service = ExperimentService(
        store,
        runner,
        max_idle_seconds=max_idle_seconds,
        watchdog_interval_seconds=watchdog_interval_seconds,
        admission=admission,
    )
    if service.watchdog is not None:
        service.watchdog.start()
    return ExperimentServer((host, port), service, verbose)


def serve(
    store: ExperimentStore | str,
    host: str = "127.0.0.1",
    port: int = 8321,
    workers: int = 0,
    verbose: bool = False,
    max_inflight: int = 64,
    tenant_config: str | None = None,
) -> int:
    """Blocking CLI entry point: print the address and serve forever."""
    tenants = load_tenant_config(tenant_config) if tenant_config else ()
    server = make_server(
        store,
        host=host,
        port=port,
        workers=workers,
        verbose=verbose,
        tenants=tenants,
        max_inflight=max_inflight,
    )
    mode = f"{len(tenants)} tenants" if tenants else "open access"
    print(
        f"repro-tlb service on {server.url} "
        f"(store: {server.service.store.root}, workers: {workers}, {mode})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
    return 0
