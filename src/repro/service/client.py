"""Minimal stdlib client for the repro-tlb experiment service.

Used by the service tests and the CI ``store-smoke`` scripted client;
also convenient from a notebook::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8321")
    client.wait_ready()
    batch = client.submit([{"workload": "galgel", "mechanism": "DP",
                            "scale": 0.1, "params": {"rows": 256}}])
    print(client.results(workload="galgel")["count"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any

from repro.errors import ReproError


class ServiceError(ReproError):
    """The service answered with a non-2xx status.

    Attributes:
        status: HTTP status code (0 when the server was unreachable).
        payload: decoded JSON error payload, when there was one.
    """

    def __init__(self, status: int, payload: dict | None, message: str) -> None:
        self.status = status
        self.payload = payload or {}
        super().__init__(message)


class ServiceClient:
    """Tiny JSON-over-HTTP client bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def request(
        self, path: str, payload: dict | None = None, method: str | None = None
    ) -> dict:
        """One request; returns the decoded payload or raises ServiceError."""
        data = json.dumps(payload).encode() if payload is not None else None
        method = method or ("POST" if data is not None else "GET")
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                decoded = json.loads(body)
            except (json.JSONDecodeError, ValueError):
                decoded = None
            message = (decoded or {}).get("error", body.decode(errors="replace"))
            raise ServiceError(
                exc.code, decoded, f"{method} {path} -> {exc.code}: {message}"
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(0, None, f"service unreachable at {self.base_url}: {exc}") from exc

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.1) -> dict:
        """Poll ``GET /stats`` until the service answers (or time out)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.stats()
            except ServiceError as exc:
                if exc.status != 0 or time.monotonic() >= deadline:
                    raise
                time.sleep(interval)

    # -- endpoint wrappers -------------------------------------------------

    def stats(self) -> dict:
        return self.request("/stats")

    def run(self, key: str) -> dict:
        return self.request(f"/runs/{key}")

    def results(self, **filters: Any) -> dict:
        query = urllib.parse.urlencode(filters)
        return self.request("/results" + (f"?{query}" if query else ""))

    def submit(self, specs: list[dict], workers: int = 0) -> dict:
        """``POST /runs``: execute (or fetch) a batch of spec dicts."""
        return self.request("/runs", {"specs": specs, "workers": workers})
