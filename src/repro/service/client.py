"""Minimal stdlib client for the repro-tlb experiment service.

Used by the service tests and the CI ``store-smoke`` scripted client;
also convenient from a notebook::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8321")
    client.wait_ready()
    batch = client.submit([{"workload": "galgel", "mechanism": "DP",
                            "scale": 0.1, "params": {"rows": 256}}])
    print(client.results(workload="galgel")["count"])

Transient transport failures (connection refused/reset mid-poll — the
service restarting, a worker fleet hammering one socket) are retried
with exponential backoff and jitter, but only for *idempotent*
requests: every GET, plus POSTs the caller explicitly marks idempotent
(the scheduler's ``/claim`` — a lost claim is recovered by lease
expiry). The total retry count is surfaced as :attr:`ServiceClient.retries`.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any

from repro.errors import ReproError
from repro.obs import REGISTRY, TRACE_HEADER, current_context

#: Client-side transport telemetry (satellite: surface retry/backoff
#: behaviour in the registry, not just the bare ``client.retries`` int).
_OBS_REQUESTS = REGISTRY.counter(
    "repro_client_requests_total",
    "Client requests by method and outcome (ok, http_error, unreachable).",
    labels=("method", "outcome"),
)
_OBS_RETRIES = REGISTRY.counter(
    "repro_client_retries_total",
    "Transient-failure retries by cause.",
    labels=("cause",),
)
_OBS_BACKOFF = REGISTRY.counter(
    "repro_client_backoff_seconds_total",
    "Cumulative seconds slept in retry backoff.",
)


def _retry_cause(exc: BaseException) -> str:
    """Classify a transient transport failure for the retry counter."""
    probe: BaseException | None = exc
    if isinstance(exc, urllib.error.URLError) and exc.reason is not None:
        reason = exc.reason
        probe = reason if isinstance(reason, BaseException) else None
        if probe is None:
            return "unreachable"
    if isinstance(probe, TimeoutError):
        return "timeout"
    if isinstance(probe, ConnectionRefusedError):
        return "connection_refused"
    if isinstance(probe, ConnectionResetError):
        return "connection_reset"
    if isinstance(probe, ConnectionError):
        return "connection_error"
    if isinstance(probe, OSError):
        return "os_error"
    return "unreachable"


class ServiceError(ReproError):
    """The service answered with a non-2xx status.

    Attributes:
        status: HTTP status code (0 when the server was unreachable).
        payload: decoded JSON error payload, when there was one.
        retry_after: the server's retry hint in seconds (from the
            payload's precise float, falling back to the integer
            ``Retry-After`` header), or ``None`` when it sent none.
    """

    def __init__(
        self,
        status: int,
        payload: dict | None,
        message: str,
        retry_after: float | None = None,
    ) -> None:
        self.status = status
        self.payload = payload or {}
        self.retry_after = retry_after
        super().__init__(message)


def _retry_after_hint(
    payload: dict | None, exc: urllib.error.HTTPError
) -> float | None:
    """The server's retry hint: JSON float preferred, header fallback."""
    if payload is not None:
        value = payload.get("retry_after")
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return max(0.0, float(value))
    header = exc.headers.get("Retry-After") if exc.headers is not None else None
    if header is not None:
        try:
            return max(0.0, float(header))
        except ValueError:
            return None
    return None


class ServiceClient:
    """Tiny JSON-over-HTTP client bound to one service base URL.

    Args:
        base_url: service address, e.g. ``http://127.0.0.1:8321``.
        timeout: per-request socket timeout in seconds.
        max_retries: transient-failure retries per idempotent request
            (0 disables retrying).
        retry_backoff: base delay in seconds; attempt ``n`` sleeps
            ``retry_backoff * 2**n`` plus up to one extra
            ``retry_backoff`` of jitter (decorrelates a worker fleet
            retrying in lockstep).
        token: API token sent as ``Authorization: Bearer <token>`` on
            every request (required when the service runs with
            tenants; ignored by an open-mode service).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        max_retries: int = 3,
        retry_backoff: float = 0.1,
        token: str | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.token = token
        self.max_retries = max(0, int(max_retries))
        self.retry_backoff = retry_backoff
        #: Total transient-failure retries this client has performed.
        self.retries = 0
        #: Total seconds this client has slept in retry backoff.
        self.backoff_seconds = 0.0
        # Private jitter source: drawing from the module-global RNG
        # would perturb the seeded stream of any host process (the
        # differential harness and hypothesis suites seed it).
        self._rng = random.Random()

    def request(
        self,
        path: str,
        payload: dict | None = None,
        method: str | None = None,
        idempotent: bool | None = None,
        timeout: float | None = None,
    ) -> dict:
        """One request; returns the decoded payload or raises ServiceError.

        ``idempotent`` controls transient-failure retrying; by default
        only GETs qualify. An HTTP error status is not retried — the
        server answered, retrying would not change its mind — with one
        exception: a 429 or 503 carrying a ``Retry-After`` hint is the
        server explicitly saying "ask again in N seconds", and those
        are retried (any method — an admission rejection means the
        request never reached a handler) after sleeping the hinted
        delay. Hinted sleeps draw on one request-level budget of
        ``timeout`` seconds: each sleep is capped by what remains, and
        once the budget is spent the error is raised instead of
        retried — so a call never blocks for hint-sleeps longer than
        its own ``timeout``, however many retries the server invites.
        ``timeout`` also overrides the client-wide socket timeout for
        this one request (a long streaming advance next to quick
        polls).
        """
        data = json.dumps(payload).encode() if payload is not None else None
        method = method or ("POST" if data is not None else "GET")
        if idempotent is None:
            idempotent = method == "GET"
        if timeout is None:
            timeout = self.timeout
        attempt = 0
        # One deadline for all hinted (Retry-After) sleeps this call
        # makes — a budget, not a per-attempt cap.
        hint_deadline = time.monotonic() + timeout
        headers = {"Content-Type": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        # Propagate the active trace so the server's spans (and any
        # worker spans downstream of it) join the caller's trace.
        trace_ctx = current_context()
        if trace_ctx is not None:
            headers[TRACE_HEADER] = trace_ctx
        while True:
            request = urllib.request.Request(
                self.base_url + path,
                data=data,
                method=method,
                headers=headers,
            )
            try:
                with urllib.request.urlopen(request, timeout=timeout) as response:
                    decoded = json.loads(response.read())
                _OBS_REQUESTS.inc(method=method, outcome="ok")
                return decoded
            except urllib.error.HTTPError as exc:
                body = exc.read()
                try:
                    decoded = json.loads(body)
                except (json.JSONDecodeError, ValueError):
                    decoded = None
                message = (decoded or {}).get("error", body.decode(errors="replace"))
                retry_after = _retry_after_hint(decoded, exc)
                hint_budget = hint_deadline - time.monotonic()
                if (
                    exc.code in (429, 503)
                    and retry_after is not None
                    and attempt < self.max_retries
                    and hint_budget > 0
                ):
                    # Honor the server's hint instead of the blind
                    # exponential schedule, but never sleep past what
                    # remains of this request's timeout budget — large
                    # hints across several attempts must not stack into
                    # a multi-timeout stall.
                    delay = min(retry_after, hint_budget)
                    attempt += 1
                    self.retries += 1
                    self.backoff_seconds += delay
                    _OBS_RETRIES.inc(cause=f"http_{exc.code}")
                    _OBS_BACKOFF.inc(delay)
                    time.sleep(delay)
                    continue
                _OBS_REQUESTS.inc(method=method, outcome="http_error")
                raise ServiceError(
                    exc.code,
                    decoded,
                    f"{method} {path} -> {exc.code}: {message}",
                    retry_after=retry_after,
                ) from exc
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                if not idempotent or attempt >= self.max_retries:
                    _OBS_REQUESTS.inc(method=method, outcome="unreachable")
                    raise ServiceError(
                        0, None, f"service unreachable at {self.base_url}: {exc}"
                    ) from exc
                delay = self.retry_backoff * (2 ** attempt)
                delay += self._rng.uniform(0.0, self.retry_backoff)
                attempt += 1
                self.retries += 1
                self.backoff_seconds += delay
                _OBS_RETRIES.inc(cause=_retry_cause(exc))
                _OBS_BACKOFF.inc(delay)
                time.sleep(delay)

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.1) -> dict:
        """Poll ``GET /stats`` until the service answers (or time out)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.stats()
            except ServiceError as exc:
                # 429 means the socket answered but admission shed the
                # poll — the service is up and busy; keep waiting.
                if exc.status not in (0, 429) or time.monotonic() >= deadline:
                    raise
                time.sleep(interval)

    def wait_healthy(self, timeout: float = 10.0, interval: float = 0.1) -> dict:
        """Poll ``GET /healthz`` until the service reports ``ok``.

        Stronger than :meth:`wait_ready`: the socket answering is not
        enough — every component (store writable, queue lag, worker
        leases, sessions) must probe healthy. Keeps polling through
        both "unreachable" (service still binding) and 503 "degraded"
        (a component still recovering); anything else — or the
        deadline — raises the last :class:`ServiceError`. Works with
        telemetry disabled too: ``/healthz`` probes components
        directly and just has no alerts to fold in.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except ServiceError as exc:
                # ``/healthz`` bypasses admission, so a 429 here can
                # only come from a proxy in front of the service —
                # still worth waiting out, like 503 "degraded".
                retryable = exc.status in (0, 503, 429)
                if not retryable or time.monotonic() >= deadline:
                    raise
                time.sleep(interval)

    # -- endpoint wrappers -------------------------------------------------

    def stats(self) -> dict:
        return self.request("/stats")

    def healthz(self) -> dict:
        """``GET /healthz``; raises ``ServiceError(503)`` when degraded."""
        return self.request("/healthz")

    def alerts(self) -> dict:
        """``GET /alerts``: SLO alert records with firing state."""
        return self.request("/alerts")

    def run(self, key: str) -> dict:
        return self.request(f"/runs/{key}")

    def results(
        self, limit: int | None = None, offset: int | None = None, **filters: Any
    ) -> dict:
        """``GET /results``: stored rows, filtered and (optionally) paged.

        With ``limit``/``offset`` the envelope's ``runs`` hold one page,
        ``count`` is the page size, and ``total`` is the full filtered
        row count — large stores are walked page by page instead of
        serialized into one response.
        """
        query = dict(filters)
        if limit is not None:
            query["limit"] = limit
        if offset is not None:
            query["offset"] = offset
        encoded = urllib.parse.urlencode(query)
        return self.request("/results" + (f"?{encoded}" if encoded else ""))

    def submit(
        self, specs: list[dict], workers: int = 0, timeout: float | None = None
    ) -> dict:
        """``POST /runs``: execute (or fetch) a batch of spec dicts."""
        return self.request(
            "/runs", {"specs": specs, "workers": workers}, timeout=timeout
        )

    # -- streaming wrappers --------------------------------------------------

    def stream_open(
        self,
        spec: dict,
        session_id: str | None = None,
        timeout: float | None = None,
    ) -> dict:
        """``POST /streams``: open a suspendable replay session."""
        body: dict[str, Any] = {"spec": spec}
        if session_id is not None:
            body["session_id"] = session_id
        return self.request("/streams", body, timeout=timeout)

    def stream_advance(
        self,
        session_id: str,
        count: int | None = None,
        timeout: float | None = None,
    ) -> dict:
        """``POST /streams/<id>/advance``: replay the next chunk.

        ``count=None`` replays everything remaining — pair that with a
        generous ``timeout`` for large streams.
        """
        quoted = urllib.parse.quote(session_id, safe="")
        return self.request(
            f"/streams/{quoted}/advance", {"count": count}, timeout=timeout
        )

    def stream_stats(self, session_id: str, timeout: float | None = None) -> dict:
        """``GET /streams/<id>/stats``: progress + statistics so far."""
        quoted = urllib.parse.quote(session_id, safe="")
        return self.request(f"/streams/{quoted}/stats", timeout=timeout)
