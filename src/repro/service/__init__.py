"""HTTP query service over the persistent experiment store.

A thin, dependency-free (stdlib ``http.server``) JSON API that makes a
:class:`~repro.store.ExperimentStore` queryable — and extendable —
without touching Python:

==========================  ===========================================
``GET  /stats``             store + miss-stream-cache counters
``GET  /runs/<key>``        one stored run by ``RunSpec.key()``
``GET  /results?field=v``   stored rows filtered via ``ResultSet.filter``
``POST /runs``              submit a RunSpec batch; cached specs are
                            served from the store, the rest simulated
                            and stored
==========================  ===========================================

Launch with ``repro-tlb serve --store DIR`` or programmatically via
:func:`make_server`; :class:`~repro.service.client.ServiceClient` is a
matching stdlib client for scripts and CI.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import (
    SERVICE_SCHEMA,
    ExperimentService,
    make_server,
    serve,
)

__all__ = [
    "ExperimentService",
    "SERVICE_SCHEMA",
    "ServiceClient",
    "ServiceError",
    "make_server",
    "serve",
]
