"""HTTP query service over the persistent experiment store.

A thin, dependency-free (stdlib ``http.server``) JSON API that makes a
:class:`~repro.store.ExperimentStore` queryable — and extendable —
without touching Python:

==========================  ===========================================
``GET  /stats``             store + miss-stream-cache + queue counters
``GET  /runs/<key>``        one stored run by ``RunSpec.key()``
``GET  /results?field=v``   stored rows filtered via ``ResultSet.filter``
                            (paged with ``limit``/``offset``)
``POST /runs``              submit a RunSpec batch; cached specs are
                            served from the store, the rest simulated
                            and stored
``POST /jobs``              enqueue a sweep for the worker fleet
                            (store-known specs precompleted)
``POST /claim``             lease queued jobs to a worker
``POST /complete``          deliver a result row (idempotent) or a
                            failure report (bounded retries)
``POST /heartbeat``         extend a worker's leases
``POST /cancel``            cancel a sweep's queued jobs
``GET  /jobs/<id>``         one job's full record
``GET  /progress``          state counts for a sweep (or the queue)
``POST /streams``           open a suspendable streaming replay
                            session for one spec
``POST /streams/<id>/advance``  replay the next N miss entries and
                            checkpoint the session
``GET  /streams/<id>/stats``    a session's progress + statistics so far
==========================  ===========================================

Streaming sessions are checkpointed into the store on every advance,
so they survive idle eviction and server restarts; the final
statistics are byte-identical to a one-shot ``POST /runs`` of the same
spec no matter how the stream was chunked.

Every route except ``/healthz``, ``/alerts``, and ``/metrics`` passes
through an :class:`~repro.service.admission.AdmissionController`
first. With tenants configured (``serve --tenant-config``), requests
authenticate with ``Authorization: Bearer <token>``, each tenant gets
a token-bucket request rate plus a sweep cost budget, and results,
streams, and sweeps are scoped to the submitting tenant. With no
tenants the service runs open exactly as before — but the in-flight
pool is still bounded, and overload is shed with ``429`` +
``Retry-After`` instead of unbounded handler threads.

Launch with ``repro-tlb serve --store DIR`` or programmatically via
:func:`make_server`; :class:`~repro.service.client.ServiceClient` is a
matching stdlib client for scripts and CI, and
:class:`~repro.sched.client.SchedulerClient` layers the job-queue
protocol (plus ``submit_sweep``) on top of it.
"""

from repro.service.admission import (
    ADMISSION_SCHEMA,
    AdmissionController,
    CostTracker,
    TenantConfig,
    TokenBucket,
    load_tenant_config,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import (
    MAX_BODY_BYTES,
    SERVICE_SCHEMA,
    ExperimentService,
    make_server,
    serve,
)

__all__ = [
    "ADMISSION_SCHEMA",
    "AdmissionController",
    "CostTracker",
    "ExperimentService",
    "MAX_BODY_BYTES",
    "SERVICE_SCHEMA",
    "ServiceClient",
    "ServiceError",
    "TenantConfig",
    "TokenBucket",
    "load_tenant_config",
    "make_server",
    "serve",
]
