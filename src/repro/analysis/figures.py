"""Mechanism-configuration sweeps behind the paper's Figures 7, 8 and 9.

Figure 7/8 compare RP against MP/DP/ASP across prediction-table sizes
``r`` (32..1024) and associativities; the exact bar sets below follow
the paper's legends (MP is shown at several associativities, DP and ASP
direct-mapped only, because — as both the paper and our Figure 9 sweep
find — table associativity barely moves the answer).

Figure 9 sweeps DP's own parameters on the eight highest-miss-rate
applications: table configuration (r × associativity), slots ``s``,
prefetch-buffer size ``b``, and TLB size.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Associativity label -> PredictionTable ``ways`` value.
ASSOC_WAYS: dict[str, int] = {"D": 1, "2": 2, "4": 4, "F": 0}


@dataclass(frozen=True)
class MechanismConfig:
    """One bar of a figure: a mechanism at a specific configuration."""

    mechanism: str
    rows: int = 256
    assoc: str = "D"
    slots: int = 2

    @property
    def label(self) -> str:
        """The paper's legend label, e.g. ``MP,1024,4`` or ``RP``."""
        if self.mechanism == "RP":
            return "RP"
        if self.mechanism == "ASP":
            return f"ASP,{self.rows}"
        return f"{self.mechanism},{self.rows},{self.assoc}"

    def factory_params(self) -> dict[str, int]:
        """Keyword arguments for :func:`repro.prefetch.create_prefetcher`."""
        return {
            "rows": self.rows,
            "ways": ASSOC_WAYS[self.assoc],
            "slots": self.slots,
        }


def figure7_configs() -> list[MechanismConfig]:
    """The bar set of Figures 7 and 8, in the paper's legend order.

    RP; MP at r=1024 (D/4/2), 512 (D/4), 256 (D/4/F); DP direct-mapped
    at r=1024..32; ASP at r=1024..32.
    """
    configs: list[MechanismConfig] = [MechanismConfig("RP")]
    configs += [
        MechanismConfig("MP", 1024, "D"),
        MechanismConfig("MP", 1024, "4"),
        MechanismConfig("MP", 1024, "2"),
        MechanismConfig("MP", 512, "D"),
        MechanismConfig("MP", 512, "4"),
        MechanismConfig("MP", 256, "D"),
        MechanismConfig("MP", 256, "4"),
        MechanismConfig("MP", 256, "F"),
    ]
    configs += [MechanismConfig("DP", rows, "D") for rows in (1024, 512, 256, 128, 64, 32)]
    configs += [MechanismConfig("ASP", rows, "D") for rows in (1024, 512, 256, 128, 64, 32)]
    return configs


def figure9_table_configs() -> list[MechanismConfig]:
    """Figure 9 panel (a): DP table size × associativity."""
    legend = [
        (1024, "D"), (1024, "4"), (1024, "2"),
        (512, "D"), (512, "4"),
        (256, "D"), (256, "4"), (256, "F"),
        (128, "D"), (128, "F"),
        (64, "D"), (64, "F"),
        (32, "D"), (32, "F"),
    ]
    return [MechanismConfig("DP", rows, assoc) for rows, assoc in legend]


#: Figure 9 panel (b): prediction slots per row.
FIGURE9_SLOTS: tuple[int, ...] = (2, 4, 6)
#: Figure 9 panel (c): prefetch buffer entries.
FIGURE9_BUFFERS: tuple[int, ...] = (16, 32, 64)
#: Figure 9 panel (d): TLB entries (fully associative).
FIGURE9_TLBS: tuple[int, ...] = (64, 128, 256)
