"""Learning-curve analysis: accuracy as a function of misses seen.

The paper's qualitative argument for DP (Section 2.5) is partly about
*warm-up*: history schemes (MP, RP) "take a while to learn a pattern,
since only repetitions in addresses can effect a prefetch", while
stride/distance schemes can predict from the second or third miss —
which is why DP captures first-time references that MP/RP never will.

:func:`accuracy_timeline` replays a miss stream and reports the
prefetch-buffer hit rate per window of misses, making that warm-up
visible; :func:`misses_to_reach` condenses it to "how many misses until
the mechanism reached X% of its final accuracy".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mem.trace import MissTrace
from repro.prefetch.base import Prefetcher
from repro.tlb.prefetch_buffer import PrefetchBuffer


@dataclass(frozen=True)
class TimelinePoint:
    """Accuracy over one window of the miss stream.

    Attributes:
        start_miss: index of the window's first miss.
        misses: misses in the window.
        hits: prefetch-buffer hits in the window.
    """

    start_miss: int
    misses: int
    hits: int

    @property
    def accuracy(self) -> float:
        return self.hits / self.misses if self.misses else 0.0


def accuracy_timeline(
    miss_trace: MissTrace,
    prefetcher: Prefetcher,
    window: int = 500,
    buffer_entries: int = 16,
) -> list[TimelinePoint]:
    """Replay a miss stream, recording accuracy per window of misses."""
    if window <= 0:
        raise ConfigurationError(f"window must be > 0, got {window}")
    buffer = PrefetchBuffer(buffer_entries)
    pcs, pages, evicted, _ = miss_trace.as_lists()

    points: list[TimelinePoint] = []
    window_hits = 0
    window_start = 0
    for index, page in enumerate(pages):
        pb_hit = buffer.lookup_remove(page)
        window_hits += int(pb_hit)
        for target in prefetcher.on_miss(pcs[index], page, evicted[index], pb_hit):
            buffer.insert(target)
        if (index + 1 - window_start) == window:
            points.append(TimelinePoint(window_start, window, window_hits))
            window_start = index + 1
            window_hits = 0
    tail = len(pages) - window_start
    if tail:
        points.append(TimelinePoint(window_start, tail, window_hits))
    return points


def final_accuracy(points: list[TimelinePoint]) -> float:
    """Steady-state accuracy: the mean of the last quarter of windows."""
    if not points:
        return 0.0
    tail = points[max(len(points) * 3 // 4, len(points) - 4):] or points
    hits = sum(p.hits for p in tail)
    misses = sum(p.misses for p in tail)
    return hits / misses if misses else 0.0


def misses_to_reach(
    points: list[TimelinePoint], fraction: float = 0.5
) -> int | None:
    """Misses until windowed accuracy first reaches ``fraction`` of the
    steady-state accuracy; ``None`` if it never does (or never works).
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
    target = final_accuracy(points) * fraction
    if target <= 0.0:
        return None
    for point in points:
        if point.accuracy >= target:
            return point.start_miss + point.misses
    return None


def render_timeline(
    points: list[TimelinePoint], label: str = "", width: int = 40
) -> str:
    """Sparkline-style text rendering of a timeline."""
    from repro.analysis.ascii_chart import bar

    lines = [f"{label} (window accuracy, {len(points)} windows)"] if label else []
    for point in points:
        lines.append(
            f"  @{point.start_miss:>8} |{bar(point.accuracy, width)}| "
            f"{point.accuracy:5.3f}"
        )
    return "\n".join(lines)
