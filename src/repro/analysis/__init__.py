"""Analysis: metrics, table/figure regeneration, ASCII charts.

- :mod:`repro.analysis.metrics` — prediction-accuracy aggregates
  (Table 2's average and miss-rate-weighted average, the "best or
  within 10%" count).
- :mod:`repro.analysis.tables` — renderers for Tables 1, 2 and 3.
- :mod:`repro.analysis.figures` — the mechanism-configuration sweeps
  behind Figures 7, 8 and 9.
- :mod:`repro.analysis.ascii_chart` — terminal bar charts standing in
  for the paper's bar figures.
- :mod:`repro.analysis.experiments` — the per-experiment orchestrator
  used by benchmarks, the CLI, and EXPERIMENTS.md.
"""

from repro.analysis.metrics import (
    average_accuracy,
    best_or_within_counts,
    weighted_average_accuracy,
)
from repro.analysis.experiments import ExperimentContext

__all__ = [
    "ExperimentContext",
    "average_accuracy",
    "best_or_within_counts",
    "weighted_average_accuracy",
]
