"""Per-suite and per-behaviour-class accuracy aggregation.

The paper's prose repeatedly aggregates over groups — "the working sets
are much smaller in some of the non-SPEC 2000 applications, and cold
misses do become prominent for these"; "DP does well for regular and
irregular applications". These helpers pivot per-run statistics by the
registry's suite and behaviour-class metadata so such statements can be
made (and checked) quantitatively.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.ascii_chart import format_table
from repro.sim.stats import PrefetchRunStats
from repro.workloads.composer import BehaviorClass
from repro.workloads.registry import get_app


def _mechanism_of(run: PrefetchRunStats) -> str:
    return run.mechanism.split(",")[0]


def _grouped_average(
    runs: Sequence[PrefetchRunStats],
    key_of,
) -> dict[str, dict[str, float]]:
    sums: dict[str, dict[str, list[float]]] = {}
    for run in runs:
        group = key_of(run)
        bucket = sums.setdefault(group, {}).setdefault(_mechanism_of(run), [])
        bucket.append(run.prediction_accuracy)
    return {
        group: {
            mechanism: sum(values) / len(values)
            for mechanism, values in mechanisms.items()
        }
        for group, mechanisms in sums.items()
    }


def suite_summary(runs: Sequence[PrefetchRunStats]) -> dict[str, dict[str, float]]:
    """Average accuracy per (suite, mechanism): ``suite -> mech -> acc``."""
    return _grouped_average(runs, lambda run: get_app(run.workload).suite)


def behavior_summary(
    runs: Sequence[PrefetchRunStats],
) -> dict[str, dict[str, float]]:
    """Average accuracy per (behaviour class, mechanism)."""
    return _grouped_average(
        runs, lambda run: get_app(run.workload).behavior.value
    )


def render_summary(
    summary: dict[str, dict[str, float]],
    mechanisms: Sequence[str] = ("DP", "RP", "ASP", "MP"),
    group_header: str = "Group",
) -> str:
    """Fixed-width rendering of a grouped summary."""
    rows = []
    for group, per_mechanism in summary.items():
        rows.append(
            [group] + [per_mechanism.get(m, float("nan")) for m in mechanisms]
        )
    return format_table([group_header] + list(mechanisms), rows)


def dominant_mechanism(summary: dict[str, dict[str, float]]) -> dict[str, str]:
    """The best mechanism per group (ties broken by insertion order)."""
    return {
        group: max(per_mechanism, key=per_mechanism.get)
        for group, per_mechanism in summary.items()
        if per_mechanism
    }


def behavior_class_counts() -> dict[str, int]:
    """How many of the 56 models fall in each behaviour class."""
    from repro.workloads.registry import all_app_names

    counts: dict[str, int] = {}
    for name in all_app_names():
        label = get_app(name).behavior.value
        counts[label] = counts.get(label, 0) + 1
    return counts


def assert_class_expectations(
    summary: dict[str, dict[str, float]],
) -> list[str]:
    """Check the paper's class-level winners; returns violations.

    - strided one-touch: DP and ASP lead; history schemes near zero.
    - strided repeated: DP at or near the top.
    - irregular (class e): nobody above noise.
    """
    failures: list[str] = []
    one_touch = summary.get(BehaviorClass.STRIDED_ONE_TOUCH.value)
    if one_touch:
        if min(one_touch["DP"], one_touch["ASP"]) < 0.4:
            failures.append(f"one-touch: expected DP/ASP to lead, got {one_touch}")
        if max(one_touch["RP"], one_touch["MP"]) > 0.1:
            failures.append(f"one-touch: history schemes should be ~0, got {one_touch}")
    repeated = summary.get(BehaviorClass.STRIDED_REPEATED.value)
    if repeated and repeated["DP"] < max(repeated.values()) - 0.05:
        failures.append(f"strided-repeated: expected DP near the top, got {repeated}")
    irregular = summary.get(BehaviorClass.IRREGULAR.value)
    if irregular and max(irregular.values()) > 0.12:
        failures.append(f"irregular: nobody should predict, got {irregular}")
    return failures
