"""One-shot experiment report: every table and figure in one document.

``repro-tlb report`` (or :func:`generate_report`) runs the full
evaluation — Tables 1–3, Figures 7–9 — through one shared
:class:`~repro.analysis.experiments.ExperimentContext` and renders a
single Markdown document with paper-vs-measured comparisons, suitable
for regenerating the numbers cited in EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.experiments import ExperimentContext
from repro.analysis.tables import (
    check_table2_shape,
    check_table3_shape,
    compare_table2,
    compare_table3,
)


def _code_block(text: str) -> str:
    return f"```\n{text}\n```"


def generate_report(
    scale: float = 0.25,
    context: ExperimentContext | None = None,
    include_figures: bool = True,
) -> str:
    """Run every experiment and render the Markdown report."""
    context = context or ExperimentContext(scale=scale)
    sections: list[str] = [
        "# TLB prefetching reproduction — full experiment report",
        f"Workload scale: {context.scale}; prefetch buffer: "
        f"{context.buffer_entries} entries.",
    ]

    sections.append("## Table 1 — hardware comparison")
    sections.append(_code_block(context.run_table1()))

    sections.append("## Table 2 — accuracy averages (s=2, r=256)")
    table2 = context.run_table2()
    sections.append(_code_block(compare_table2(table2)))
    failures = check_table2_shape(table2)
    sections.append(
        "Shape check: " + ("all paper orderings hold." if not failures
                           else "; ".join(failures))
    )

    sections.append("## Table 3 — normalized execution cycles")
    table3 = context.run_table3()
    sections.append(_code_block(compare_table3(table3)))
    failures = check_table3_shape(table3)
    sections.append(
        "Shape check: " + ("all paper orderings hold." if not failures
                           else "; ".join(failures))
    )

    if include_figures:
        sections.append("## Figure 7 — SPEC CPU2000 prediction accuracy")
        sections.append(
            _code_block(context.render_figure(context.run_figure7(), ""))
        )
        sections.append("## Figure 8 — MediaBench / Etch / PtrDist")
        sections.append(
            _code_block(context.render_figure(context.run_figure8(), ""))
        )
        sections.append("## Figure 9 — DP sensitivity")
        for title, runner in (
            ("9a: table size x associativity", context.run_figure9_tables),
            ("9b: prediction slots", context.run_figure9_slots),
            ("9c: prefetch buffer size", context.run_figure9_buffers),
            ("9d: TLB size", context.run_figure9_tlbs),
        ):
            sections.append(f"### Figure {title}")
            sections.append(_code_block(context.render_figure(runner(), "")))

    return "\n\n".join(sections) + "\n"


def write_report(path: str | Path, scale: float = 0.25) -> Path:
    """Generate the report and write it to ``path``."""
    path = Path(path)
    path.write_text(generate_report(scale=scale))
    return path
