"""d-TLB characterization: miss rates across TLB configurations.

The study's miss-rate inputs come from the authors' companion paper
([18], "Characterizing the d-TLB Behavior of SPEC CPU2000 Benchmarks",
SIGMETRICS 2002) — the ``m_i`` weights of Table 2 and the "8 highest
miss rate" selection both trace back to it. This module regenerates
that characterization for the synthetic models: per-application miss
rates over the paper's TLB grid (64/128/256 entries × 2-way/4-way/
fully-associative).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.ascii_chart import format_table
from repro.sim.config import TLBConfig
from repro.sim.two_phase import filter_tlb
from repro.workloads.registry import get_trace

#: The paper's TLB grid (Section 3.1).
TLB_GRID: tuple[TLBConfig, ...] = tuple(
    TLBConfig(entries=entries, ways=ways)
    for entries in (64, 128, 256)
    for ways in (2, 4, 0)
)


def miss_rate_table(
    apps: Sequence[str],
    scale: float = 0.25,
    configs: Sequence[TLBConfig] = TLB_GRID,
) -> dict[str, dict[str, float]]:
    """Miss rate per (application, TLB configuration).

    Returns ``app -> tlb label -> miss rate``. Traces are generated
    once per app; the TLB filter runs once per configuration.
    """
    table: dict[str, dict[str, float]] = {}
    for app in apps:
        trace = get_trace(app, scale)
        table[app] = {
            config.label: filter_tlb(trace, config).miss_rate
            for config in configs
        }
    return table


def render_miss_rates(table: dict[str, dict[str, float]]) -> str:
    """Fixed-width rendering of a miss-rate characterization."""
    if not table:
        return "(empty)"
    labels = list(next(iter(table.values())))
    rows = [
        [app] + [rates[label] for label in labels]
        for app, rates in table.items()
    ]
    return format_table(["App"] + labels, rows, float_format="{:.5f}")


def check_monotonicity(table: dict[str, dict[str, float]]) -> list[str]:
    """Check the guaranteed invariant; returns violations.

    For *fully associative* LRU, a larger TLB's contents always include
    a smaller one's (LRU stack inclusion), so more entries can never
    raise the miss rate. That is the only ordering LRU guarantees
    across this grid — associativity comparisons are **not** invariant
    (see :func:`associativity_anomalies`).
    """
    failures: list[str] = []
    for app, rates in table.items():
        series = [
            rates[f"{entries}e-FA"]
            for entries in (64, 128, 256)
            if f"{entries}e-FA" in rates
        ]
        if any(b > a + 1e-12 for a, b in zip(series, series[1:])):
            failures.append(f"{app}: miss rate rises with FA TLB size")
    return failures


def associativity_anomalies(table: dict[str, dict[str, float]]) -> list[str]:
    """Cases where *higher* associativity misses more at equal size.

    These are legitimate LRU behaviour, not bugs: set partitioning can
    protect a resident hot set from bursts of cold pages that, under
    one global LRU stack, would evict it (the eon model exhibits this
    at 64 entries). Reported so a characterization run can surface
    them, the way [18] discusses configuration effects.
    """
    anomalies: list[str] = []
    for app, rates in table.items():
        for entries in (64, 128, 256):
            fa = rates.get(f"{entries}e-FA")
            four = rates.get(f"{entries}e-4w")
            two = rates.get(f"{entries}e-2w")
            if fa is not None and four is not None and fa > four + 1e-12:
                anomalies.append(f"{app}: FA misses more than 4-way at {entries}e")
            if four is not None and two is not None and four > two + 1e-12:
                anomalies.append(f"{app}: 4-way misses more than 2-way at {entries}e")
    return anomalies
