"""Paper reference values and comparison helpers for Tables 2 and 3.

The numbers the paper reports are pinned here so benchmarks and
EXPERIMENTS.md can print paper-vs-measured side by side. Absolute
values are not expected to match (our substrate is a synthetic trace
model, not the authors' SimpleScalar + SPEC binaries); the *claims*
verified by :func:`check_table2_shape` / :func:`check_table3_shape` are
the orderings DESIGN.md section 4 lists.
"""

from __future__ import annotations

from repro.analysis.ascii_chart import format_table

#: Paper Table 2: scheme -> (average, weighted average), s=2, r=256.
PAPER_TABLE2: dict[str, tuple[float, float]] = {
    "DP": (0.43, 0.82),
    "RP": (0.29, 0.86),
    "ASP": (0.28, 0.73),
    "MP": (0.11, 0.04),
}

#: Paper Table 3: app -> (RP, DP) normalized execution cycles.
PAPER_TABLE3: dict[str, tuple[float, float]] = {
    "ammp": (0.97, 0.86),
    "mcf": (1.09, 0.95),
    "vpr": (0.99, 0.98),
    "twolf": (0.98, 0.98),
    "lucas": (1.00, 0.99),
}

#: Paper Section 3.2: miss rates of the 8 highest-miss applications on
#: a 128-entry fully-associative TLB.
PAPER_HIGH_MISS_RATES: dict[str, float] = {
    "galgel": 0.228,
    "adpcm-enc": 0.192,
    "mcf": 0.090,
    "apsi": 0.018,
    "vpr": 0.016,
    "lucas": 0.016,
    "twolf": 0.013,
    "ammp": 0.0113,
}


def compare_table2(measured: dict[str, dict[str, float]]) -> str:
    """Render measured Table 2 aggregates next to the paper's."""
    headers = ["Scheme", "avg (meas)", "avg (paper)", "wavg (meas)", "wavg (paper)"]
    rows = []
    for scheme, (paper_avg, paper_wavg) in PAPER_TABLE2.items():
        if scheme not in measured:
            continue
        rows.append(
            [
                scheme,
                measured[scheme]["average"],
                paper_avg,
                measured[scheme]["weighted"],
                paper_wavg,
            ]
        )
    return format_table(headers, rows)


def compare_table3(measured: dict[str, dict[str, float]]) -> str:
    """Render measured Table 3 normalized cycles next to the paper's."""
    headers = ["App", "RP (meas)", "RP (paper)", "DP (meas)", "DP (paper)"]
    rows = []
    for app, (paper_rp, paper_dp) in PAPER_TABLE3.items():
        if app not in measured:
            continue
        rows.append(
            [app, measured[app]["RP"], paper_rp, measured[app]["DP"], paper_dp]
        )
    return format_table(headers, rows)


def check_table2_shape(measured: dict[str, dict[str, float]]) -> list[str]:
    """Verify the paper's Table 2 orderings; return violated claims.

    Claims: DP first on the plain average; RP first on the weighted
    average with DP within 10%; MP's weighted average collapses below
    every other scheme.
    """
    failures: list[str] = []
    avg = {scheme: values["average"] for scheme, values in measured.items()}
    wavg = {scheme: values["weighted"] for scheme, values in measured.items()}
    if max(avg, key=avg.get) != "DP":
        failures.append(f"DP should lead the plain average, got {avg}")
    if wavg["RP"] < wavg["DP"]:
        if wavg["DP"] - wavg["RP"] > 0.05:
            failures.append(f"RP should edge DP on the weighted average, got {wavg}")
    if wavg["RP"] - wavg["DP"] > 0.15:
        failures.append(f"DP should stay close to RP on the weighted average, got {wavg}")
    if min(wavg, key=wavg.get) != "MP":
        failures.append(f"MP's weighted average should collapse, got {wavg}")
    return failures


def check_table3_shape(measured: dict[str, dict[str, float]]) -> list[str]:
    """Verify the paper's Table 3 claims; return violated claims.

    Claims: DP is at least as fast as RP on every listed app (despite
    RP's better accuracy there), and RP is a slowdown (>= 1.0) on mcf.
    """
    failures: list[str] = []
    for app, values in measured.items():
        if values["DP"] > values["RP"] + 1e-9:
            failures.append(
                f"{app}: DP ({values['DP']:.3f}) should not be slower than "
                f"RP ({values['RP']:.3f})"
            )
    if "mcf" in measured and measured["mcf"]["RP"] < 1.0:
        failures.append(
            f"mcf: RP should be a slowdown (>= 1.0), got {measured['mcf']['RP']:.3f}"
        )
    return failures
