"""Prediction-accuracy aggregates (the paper's Table 2 and headline claims).

Two averages are reported in the paper:

- the plain average over all ``n = 56`` applications,
  ``(Σ p_i) / n`` — how broadly a mechanism helps; and
- the miss-rate-weighted average ``Σ (m_i · p_i) / Σ m_i`` — how much
  it helps *where it matters* (the high-miss applications dominate).

The paper's headline count — DP "provides the best or within 10% of the
best prediction accuracy in 39 (and best in 36) of the 56 applications"
— is computed by :func:`best_or_within_counts`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.sim.stats import PrefetchRunStats


def average_accuracy(runs: Sequence[PrefetchRunStats]) -> float:
    """Plain average of prediction accuracy over runs: ``(Σ p_i)/n``."""
    if not runs:
        return 0.0
    return sum(run.prediction_accuracy for run in runs) / len(runs)


def weighted_average_accuracy(runs: Sequence[PrefetchRunStats]) -> float:
    """Miss-rate-weighted average: ``Σ (m_i · p_i) / Σ m_i``."""
    total_weight = sum(run.miss_rate for run in runs)
    if total_weight == 0.0:
        return 0.0
    weighted = sum(run.miss_rate * run.prediction_accuracy for run in runs)
    return weighted / total_weight


def best_or_within_counts(
    per_app: Mapping[str, Mapping[str, float]],
    mechanism: str,
    tolerance: float = 0.10,
    floor: float = 0.01,
) -> tuple[int, int]:
    """Count apps where ``mechanism`` is best / within ``tolerance`` of best.

    Args:
        per_app: ``app -> mechanism label -> accuracy``.
        mechanism: the label to score.
        tolerance: relative closeness to the per-app best (the paper
            uses "within 10% of the best").
        floor: apps whose best accuracy is below this are skipped — ties
            at zero (the eon/fma3d class) say nothing about quality.

    Returns:
        ``(best_count, best_or_within_count)``.
    """
    best = 0
    within = 0
    for accuracies in per_app.values():
        if mechanism not in accuracies or not accuracies:
            continue
        top = max(accuracies.values())
        if top < floor:
            continue
        mine = accuracies[mechanism]
        if mine >= top:
            best += 1
        if mine >= top * (1.0 - tolerance):
            within += 1
    return best, within


def accuracy_by_mechanism(
    runs: Sequence[PrefetchRunStats],
) -> dict[str, dict[str, float]]:
    """Pivot runs into ``app -> mechanism -> accuracy``."""
    table: dict[str, dict[str, float]] = {}
    for run in runs:
        table.setdefault(run.workload, {})[run.mechanism] = run.prediction_accuracy
    return table


def miss_rates(runs: Sequence[PrefetchRunStats]) -> dict[str, float]:
    """Per-app TLB miss rate (identical across mechanisms by design)."""
    rates: dict[str, float] = {}
    for run in runs:
        rates[run.workload] = run.miss_rate
    return rates
