"""The per-experiment orchestrator: one entry point per table/figure.

:class:`ExperimentContext` is a thin experiment-shaped layer over the
unified :class:`~repro.run.runner.Runner`: each ``run_*`` method builds
the declarative :class:`~repro.run.spec.RunSpec` batch for one table or
figure of the paper and executes it through the runner, which owns the
expensive intermediates — filtered TLB miss streams keyed by (app,
scale, TLB shape, page size) in a process-wide cache — so a benchmark
session touching many mechanism configurations filters each workload's
TLB exactly once (the two-phase split described in DESIGN.md). Pass
``workers=N`` to fan a whole figure's batch out to a process pool.

Each ``run_*`` method regenerates one experiment of the paper:

===============  ======================================================
``run_table1``   hardware comparison of the mechanisms
``run_figure``   prediction-accuracy bars for one suite (Fig. 7 / 8)
``run_table2``   average + weighted-average accuracy over all 56 apps
``run_table3``   normalized execution cycles, RP vs DP
``run_figure9``  DP sensitivity panels on the 8 high-miss apps
===============  ======================================================
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.analysis import figures
from repro.analysis.ascii_chart import format_table, grouped_bars
from repro.analysis.metrics import (
    accuracy_by_mechanism,
    average_accuracy,
    best_or_within_counts,
    weighted_average_accuracy,
)
from repro.errors import ConfigurationError
from repro.mem.trace import MissTrace
from repro.prefetch.base import Prefetcher
from repro.prefetch.factory import create_prefetcher
from repro.prefetch.null import NullPrefetcher
from repro.run import MechanismSpec, ResultSet, Runner, RunSpec
from repro.sim.config import TLBConfig
from repro.sim.cycle import CycleSimConfig, normalized_cycles, simulate_cycles
from repro.sim.stats import PrefetchRunStats
from repro.sim.two_phase import replay_prefetcher
from repro.workloads.registry import (
    HIGH_MISS_APPS,
    TABLE3_APPS,
    all_app_names,
    app_names_for_suite,
)

#: The four head-to-head mechanisms of Table 2, in the paper's order.
TABLE2_MECHANISMS: tuple[str, ...] = ("DP", "RP", "ASP", "MP")


class ExperimentContext:
    """Builds experiment batches and executes them through a Runner.

    Args:
        scale: workload volume multiplier (1.0 = the library's full
            trace size; benchmarks default lower for runtime).
        buffer_entries: prefetch buffer size ``b`` (paper default 16).
        workers: process-pool size for batch execution (``None`` =
            serial); forwarded to the :class:`Runner` when one is not
            supplied explicitly.
        runner: the execution engine; defaults to a fresh one over the
            process-wide miss-stream cache.
        engine: replay engine stamped on every spec this context
            builds — ``"auto"`` (default), ``"reference"`` or
            ``"fast"``; see :mod:`repro.sim.engine`.
        store: optional persistent :class:`~repro.store.ExperimentStore`
            (or store directory) the default runner consults — re-running
            a table/figure against the same store replays only the specs
            it has never executed (resumable sweeps). Mutually exclusive
            with ``runner`` (give the runner its own store instead).
        executor: execution backend for the default runner — ``"auto"``,
            ``"serial"``, ``"pool"``, or ``"distributed"`` (sweeps are
            submitted to the scheduler service at ``service_url`` and
            replayed by its worker fleet). Mutually exclusive with
            ``runner``.
        service_url: ``repro-tlb serve`` address for the distributed
            executor.
        request_timeout: per-HTTP-request socket timeout (seconds) for
            the distributed executor's service client.
        service_token: API token for a tenant-mode service (forwarded
            to the distributed executor's client).
    """

    def __init__(
        self,
        scale: float = 1.0,
        buffer_entries: int = 16,
        workers: int | None = None,
        runner: Runner | None = None,
        engine: str = "auto",
        store=None,
        executor: str = "auto",
        service_url: str | None = None,
        request_timeout: float = 30.0,
        service_token: str | None = None,
    ) -> None:
        if runner is not None and (
            store is not None or service_url is not None or executor != "auto"
        ):
            raise ConfigurationError(
                "pass either runner= or store=/executor=/service_url=, not "
                "both (a Runner already carries its own store and executor)"
            )
        self.scale = scale
        self.buffer_entries = buffer_entries
        self.runner = (
            runner
            if runner is not None
            else Runner(
                workers=workers,
                store=store,
                executor=executor,
                service_url=service_url,
                request_timeout=request_timeout,
                service_token=service_token,
            )
        )
        self.engine = engine

    def spec(
        self,
        app: str,
        mechanism: str,
        tlb: TLBConfig | None = None,
        buffer_entries: int | None = None,
        **mechanism_params: int,
    ) -> RunSpec:
        """A RunSpec at this context's scale and buffer defaults."""
        return RunSpec(
            workload=app,
            mechanism=MechanismSpec.of(mechanism, **mechanism_params),
            scale=self.scale,
            tlb=tlb if tlb is not None else TLBConfig(),
            buffer_entries=buffer_entries or self.buffer_entries,
            engine=self.engine,
        )

    def run_specs(self, specs: Sequence[RunSpec]) -> ResultSet:
        """Execute a batch through the runner (shared miss streams)."""
        return self.runner.run(specs)

    def miss_trace(self, app: str, tlb: TLBConfig | None = None) -> MissTrace:
        """Filtered miss stream for ``app`` under ``tlb`` (cached)."""
        return self.runner.miss_stream(app, tlb=tlb, scale=self.scale)

    def run_mechanism(
        self,
        app: str,
        prefetcher: Prefetcher,
        tlb: TLBConfig | None = None,
        buffer_entries: int | None = None,
    ) -> PrefetchRunStats:
        """Evaluate one *live* mechanism instance over one app.

        For already-constructed (possibly pre-trained) instances;
        declarative batches should go through :meth:`run_specs`.
        """
        return replay_prefetcher(
            self.miss_trace(app, tlb),
            prefetcher,
            buffer_entries=buffer_entries or self.buffer_entries,
        )

    # ------------------------------------------------------------------
    # Table 1
    # ------------------------------------------------------------------

    def run_table1(self) -> str:
        """Regenerate Table 1: hardware comparison at a glance."""
        mechanisms = [
            create_prefetcher("ASP"),
            create_prefetcher("MP"),
            create_prefetcher("RP"),
            create_prefetcher("DP"),
        ]
        descriptions = [m.describe_hardware() for m in mechanisms]
        headers = [""] + [d.name for d in descriptions]
        rows = [
            ["How many rows?"] + [d.rows for d in descriptions],
            ["Contents of a row"] + [d.row_contents for d in descriptions],
            ["Where is the table?"] + [d.location for d in descriptions],
            ["Indexed by"] + [d.index_source for d in descriptions],
            ["Memory ops per miss"] + [str(d.memory_ops_per_miss) for d in descriptions],
            ["Prefetches per miss"] + [d.max_prefetches for d in descriptions],
        ]
        return format_table(headers, rows)

    # ------------------------------------------------------------------
    # Figures 7 and 8
    # ------------------------------------------------------------------

    def run_figure(
        self,
        apps: Sequence[str],
        configs: Sequence[figures.MechanismConfig] | None = None,
    ) -> dict[str, dict[str, float]]:
        """Prediction accuracy for every (app, mechanism config) bar.

        Returns ``app -> legend label -> accuracy`` in figure order.
        """
        configs = list(configs) if configs is not None else figures.figure7_configs()
        coordinates = [(app, config) for app in apps for config in configs]
        batch = self.run_specs(
            [
                self.spec(app, config.mechanism, **config.factory_params())
                for app, config in coordinates
            ]
        )
        results: dict[str, dict[str, float]] = {}
        for (app, config), stats in zip(coordinates, batch):
            results.setdefault(app, {})[config.label] = stats.prediction_accuracy
        return results

    def run_figure7(self) -> dict[str, dict[str, float]]:
        """Figure 7: all SPEC CPU2000 applications."""
        return self.run_figure(app_names_for_suite("spec2000"))

    def run_figure8(self) -> dict[str, dict[str, float]]:
        """Figure 8: MediaBench, Etch and Pointer-Intensive suites."""
        apps = (
            app_names_for_suite("mediabench")
            + app_names_for_suite("etch")
            + app_names_for_suite("ptrdist")
        )
        return self.run_figure(apps)

    def render_figure(
        self, results: dict[str, dict[str, float]], title: str
    ) -> str:
        """Render figure results as grouped ASCII bars."""
        return grouped_bars(results, title=title)

    # ------------------------------------------------------------------
    # Table 2
    # ------------------------------------------------------------------

    def run_table2(
        self, apps: Iterable[str] | None = None, rows: int = 256, slots: int = 2
    ) -> dict[str, dict[str, float]]:
        """Average and weighted-average accuracy per mechanism.

        Returns ``mechanism -> {"average": .., "weighted": ..}`` plus
        the per-mechanism best-or-within counts under ``"best"`` /
        ``"within10"``.
        """
        app_list = list(apps) if apps is not None else all_app_names()
        coordinates = [
            (app, mechanism)
            for app in app_list
            for mechanism in TABLE2_MECHANISMS
        ]
        batch = self.run_specs(
            [
                self.spec(app, mechanism, rows=rows, ways=1, slots=slots)
                for app, mechanism in coordinates
            ]
        )
        runs_by_mechanism: dict[str, list[PrefetchRunStats]] = {}
        for (_, mechanism), stats in zip(coordinates, batch):
            runs_by_mechanism.setdefault(mechanism, []).append(stats)

        summary: dict[str, dict[str, float]] = {}
        all_runs = [run for runs in runs_by_mechanism.values() for run in runs]
        pivot_raw = accuracy_by_mechanism(all_runs)
        # Map configured labels (e.g. "DP,256,D") back to mechanism names.
        pivot: dict[str, dict[str, float]] = {}
        for app, per_label in pivot_raw.items():
            pivot[app] = {}
            for label, acc in per_label.items():
                pivot[app][label.split(",")[0]] = acc
        for mechanism, runs in runs_by_mechanism.items():
            best, within = best_or_within_counts(pivot, mechanism)
            summary[mechanism] = {
                "average": average_accuracy(runs),
                "weighted": weighted_average_accuracy(runs),
                "best": float(best),
                "within10": float(within),
            }
        return summary

    def render_table2(self, summary: dict[str, dict[str, float]]) -> str:
        headers = ["Scheme", "Average (Σp_i)/n", "Weighted Σ(m_i·p_i)/Σm_i", "Best", "Best/within 10%"]
        rows = [
            [
                mechanism,
                summary[mechanism]["average"],
                summary[mechanism]["weighted"],
                int(summary[mechanism]["best"]),
                int(summary[mechanism]["within10"]),
            ]
            for mechanism in TABLE2_MECHANISMS
            if mechanism in summary
        ]
        return format_table(headers, rows, float_format="{:.2f}")

    # ------------------------------------------------------------------
    # Table 3
    # ------------------------------------------------------------------

    def run_table3(
        self, apps: Sequence[str] | None = None, rows: int = 256
    ) -> dict[str, dict[str, float]]:
        """Normalized execution cycles (vs no prefetching) for RP and DP."""
        app_list = list(apps) if apps is not None else list(TABLE3_APPS)
        config = CycleSimConfig(buffer_entries=self.buffer_entries)
        results: dict[str, dict[str, float]] = {}
        for app in app_list:
            miss_trace = self.miss_trace(app)
            baseline = simulate_cycles(miss_trace, NullPrefetcher(), config)
            rp = simulate_cycles(miss_trace, create_prefetcher("RP"), config)
            dp = simulate_cycles(
                miss_trace, create_prefetcher("DP", rows=rows), config
            )
            results[app] = {
                "RP": normalized_cycles(rp, baseline),
                "DP": normalized_cycles(dp, baseline),
            }
        return results

    def render_table3(self, results: dict[str, dict[str, float]]) -> str:
        headers = ["App", "RP", "DP"]
        rows = [[app, values["RP"], values["DP"]] for app, values in results.items()]
        return format_table(headers, rows)

    # ------------------------------------------------------------------
    # Figure 9
    # ------------------------------------------------------------------

    def run_figure9_tables(self) -> dict[str, dict[str, float]]:
        """Panel (a): DP accuracy vs table size and associativity."""
        return self.run_figure(HIGH_MISS_APPS, figures.figure9_table_configs())

    def _run_panel(
        self, specs: list[RunSpec], labels: list[tuple[str, str]]
    ) -> dict[str, dict[str, float]]:
        """Execute one sensitivity panel batch; pivot to figure shape."""
        results: dict[str, dict[str, float]] = {}
        for (app, label), stats in zip(labels, self.run_specs(specs)):
            results.setdefault(app, {})[label] = stats.prediction_accuracy
        return results

    def run_figure9_slots(self) -> dict[str, dict[str, float]]:
        """Panel (b): DP accuracy vs prediction slots ``s``."""
        points = [
            (app, slots) for app in HIGH_MISS_APPS for slots in figures.FIGURE9_SLOTS
        ]
        return self._run_panel(
            [self.spec(app, "DP", rows=256, slots=slots) for app, slots in points],
            [(app, f"s = {slots}") for app, slots in points],
        )

    def run_figure9_buffers(self) -> dict[str, dict[str, float]]:
        """Panel (c): DP accuracy vs prefetch buffer size ``b``."""
        points = [
            (app, entries)
            for app in HIGH_MISS_APPS
            for entries in figures.FIGURE9_BUFFERS
        ]
        return self._run_panel(
            [
                self.spec(app, "DP", buffer_entries=entries, rows=256)
                for app, entries in points
            ],
            [(app, f"b = {entries}") for app, entries in points],
        )

    def run_figure9_tlbs(self) -> dict[str, dict[str, float]]:
        """Panel (d): DP accuracy vs TLB size (fully associative)."""
        points = [
            (app, entries) for app in HIGH_MISS_APPS for entries in figures.FIGURE9_TLBS
        ]
        return self._run_panel(
            [
                self.spec(app, "DP", tlb=TLBConfig(entries=entries), rows=256)
                for app, entries in points
            ],
            [(app, f"{entries}-entry TLB") for app, entries in points],
        )
