"""Terminal bar charts standing in for the paper's bar figures.

The paper's Figures 7–9 are grouped bar charts of prediction accuracy
(0..1) per application per mechanism configuration. These renderers
produce the same information as fixed-width text so a benchmark run
regenerates a figure directly into the console / a results file.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def bar(value: float, width: int = 40, fill: str = "#") -> str:
    """Render ``value`` in [0, 1] as a left-aligned bar of ``width``."""
    clamped = min(max(value, 0.0), 1.0)
    filled = round(clamped * width)
    return fill * filled + " " * (width - filled)


def grouped_bars(
    groups: Mapping[str, Mapping[str, float]],
    series_order: Sequence[str] | None = None,
    width: int = 40,
    title: str = "",
) -> str:
    """Render ``group -> series -> value`` as grouped text bars.

    Groups are applications; series are mechanism configurations (the
    paper's bar colors). Series order follows ``series_order`` when
    given, else the first group's insertion order.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    label_width = 0
    for series in groups.values():
        for name in series:
            label_width = max(label_width, len(name))
    for group_name, series in groups.items():
        lines.append(f"{group_name}:")
        names = list(series_order) if series_order else list(series)
        for name in names:
            if name not in series:
                continue
            value = series[name]
            lines.append(
                f"  {name:<{label_width}} |{bar(value, width)}| {value:5.3f}"
            )
        lines.append("")
    return "\n".join(lines)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Minimal fixed-width text table (used by the Table 1–3 renderers)."""
    rendered_rows = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
