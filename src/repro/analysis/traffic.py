"""Memory-traffic accounting per mechanism.

The paper's closing argument for DP over RP is traffic, not accuracy:
"RP generates much more memory traffic ranging from anywhere between
2-3 times that for DP" (Section 3.2, citing TR [19]), because each RP
miss spends four memory operations maintaining the recency stack before
fetching its two predictions, while DP only fetches.

:func:`traffic_comparison` measures exactly that: the prefetch-related
memory operations each mechanism induces on the same miss stream,
split into overhead (state maintenance) and fetches (entries brought
into the buffer), with the RP/DP ratio the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.trace import MissTrace
from repro.prefetch.factory import create_prefetcher
from repro.sim.two_phase import replay_prefetcher


@dataclass(frozen=True)
class TrafficSummary:
    """Prefetch-related memory operations of one mechanism on one app.

    Attributes:
        mechanism: mechanism label.
        overhead_ops: state-maintenance operations (RP pointer writes).
        fetch_ops: entry fetches into the prefetch buffer.
        tlb_misses: misses in the stream (for the per-miss rate).
        accuracy: the prediction accuracy achieved at that cost.
    """

    mechanism: str
    overhead_ops: int
    fetch_ops: int
    tlb_misses: int
    accuracy: float

    @property
    def total_ops(self) -> int:
        return self.overhead_ops + self.fetch_ops

    @property
    def ops_per_miss(self) -> float:
        return self.total_ops / self.tlb_misses if self.tlb_misses else 0.0


def measure_traffic(
    miss_trace: MissTrace,
    mechanism: str,
    rows: int = 256,
    buffer_entries: int = 16,
) -> TrafficSummary:
    """Replay one mechanism and summarize the traffic it induced."""
    stats = replay_prefetcher(
        miss_trace,
        create_prefetcher(mechanism, rows=rows),
        buffer_entries=buffer_entries,
    )
    return TrafficSummary(
        mechanism=stats.mechanism,
        overhead_ops=stats.overhead_memory_ops,
        fetch_ops=stats.prefetch_fetch_ops,
        tlb_misses=stats.tlb_misses,
        accuracy=stats.prediction_accuracy,
    )


def traffic_comparison(
    miss_trace: MissTrace,
    mechanisms: tuple[str, ...] = ("RP", "MP", "DP", "ASP"),
    rows: int = 256,
    buffer_entries: int = 16,
) -> dict[str, TrafficSummary]:
    """Traffic summaries for several mechanisms on one miss stream."""
    return {
        mechanism: measure_traffic(
            miss_trace, mechanism, rows=rows, buffer_entries=buffer_entries
        )
        for mechanism in mechanisms
    }


def rp_to_dp_traffic_ratio(
    miss_trace: MissTrace, rows: int = 256, buffer_entries: int = 16
) -> float:
    """The paper's quoted metric: RP's memory operations over DP's."""
    comparison = traffic_comparison(
        miss_trace, mechanisms=("RP", "DP"), rows=rows,
        buffer_entries=buffer_entries,
    )
    dp_ops = comparison["DP"].total_ops
    if dp_ops == 0:
        return float("inf") if comparison["RP"].total_ops else 0.0
    return comparison["RP"].total_ops / dp_ops


def render_traffic(comparison: dict[str, TrafficSummary]) -> str:
    """Fixed-width table of a traffic comparison."""
    from repro.analysis.ascii_chart import format_table

    rows = [
        [
            summary.mechanism,
            summary.overhead_ops,
            summary.fetch_ops,
            summary.total_ops,
            summary.ops_per_miss,
            summary.accuracy,
        ]
        for summary in comparison.values()
    ]
    return format_table(
        ["Mechanism", "Overhead ops", "Fetch ops", "Total", "Ops/miss", "Accuracy"],
        rows,
    )
