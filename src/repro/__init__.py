"""repro — reproduction of "Going the Distance for TLB Prefetching"
(Kandiraju & Sivasubramaniam, ISCA 2002).

The library implements the paper's contribution — Distance Prefetching
— together with every mechanism it compares against (tagged sequential,
arbitrary-stride, Markov, and recency prefetching), the TLB/prefetch-
buffer/page-table substrate they run on, the 56 synthetic application
models standing in for the paper's trace suites, and the simulation and
analysis harnesses that regenerate every table and figure of the
evaluation. See DESIGN.md for the system inventory and EXPERIMENTS.md
for paper-vs-measured results.

Quickstart — simulations are declared as :class:`RunSpec` records and
executed by a :class:`Runner`, which caches each workload's filtered
TLB miss stream process-wide and can fan batches out to worker
processes::

    from repro import Runner, RunSpec

    specs = [
        RunSpec.of("galgel", mech, scale=0.2, rows=256)
        for mech in ("DP", "RP", "ASP", "MP")
    ]
    results = Runner(workers=4).run(specs)   # one TLB filter, 4 replays
    print(results.pivot())                   # workload -> mechanism -> accuracy
    results.save("galgel.json")              # ResultSet round-trips as JSON

The single-run wrappers remain for quick interactive use::

    from repro import DistancePrefetcher, get_trace, evaluate

    trace = get_trace("galgel", scale=0.2)
    stats = evaluate(trace, DistancePrefetcher(rows=256))
    print(stats.prediction_accuracy)
"""

from repro.core.distance import DistancePrefetcher
from repro.core.distance_pair import DistancePairPrefetcher
from repro.core.pc_distance import PCDistancePrefetcher
from repro.core.prediction_table import PredictionTable, SlotList
from repro.errors import (
    ConfigurationError,
    ReproError,
    ResultMergeError,
    SchedulerError,
    StoreError,
    TraceError,
    UnknownPrefetcherError,
    UnknownWorkloadError,
)
from repro.mem.trace import MissTrace, ReferenceTrace
from repro.mem.trace_io import (
    load_miss_trace,
    load_reference_trace,
    save_miss_trace,
    save_reference_trace,
)
from repro.prefetch.base import HardwareDescription, Prefetcher
from repro.prefetch.factory import (
    PREFETCHER_NAMES,
    create_prefetcher,
    default_prefetcher_suite,
)
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.null import NullPrefetcher
from repro.prefetch.recency import RecencyPrefetcher
from repro.prefetch.sequential import SequentialPrefetcher
from repro.prefetch.stride import ArbitraryStridePrefetcher
from repro.run import MechanismSpec, MissStreamCache, ResultSet, Runner, RunSpec
from repro.sim.config import SimulationConfig, TLBConfig
from repro.sim.cycle import CycleSimConfig, CycleStats, normalized_cycles, simulate_cycles
from repro.sim.engine import ENGINES, resolve_engine
from repro.sim.fastpath import replay_fast
from repro.sim.functional import simulate
from repro.sim.stats import PrefetchRunStats
from repro.sched import DistributedExecutor, JobQueue, SchedulerClient, Worker
from repro.store import STORE_SCHEMA, ExperimentStore
from repro.sim.two_phase import evaluate, filter_tlb, replay_prefetcher
from repro.tlb.mmu import MMU, TranslationOutcome
from repro.tlb.page_table import PageTable, RecencyStack
from repro.tlb.prefetch_buffer import PrefetchBuffer
from repro.tlb.tlb import TLB
from repro.workloads.registry import (
    HIGH_MISS_APPS,
    SUITES,
    TABLE3_APPS,
    all_app_names,
    app_names_for_suite,
    get_app,
    get_trace,
)

__version__ = "1.0.0"

__all__ = [
    "ArbitraryStridePrefetcher",
    "ConfigurationError",
    "CycleSimConfig",
    "CycleStats",
    "DistancePairPrefetcher",
    "DistancePrefetcher",
    "ENGINES",
    "ExperimentStore",
    "HIGH_MISS_APPS",
    "HardwareDescription",
    "MMU",
    "MarkovPrefetcher",
    "MechanismSpec",
    "MissStreamCache",
    "MissTrace",
    "NullPrefetcher",
    "PCDistancePrefetcher",
    "PREFETCHER_NAMES",
    "PageTable",
    "PredictionTable",
    "Prefetcher",
    "PrefetchBuffer",
    "PrefetchRunStats",
    "RecencyPrefetcher",
    "RecencyStack",
    "ReferenceTrace",
    "ReproError",
    "ResultMergeError",
    "ResultSet",
    "RunSpec",
    "Runner",
    "STORE_SCHEMA",
    "SUITES",
    "SequentialPrefetcher",
    "SimulationConfig",
    "SlotList",
    "StoreError",
    "TABLE3_APPS",
    "TLB",
    "TLBConfig",
    "TraceError",
    "TranslationOutcome",
    "UnknownPrefetcherError",
    "UnknownWorkloadError",
    "all_app_names",
    "app_names_for_suite",
    "create_prefetcher",
    "default_prefetcher_suite",
    "evaluate",
    "filter_tlb",
    "get_app",
    "get_trace",
    "load_miss_trace",
    "load_reference_trace",
    "normalized_cycles",
    "replay_fast",
    "replay_prefetcher",
    "resolve_engine",
    "save_miss_trace",
    "save_reference_trace",
    "simulate",
    "simulate_cycles",
    "__version__",
]
