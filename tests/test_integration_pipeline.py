"""End-to-end integration tests across the full stack.

Each test exercises workload generation -> TLB filtering -> mechanism
replay -> analysis on real library entry points (no internal shortcuts),
asserting cross-cutting invariants rather than module behaviour.
"""

import pytest

from repro import (
    CycleSimConfig,
    NullPrefetcher,
    SimulationConfig,
    TLBConfig,
    create_prefetcher,
    evaluate,
    filter_tlb,
    get_trace,
    normalized_cycles,
    replay_prefetcher,
    simulate_cycles,
)
from repro.analysis.tables import check_table3_shape
from repro.prefetch.factory import PREFETCHER_NAMES


@pytest.fixture(scope="module")
def swim_trace():
    return get_trace("swim", 0.1)


class TestCrossMechanismInvariants:
    def test_all_mechanisms_produce_valid_stats(self, swim_trace):
        for name in PREFETCHER_NAMES:
            stats = evaluate(swim_trace, create_prefetcher(name, rows=64))
            assert 0.0 <= stats.prediction_accuracy <= 1.0, name
            assert stats.pb_hits <= stats.measured_misses, name
            assert stats.buffer_inserted <= stats.prefetches_issued, name

    def test_miss_count_identical_across_mechanisms(self, swim_trace):
        counts = {
            name: evaluate(swim_trace, create_prefetcher(name, rows=64)).tlb_misses
            for name in PREFETCHER_NAMES
        }
        assert len(set(counts.values())) == 1, counts

    def test_bigger_tlb_fewer_misses(self, swim_trace):
        small = filter_tlb(swim_trace, TLBConfig(entries=64))
        large = filter_tlb(swim_trace, TLBConfig(entries=256))
        assert large.num_misses <= small.num_misses

    def test_lower_associativity_not_better(self, swim_trace):
        """Conflict misses: a 2-way TLB can only miss more than FA."""
        fully = filter_tlb(swim_trace, TLBConfig(entries=128))
        two_way = filter_tlb(swim_trace, TLBConfig(entries=128, ways=2))
        assert two_way.num_misses >= fully.num_misses


class TestBufferSensitivity:
    def test_bigger_buffer_never_hurts_dp(self, swim_trace):
        miss_trace = filter_tlb(swim_trace)
        accuracies = [
            replay_prefetcher(
                miss_trace, create_prefetcher("DP", rows=256), buffer_entries=b
            ).prediction_accuracy
            for b in (4, 16, 64)
        ]
        assert accuracies == sorted(accuracies)


class TestCycleIntegration:
    def test_table3_shape_on_real_workloads(self):
        """The paper's headline Table 3 claim, end to end, small scale."""
        measured = {}
        for app in ("ammp", "mcf"):
            miss_trace = filter_tlb(get_trace(app, 0.15))
            config = CycleSimConfig()
            base = simulate_cycles(miss_trace, NullPrefetcher(), config)
            rp = simulate_cycles(miss_trace, create_prefetcher("RP"), config)
            dp = simulate_cycles(miss_trace, create_prefetcher("DP", rows=256), config)
            measured[app] = {
                "RP": normalized_cycles(rp, base),
                "DP": normalized_cycles(dp, base),
            }
        assert check_table3_shape(measured) == [], measured

    def test_perfect_mechanism_beats_baseline(self):
        trace = get_trace("galgel", 0.05)
        miss_trace = filter_tlb(trace)
        config = CycleSimConfig()
        base = simulate_cycles(miss_trace, NullPrefetcher(), config)
        dp = simulate_cycles(miss_trace, create_prefetcher("DP", rows=256), config)
        assert dp.total_cycles < base.total_cycles


class TestWarmupIntegration:
    def test_warmup_excludes_cold_start(self):
        trace = get_trace("facerec", 0.1)
        cold = evaluate(trace, create_prefetcher("RP"), SimulationConfig())
        warm = evaluate(
            trace,
            create_prefetcher("RP"),
            SimulationConfig(warmup_fraction=0.3),
        )
        # RP needs a sweep of history; discounting the cold start can
        # only raise (or preserve) its measured accuracy.
        assert warm.prediction_accuracy >= cold.prediction_accuracy - 1e-9
