"""Tests for the d-TLB miss-rate characterization."""

import pytest

from repro.analysis.characterization import (
    TLB_GRID,
    associativity_anomalies,
    check_monotonicity,
    miss_rate_table,
    render_miss_rates,
)


class TestGrid:
    def test_paper_grid_shape(self):
        labels = [config.label for config in TLB_GRID]
        assert len(labels) == 9
        assert "64e-2w" in labels
        assert "128e-FA" in labels
        assert "256e-4w" in labels


class TestMissRateTable:
    @pytest.fixture(scope="class")
    def table(self):
        return miss_rate_table(["galgel", "eon", "vpr"], scale=0.05)

    def test_structure(self, table):
        assert set(table) == {"galgel", "eon", "vpr"}
        assert set(table["galgel"]) == {c.label for c in TLB_GRID}

    def test_fa_size_monotonicity_holds(self, table):
        assert check_monotonicity(table) == []

    def test_eon_shows_the_associativity_anomaly(self, table):
        """Set partitioning protects eon's hot set from cold bursts at
        64 entries, so FA-LRU genuinely misses more — a legitimate LRU
        behaviour the characterization must surface, not hide."""
        anomalies = associativity_anomalies(table)
        assert any("eon" in anomaly for anomaly in anomalies)
        assert not any("galgel" in anomaly for anomaly in anomalies)

    def test_galgel_rate_at_reference_config(self, table):
        assert table["galgel"]["128e-FA"] == pytest.approx(0.227, abs=0.01)

    def test_render(self, table):
        text = render_miss_rates(table)
        assert "galgel" in text
        assert "128e-FA" in text
        assert render_miss_rates({}) == "(empty)"


class TestCheckers:
    def test_detects_size_violation(self):
        table = {"x": {"64e-FA": 0.1, "128e-FA": 0.2, "256e-FA": 0.05}}
        failures = check_monotonicity(table)
        assert failures and "rises with FA TLB size" in failures[0]

    def test_reports_associativity_anomalies(self):
        table = {"x": {"128e-FA": 0.3, "128e-4w": 0.25, "128e-2w": 0.2}}
        anomalies = associativity_anomalies(table)
        assert any("FA misses more" in a for a in anomalies)
        assert any("4-way misses more" in a for a in anomalies)
