"""Tests for the 56-application registry and trace building."""

import pytest

from repro.errors import ConfigurationError, UnknownWorkloadError
from repro.workloads.composer import BehaviorClass, build_trace, scaled
from repro.workloads.registry import (
    HIGH_MISS_APPS,
    SUITES,
    TABLE3_APPS,
    all_app_names,
    app_names_for_suite,
    get_app,
    get_trace,
)


class TestSuiteComposition:
    def test_paper_suite_sizes(self):
        assert len(SUITES["spec2000"]) == 26
        assert len(SUITES["mediabench"]) == 20
        assert len(SUITES["etch"]) == 5
        assert len(SUITES["ptrdist"]) == 5
        assert len(all_app_names()) == 56

    def test_names_unique(self):
        names = all_app_names()
        assert len(set(names)) == len(names)

    def test_seeds_unique(self):
        seeds = [spec.seed for suite in SUITES.values() for spec in suite]
        assert len(set(seeds)) == len(seeds)

    def test_every_spec_has_paper_note(self):
        for suite in SUITES.values():
            for spec in suite:
                assert spec.paper_note, spec.name
                assert isinstance(spec.behavior, BehaviorClass)

    def test_high_miss_selection_matches_paper(self):
        assert set(HIGH_MISS_APPS) == {
            "vpr", "mcf", "twolf", "galgel", "ammp", "lucas", "apsi", "adpcm-enc",
        }
        for name in HIGH_MISS_APPS:
            assert "high-miss" in get_app(name).tags

    def test_table3_apps_subset_of_high_miss(self):
        assert set(TABLE3_APPS) <= set(HIGH_MISS_APPS)
        assert list(TABLE3_APPS) == ["ammp", "mcf", "vpr", "twolf", "lucas"]

    def test_paper_figure_ordering_preserved(self):
        spec_names = app_names_for_suite("spec2000")
        assert spec_names[:4] == ["gzip", "vpr", "gcc", "mcf"]
        media = app_names_for_suite("mediabench")
        assert media[0] == "adpcm-enc"


class TestLookup:
    def test_get_app(self):
        spec = get_app("galgel")
        assert spec.suite == "spec2000"
        assert spec.behavior is BehaviorClass.STRIDED_REPEATED

    def test_unknown_app(self):
        with pytest.raises(UnknownWorkloadError):
            get_app("does-not-exist")

    def test_unknown_suite(self):
        with pytest.raises(UnknownWorkloadError):
            app_names_for_suite("spec2017")


class TestTraceBuilding:
    def test_deterministic(self):
        a = build_trace(get_app("swim"), scale=0.02)
        b = build_trace(get_app("swim"), scale=0.02)
        assert a.pages.tolist() == b.pages.tolist()
        assert a.counts.tolist() == b.counts.tolist()

    def test_scale_grows_volume(self):
        small = build_trace(get_app("galgel"), scale=0.02)
        large = build_trace(get_app("galgel"), scale=0.04)
        assert large.total_references > small.total_references

    def test_get_trace_caches(self):
        assert get_trace("eon", 0.02) is get_trace("eon", 0.02)

    def test_trace_named_after_app(self):
        assert get_trace("ks", 0.05).name == "ks"

    def test_all_apps_build_at_tiny_scale(self):
        for name in all_app_names():
            trace = build_trace(get_app(name), scale=0.01)
            assert trace.total_references > 0, name
            assert trace.pages.min() >= 0, name


class TestScaled:
    def test_rounding_and_minimum(self):
        assert scaled(10, 0.5) == 5
        assert scaled(10, 0.01) == 1
        assert scaled(10, 0.01, minimum=3) == 3

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ConfigurationError):
            scaled(10, 0.0)
