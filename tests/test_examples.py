"""Smoke tests: the shipped examples must stay runnable.

Each example is executed as a real subprocess (the way a user runs it)
with a short timeout; only the fast ones are exercised to keep the
suite quick — the heavier examples share all their code paths with the
benchmarks.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    ("quickstart.py", [], "DP"),
    ("learning_curves.py", ["galgel", "700"], "reaches half"),
    ("multiprogramming.py", ["40000"], "context switches"),
]


@pytest.mark.parametrize("script,args,expected", FAST_EXAMPLES)
def test_example_runs(script, args, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert expected in result.stdout


def test_all_examples_present():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "compare_prefetchers.py",
        "custom_workload.py",
        "tuning_sweep.py",
        "cycle_model.py",
        "learning_curves.py",
        "multiprogramming.py",
    } <= scripts
