"""Tests for trace persistence (.npz round-trips and format safety)."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.mem.trace_io import (
    load_miss_trace,
    load_reference_trace,
    save_miss_trace,
    save_reference_trace,
)
from repro.sim.config import TLBConfig
from repro.sim.two_phase import filter_tlb, replay_prefetcher
from repro.prefetch.factory import create_prefetcher

from conftest import make_trace


class TestReferenceTraceRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        trace = make_trace([3, 1, 4, 1, 5], pcs=[7, 8, 9, 8, 7],
                           counts=[2, 1, 3, 1, 2], name="pi")
        path = save_reference_trace(trace, tmp_path / "pi.npz")
        loaded = load_reference_trace(path)
        assert loaded.name == "pi"
        assert loaded.pages.tolist() == trace.pages.tolist()
        assert loaded.pcs.tolist() == trace.pcs.tolist()
        assert loaded.counts.tolist() == trace.counts.tolist()
        assert loaded.total_references == trace.total_references

    def test_loaded_trace_simulates_identically(self, tmp_path):
        trace = make_trace(list(range(100)), name="seq")
        path = save_reference_trace(trace, tmp_path / "seq.npz")
        loaded = load_reference_trace(path)
        original = replay_prefetcher(
            filter_tlb(trace, TLBConfig(entries=8)),
            create_prefetcher("DP", rows=16),
        )
        replayed = replay_prefetcher(
            filter_tlb(loaded, TLBConfig(entries=8)),
            create_prefetcher("DP", rows=16),
        )
        assert replayed.pb_hits == original.pb_hits
        assert replayed.tlb_misses == original.tlb_misses


class TestMissTraceRoundTrip:
    def test_round_trip_preserves_provenance(self, tmp_path):
        trace = make_trace(list(range(50)), name="m")
        miss_trace = filter_tlb(trace, TLBConfig(entries=8), warmup_fraction=0.2)
        path = save_miss_trace(miss_trace, tmp_path / "m.npz")
        loaded = load_miss_trace(path)
        assert loaded.name == miss_trace.name
        assert loaded.tlb_label == miss_trace.tlb_label
        assert loaded.warmup_misses == miss_trace.warmup_misses
        assert loaded.total_references == miss_trace.total_references
        assert loaded.pages.tolist() == miss_trace.pages.tolist()
        assert loaded.evicted.tolist() == miss_trace.evicted.tolist()

    def test_loaded_miss_trace_replays_identically(self, tmp_path):
        trace = make_trace(list(range(80)), name="m2")
        miss_trace = filter_tlb(trace, TLBConfig(entries=8))
        path = save_miss_trace(miss_trace, tmp_path / "m2.npz")
        loaded = load_miss_trace(path)
        a = replay_prefetcher(miss_trace, create_prefetcher("RP"))
        b = replay_prefetcher(loaded, create_prefetcher("RP"))
        assert a.pb_hits == b.pb_hits


class TestFormatSafety:
    def test_kind_mismatch_rejected(self, tmp_path):
        trace = make_trace([1, 2, 3])
        path = save_reference_trace(trace, tmp_path / "x.npz")
        with pytest.raises(TraceError, match="expected a miss-trace"):
            load_miss_trace(path)

    def test_random_npz_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(TraceError, match="not a repro trace file"):
            load_reference_trace(path)

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "future.npz"
        np.savez(
            path,
            kind=np.array("reference-trace"),
            version=np.array(99),
            name=np.array("x"),
            pcs=np.zeros(1, dtype=np.int64),
            pages=np.zeros(1, dtype=np.int64),
            counts=np.ones(1, dtype=np.int64),
        )
        with pytest.raises(TraceError, match="version 99"):
            load_reference_trace(path)
