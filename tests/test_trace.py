"""Unit tests for reference-run and trace containers."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.mem.reference import ReferenceRun
from repro.mem.trace import NO_EVICTION, MissTrace, ReferenceTrace

from conftest import make_trace


class TestReferenceRun:
    def test_valid(self):
        run = ReferenceRun(pc=1, page=2, count=3)
        assert (run.pc, run.page, run.count) == (1, 2, 3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pc": 0, "page": 0, "count": 0},
            {"pc": 0, "page": -1, "count": 1},
            {"pc": -1, "page": 0, "count": 1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(TraceError):
            ReferenceRun(**kwargs)


class TestReferenceTrace:
    def test_totals(self):
        trace = make_trace([1, 2, 3], counts=[1, 2, 3])
        assert trace.num_runs == 3
        assert trace.total_references == 6
        assert trace.footprint_pages == 3
        assert len(trace) == 3

    def test_iteration_yields_runs(self):
        trace = make_trace([5, 6], counts=[2, 1])
        runs = list(trace)
        assert runs[0] == ReferenceRun(0x1000, 5, 2)
        assert runs[1] == ReferenceRun(0x1000, 6, 1)

    def test_from_runs_round_trips(self):
        runs = [ReferenceRun(1, 10, 2), ReferenceRun(2, 20, 1)]
        trace = ReferenceTrace.from_runs(runs, name="rt")
        assert list(trace) == runs
        assert trace.name == "rt"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TraceError):
            ReferenceTrace([1], [1, 2], [1, 1])

    def test_zero_count_rejected(self):
        with pytest.raises(TraceError):
            ReferenceTrace([1], [1], [0])

    def test_concatenated(self):
        a = make_trace([1], name="a")
        b = make_trace([2], name="b")
        joined = a.concatenated_with(b)
        assert joined.num_runs == 2
        assert joined.name == "a+b"
        assert joined.pages.tolist() == [1, 2]

    def test_empty_trace(self):
        trace = ReferenceTrace([], [], [])
        assert trace.total_references == 0
        assert trace.footprint_pages == 0

    def test_as_lists_matches_arrays(self):
        trace = make_trace([3, 1], pcs=[7, 8], counts=[4, 5])
        pcs, pages, counts = trace.as_lists()
        assert pcs == [7, 8]
        assert pages == [3, 1]
        assert counts == [4, 5]


def _miss_trace(pages, evicted=None, ref_index=None, total=100, warmup=0):
    n = len(pages)
    return MissTrace(
        pcs=np.zeros(n, dtype=np.int64),
        pages=np.asarray(pages, dtype=np.int64),
        evicted=np.asarray(
            evicted if evicted is not None else [NO_EVICTION] * n, dtype=np.int64
        ),
        ref_index=np.asarray(
            ref_index if ref_index is not None else list(range(n)), dtype=np.int64
        ),
        total_references=total,
        warmup_misses=warmup,
        name="m",
    )


class TestMissTrace:
    def test_counts_and_rate(self):
        mt = _miss_trace([1, 2, 3, 4], total=400)
        assert mt.num_misses == 4
        assert mt.measured_misses == 4
        assert mt.miss_rate == pytest.approx(0.01)

    def test_warmup_excluded_from_measured(self):
        mt = _miss_trace([1, 2, 3, 4], warmup=3)
        assert mt.measured_misses == 1

    def test_warmup_bounds_validated(self):
        with pytest.raises(TraceError):
            _miss_trace([1], warmup=5)

    def test_array_length_mismatch(self):
        with pytest.raises(TraceError):
            MissTrace(
                pcs=np.zeros(2, dtype=np.int64),
                pages=np.zeros(1, dtype=np.int64),
                evicted=np.zeros(1, dtype=np.int64),
                ref_index=np.zeros(1, dtype=np.int64),
                total_references=10,
            )

    def test_as_lists_memoized(self):
        mt = _miss_trace([1, 2])
        first = mt.as_lists()
        assert mt.as_lists() is first

    def test_zero_reference_rate(self):
        mt = _miss_trace([], total=0)
        assert mt.miss_rate == 0.0
