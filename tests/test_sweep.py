"""Tests for sweep helpers and page-size rescaling."""

import numpy as np
import pytest

from repro.prefetch.factory import create_prefetcher
from repro.sim.config import SimulationConfig, TLBConfig
from repro.sim.sweep import page_size_sweep, rescale_trace, sweep
from repro.workloads.registry import get_trace

from conftest import make_trace


class TestRescaleTrace:
    def test_identity_at_4k(self):
        trace = make_trace([1, 2, 3])
        assert rescale_trace(trace, 4096) is trace

    def test_8k_halves_pages_and_merges_runs(self):
        trace = make_trace([0, 1, 2, 3], counts=[1, 2, 3, 4])
        rescaled = rescale_trace(trace, 8192)
        # Pages 0,1 -> page 0; pages 2,3 -> page 1; runs merge.
        assert rescaled.pages.tolist() == [0, 1]
        assert rescaled.counts.tolist() == [3, 7]
        assert rescaled.total_references == trace.total_references

    def test_non_adjacent_same_page_not_merged(self):
        trace = make_trace([0, 2, 0], counts=[1, 1, 1])
        rescaled = rescale_trace(trace, 8192)
        assert rescaled.pages.tolist() == [0, 1, 0]

    def test_name_annotated(self):
        trace = make_trace([0], name="app")
        assert rescale_trace(trace, 65536).name == "app@64K"


class TestSweep:
    def test_coordinates_recorded(self):
        trace = make_trace(list(range(30)), name="t")
        results = sweep(
            [trace],
            [("dp16", lambda: create_prefetcher("DP", rows=16))],
            [SimulationConfig(tlb=TLBConfig(entries=8), buffer_entries=4)],
        )
        assert len(results) == 1
        assert results[0].extra["factory"] == "dp16"
        assert results[0].extra["tlb"] == "8e-FA"
        assert results[0].extra["buffer"] == 4

    def test_cartesian_product(self):
        traces = [make_trace(list(range(20)), name=f"t{i}") for i in range(2)]
        factories = [
            ("a", lambda: create_prefetcher("DP", rows=16)),
            ("b", lambda: create_prefetcher("SP")),
        ]
        configs = [
            SimulationConfig(tlb=TLBConfig(entries=8)),
            SimulationConfig(tlb=TLBConfig(entries=4)),
        ]
        results = sweep(traces, factories, configs)
        assert len(results) == 8

    def test_fresh_mechanism_per_point(self):
        """Mechanism state must not leak between sweep points."""
        trace = make_trace(list(range(40)), name="t")
        results = sweep(
            [trace, trace],
            [("dp", lambda: create_prefetcher("DP", rows=16))],
        )
        assert results[0].prediction_accuracy == pytest.approx(
            results[1].prediction_accuracy
        )


class TestPageSizeSweep:
    def test_bigger_pages_fewer_misses(self):
        trace = get_trace("galgel", 0.05)
        results = page_size_sweep(
            trace, lambda: create_prefetcher("DP", rows=256),
            page_sizes=(4096, 16384),
        )
        assert results[16384].tlb_misses < results[4096].tlb_misses

    def test_dp_accuracy_stable_across_page_sizes(self):
        """The paper: DP makes good predictions across page sizes."""
        trace = get_trace("galgel", 0.05)
        results = page_size_sweep(
            trace, lambda: create_prefetcher("DP", rows=256),
            page_sizes=(4096, 8192, 16384),
        )
        accuracies = [r.prediction_accuracy for r in results.values()]
        assert min(accuracies) > 0.9

    def test_extra_records_page_size(self):
        trace = get_trace("eon", 0.05)
        results = page_size_sweep(
            trace, lambda: create_prefetcher("none"), page_sizes=(8192,)
        )
        assert results[8192].extra["page_size"] == 8192
