"""The public API surface resolves and errors behave as documented."""

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    ReproError,
    TraceError,
    UnknownPrefetcherError,
    UnknownWorkloadError,
)


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_quickstart_snippet_works(self):
        """The module docstring's quickstart must actually run."""
        trace = repro.get_trace("galgel", scale=0.02)
        stats = repro.evaluate(trace, repro.DistancePrefetcher(rows=256))
        assert stats.prediction_accuracy > 0.9


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc in (
            ConfigurationError,
            TraceError,
            UnknownPrefetcherError,
            UnknownWorkloadError,
        ):
            assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_unknown_errors_are_key_errors(self):
        assert issubclass(UnknownWorkloadError, KeyError)
        assert issubclass(UnknownPrefetcherError, KeyError)

    def test_unknown_workload_lists_candidates(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            repro.get_app("nope")
        assert "known:" in str(excinfo.value)

    def test_single_except_catches_everything(self):
        with pytest.raises(ReproError):
            repro.TLB(entries=-1)
        with pytest.raises(ReproError):
            repro.get_trace("missing-app")
