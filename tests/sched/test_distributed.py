"""Distributed sweeps over a live server: the acceptance criteria.

A threaded server on an ephemeral port, in-process :class:`Worker`
loops, and real HTTP all the way through — asserting the subsystem's
contract: a distributed sweep with ≥2 workers returns a ResultSet
byte-identical to the serial Runner's, and a warm resubmission against
the same store performs zero replays.
"""

import threading

import pytest

from repro.analysis.experiments import ExperimentContext
from repro.errors import ConfigurationError, SchedulerError
from repro.run import MissStreamCache, Runner, RunSpec
from repro.sched import SchedulerClient, Worker
from repro.service import make_server

SCALE = 0.05


def sweep_specs():
    return [
        RunSpec.of(app, mechanism, scale=SCALE, rows=64)
        for app in ("galgel", "swim")
        for mechanism in ("DP", "RP", "ASP")
    ]


@pytest.fixture
def server(tmp_path):
    server = make_server(tmp_path / "store", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


@pytest.fixture
def client(server):
    client = SchedulerClient(server.url)
    client.wait_healthy()
    return client


class fleet:
    """``with fleet(url, n):`` — n Worker threads, stopped on exit."""

    def __init__(self, url: str, count: int, **worker_kwargs) -> None:
        worker_kwargs.setdefault("lease_seconds", 5.0)
        worker_kwargs.setdefault("poll_interval", 0.02)
        self.workers = [Worker(url, **worker_kwargs) for _ in range(count)]
        self.threads = [
            threading.Thread(target=worker.run, daemon=True)
            for worker in self.workers
        ]

    def __enter__(self) -> "fleet":
        for thread in self.threads:
            thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        for worker in self.workers:
            worker.stop()
        for thread in self.threads:
            thread.join(timeout=10)


class TestDistributedSweep:
    def test_two_worker_sweep_is_byte_identical_to_serial(self, server, client):
        specs = sweep_specs()
        serial = Runner(cache=MissStreamCache()).run(specs)
        with fleet(server.url, 2) as workers:
            results = client.submit_sweep(specs, poll_interval=0.02)
        assert results.to_json() == serial.to_json()
        # Both workers were live; between them they claimed everything.
        assert sum(worker.completed for worker in workers.workers) == len(specs)

    def test_warm_resubmission_performs_zero_replays(self, server, client):
        specs = sweep_specs()
        with fleet(server.url, 2):
            cold = client.submit_sweep(specs, poll_interval=0.02)
            before = client.stats()
            warm = client.submit_sweep(specs, poll_interval=0.02)
        after = client.stats()
        assert warm.to_json() == cold.to_json()
        # Every warm job was precompleted from the store at submission:
        # no claims happened, and no spec was recomputed.
        assert (
            after["queue"]["counters"]["jobs_precompleted"]
            - before["queue"]["counters"].get("jobs_precompleted", 0)
            == len(specs)
        )
        assert after["queue"]["counters"]["claims"] == before["queue"]["counters"]["claims"]
        assert after["store"]["result_entries"] == before["store"]["result_entries"]

    def test_duplicate_specs_share_one_job_row(self, server, client):
        spec = sweep_specs()[0]
        with fleet(server.url, 1):
            results = client.submit_sweep([spec, spec, spec], poll_interval=0.02)
        assert len(results) == 3
        assert results[0] == results[1] == results[2]

    def test_failed_jobs_surface_as_scheduler_error(self, server, client):
        specs = sweep_specs()[:2]
        bad_key = specs[0].key()
        with fleet(server.url, 1, fail_keys={bad_key}):
            with pytest.raises(SchedulerError) as exc_info:
                client.submit_sweep(specs, poll_interval=0.02, max_attempts=2)
        assert bad_key in str(exc_info.value)
        assert "injected failure" in str(exc_info.value)
        # The budget was honoured: claimed exactly max_attempts times.
        failed = client.progress()["failed_jobs"]
        assert len(failed) == 1
        assert client.job(failed[0]["id"])["job"]["attempts"] == 2

    def test_awkward_sweep_ids_survive_the_url(self, server, client):
        # A user-supplied sweep id with a space, '&' and '#' must
        # round-trip through GET /progress and GET /jobs/<id> — the
        # client percent-encodes, the server decodes.
        sweep_id = "my sweep&co #7"
        client.submit_jobs(
            [spec.to_dict() for spec in sweep_specs()[:2]], sweep_id=sweep_id
        )
        progress = client.progress(sweep_id)
        assert progress["total"] == 2
        job = client.job(f"{sweep_id}:0")["job"]
        assert job["sweep_id"] == sweep_id
        assert client.cancel(sweep_id)["cancelled"] == 2

    def test_cancelled_sweep_raises(self, server, client):
        # No workers polling, so the jobs sit queued until a second
        # client cancels the sweep out from under the blocked driver.
        sweep_id = "cancel-me"

        def cancel_once_submitted():
            other = SchedulerClient(server.url)
            while other.progress(sweep_id)["total"] == 0:
                pass
            other.cancel(sweep_id)

        canceller = threading.Thread(target=cancel_once_submitted, daemon=True)
        canceller.start()
        with pytest.raises(SchedulerError, match="cancelled"):
            client.submit_sweep(
                sweep_specs()[:2], sweep_id=sweep_id, poll_interval=0.02
            )
        canceller.join(timeout=10)


class TestDistributedExecutor:
    def test_runner_distributed_executor_matches_serial(self, server):
        specs = sweep_specs()[:4]
        serial = Runner(cache=MissStreamCache()).run(specs)
        with fleet(server.url, 2):
            distributed = Runner(executor="distributed", service_url=server.url).run(
                specs
            )
        assert distributed.to_json() == serial.to_json()

    def test_service_url_alone_selects_distributed(self, server):
        runner = Runner(service_url=server.url)
        assert runner.executor == "distributed"

    def test_distributed_without_url_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="service_url"):
            Runner(executor="distributed")
        with pytest.raises(ConfigurationError, match="executor"):
            Runner(executor="bogus")

    def test_experiment_context_runs_distributed(self, server):
        serial_context = ExperimentContext(scale=SCALE)
        specs = [
            serial_context.spec("galgel", "DP", rows=64),
            serial_context.spec("galgel", "RP"),
        ]
        serial = serial_context.run_specs(specs)
        with fleet(server.url, 2):
            context = ExperimentContext(
                scale=SCALE, executor="distributed", service_url=server.url
            )
            distributed = context.run_specs(specs)
        assert distributed.to_json() == serial.to_json()

    def test_context_rejects_runner_plus_executor(self, server):
        with pytest.raises(ConfigurationError):
            ExperimentContext(runner=Runner(), service_url=server.url)
