"""Scheduler endpoints and client satellites, without a worker fleet.

Routes are exercised through ``ExperimentService.handle`` (no sockets),
with a fake-clock :class:`JobQueue` where lease expiry matters. The
client-side satellites — bounded retry with backoff on transient
transport failures, and ``GET /results`` pagination — are covered here
too.
"""

import urllib.error

import pytest

from repro.run import MissStreamCache, Runner, RunSpec
from repro.sched import JobQueue
from repro.service import ExperimentService, ServiceClient, ServiceError
from repro.store import ExperimentStore

SCALE = 0.05

SPEC = {
    "workload": "galgel",
    "mechanism": "DP",
    "scale": SCALE,
    "params": {"rows": 64, "slots": 2},
}
OTHER_SPEC = {
    "workload": "swim",
    "mechanism": "RP",
    "scale": SCALE,
}


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def service(tmp_path, clock):
    store = ExperimentStore(tmp_path / "store")
    queue = JobQueue(tmp_path / "store" / "jobs.sqlite", clock=clock)
    return ExperimentService(store, queue=queue)


def ok(status_payload):
    status, payload = status_payload
    assert status == 200, payload
    return payload


class TestJobSubmission:
    def test_submit_then_claim_then_complete_lands_in_store(self, service):
        batch = ok(service.handle("POST", "/jobs", {}, {"specs": [SPEC]}))
        assert batch["total"] == 1
        assert batch["queued"] == 1
        (job_ref,) = batch["jobs"]
        assert job_ref["spec_key"] == RunSpec.from_dict(SPEC).key()

        claim = ok(service.handle("POST", "/claim", {}, {"worker_id": "w1"}))
        (job,) = claim["jobs"]
        assert job["spec"] == RunSpec.from_dict(SPEC).to_dict()

        from dataclasses import asdict

        stats = Runner(cache=MissStreamCache()).run([RunSpec.from_dict(SPEC)])[0]
        done = ok(
            service.handle(
                "POST", "/complete", {},
                {"job_id": job["id"], "worker_id": "w1", "run": asdict(stats)},
            )
        )
        assert done["state"] == "done"
        assert done["stored"] is True
        assert service.store.has_result(job["spec_key"])
        fetched = ok(service.handle("GET", f"/runs/{job['spec_key']}", {}))
        assert fetched["run"]["workload"] == "galgel"

        progress = ok(service.handle("GET", "/progress", {"sweep_id": batch["sweep_id"]}))
        assert progress["done"] == 1 and progress["pending"] == 0

    def test_stored_specs_are_precompleted_at_submission(self, service):
        spec = RunSpec.from_dict(SPEC)
        Runner(cache=MissStreamCache(), store=service.store).run([spec])
        batch = ok(service.handle("POST", "/jobs", {}, {"specs": [SPEC, OTHER_SPEC]}))
        assert batch["precompleted"] == 1
        assert batch["queued"] == 1
        states = {job["spec_key"]: job["state"] for job in batch["jobs"]}
        assert states[spec.key()] == "done"

    def test_claim_consults_the_store_before_handing_out(self, service):
        batch = ok(service.handle("POST", "/jobs", {}, {"specs": [SPEC]}))
        # The spec lands in the store between submission and claim
        # (another sweep, another worker): the claim must not hand it out.
        Runner(cache=MissStreamCache(), store=service.store).run(
            [RunSpec.from_dict(SPEC)]
        )
        claim = ok(service.handle("POST", "/claim", {}, {"worker_id": "w1"}))
        assert claim["jobs"] == []
        (job_ref,) = batch["jobs"]
        job = ok(service.handle("GET", f"/jobs/{job_ref['id']}", {}))["job"]
        assert job["state"] == "done"
        assert job["result_source"] == "store"

    def test_bad_specs_and_ids_are_client_errors(self, service):
        status, payload = service.handle(
            "POST", "/jobs", {}, {"specs": [{"workload": "galgel", "bogus": 1}]}
        )
        assert status == 400 and "bogus" in payload["error"]
        status, _ = service.handle("POST", "/jobs", {}, {"specs": "galgel"})
        assert status == 400
        status, _ = service.handle("POST", "/claim", {}, {"worker_id": ""})
        assert status == 400
        status, _ = service.handle("POST", "/claim", {}, {"worker_id": "w", "limit": 0})
        assert status == 400
        status, _ = service.handle("GET", "/jobs/a/b", {})
        assert status == 400
        status, _ = service.handle("GET", "/jobs/none", {})
        assert status == 404
        status, _ = service.handle("POST", "/complete", {}, {"job_id": "none"})
        assert status == 404
        status, _ = service.handle("POST", "/cancel", {}, {"sweep_id": ""})
        assert status == 400


class TestCompletion:
    def _claimed_job(self, service, spec=SPEC):
        ok(service.handle("POST", "/jobs", {}, {"specs": [spec], "max_attempts": 2}))
        claim = ok(service.handle("POST", "/claim", {}, {"worker_id": "w1"}))
        return claim["jobs"][0]

    def test_duplicate_complete_is_idempotent(self, service):
        from dataclasses import asdict

        job = self._claimed_job(service)
        stats = Runner(cache=MissStreamCache()).run([RunSpec.from_dict(SPEC)])[0]
        body = {"job_id": job["id"], "worker_id": "w1", "run": asdict(stats)}
        first = ok(service.handle("POST", "/complete", {}, body))
        again = ok(service.handle("POST", "/complete", {}, dict(body, worker_id="w2")))
        assert (first["duplicate"], again["duplicate"]) == (False, True)
        assert (first["stored"], again["stored"]) == (True, False)
        assert service.store.stats()["result_entries"] == 1

    def test_mismatched_result_row_is_rejected(self, service):
        from dataclasses import asdict

        job = self._claimed_job(service)
        wrong = Runner(cache=MissStreamCache()).run(
            [RunSpec.from_dict(OTHER_SPEC)]
        )[0]
        status, payload = service.handle(
            "POST", "/complete", {},
            {"job_id": job["id"], "worker_id": "w1", "run": asdict(wrong)},
        )
        assert status == 400
        assert "holds spec" in payload["error"]
        assert not service.store.has_result(job["spec_key"])

    def test_malformed_result_row_is_rejected(self, service):
        job = self._claimed_job(service)
        status, payload = service.handle(
            "POST", "/complete", {},
            {"job_id": job["id"], "worker_id": "w1", "run": {"nope": 1}},
        )
        assert status == 400 and "malformed result row" in payload["error"]

    def test_error_report_requeues_then_parks(self, service):
        job = self._claimed_job(service)
        retried = ok(
            service.handle(
                "POST", "/complete", {},
                {"job_id": job["id"], "worker_id": "w1", "error": "boom"},
            )
        )
        assert retried["state"] == "queued"
        claim = ok(service.handle("POST", "/claim", {}, {"worker_id": "w1"}))
        (job,) = claim["jobs"]
        parked = ok(
            service.handle(
                "POST", "/complete", {},
                {"job_id": job["id"], "worker_id": "w1", "error": "boom again"},
            )
        )
        assert parked["state"] == "failed"
        progress = ok(service.handle("GET", "/progress", {}))
        assert progress["failed_jobs"][0]["error"] == "boom again"

    def test_heartbeat_route(self, service):
        job = self._claimed_job(service)
        beat = ok(
            service.handle(
                "POST", "/heartbeat", {},
                {"worker_id": "w1", "job_ids": [job["id"], "ghost:0"]},
            )
        )
        assert beat["owned"] == [job["id"]]
        assert beat["lost"] == ["ghost:0"]
        status, _ = service.handle(
            "POST", "/heartbeat", {}, {"worker_id": "w1", "job_ids": "oops"}
        )
        assert status == 400

    def test_cancel_route_and_stats_expose_the_queue(self, service):
        batch = ok(service.handle("POST", "/jobs", {}, {"specs": [SPEC, OTHER_SPEC]}))
        outcome = ok(
            service.handle("POST", "/cancel", {}, {"sweep_id": batch["sweep_id"]})
        )
        assert outcome["cancelled"] == 2
        stats = ok(service.handle("GET", "/stats", {}))
        assert stats["queue"]["cancelled"] == 2
        assert stats["queue"]["counters"]["jobs_submitted"] == 2


class TestResultsPagination:
    @pytest.fixture
    def populated(self, service):
        specs = [
            RunSpec.of("galgel", mech, scale=SCALE, rows=64)
            for mech in ("DP", "RP", "ASP", "MP")
        ]
        Runner(cache=MissStreamCache(), store=service.store).run(specs)
        return service

    def test_pages_walk_the_full_set(self, populated):
        full = ok(populated.handle("GET", "/results", {}))
        assert full["total"] == 4 and full["count"] == 4
        assert full["limit"] is None and full["offset"] == 0

        seen = []
        for offset in range(0, 4, 2):
            page = ok(
                populated.handle("GET", "/results", {"limit": "2", "offset": str(offset)})
            )
            assert page["total"] == 4
            assert page["count"] == 2
            seen.extend(run["mechanism"] for run in page["runs"])
        assert seen == [run["mechanism"] for run in full["runs"]]

    def test_pagination_composes_with_filters(self, populated):
        page = ok(
            populated.handle(
                "GET", "/results", {"workload": "galgel", "limit": "1", "offset": "3"}
            )
        )
        assert page["total"] == 4 and page["count"] == 1
        page = ok(populated.handle("GET", "/results", {"limit": "0"}))
        assert page["count"] == 0 and page["total"] == 4

    def test_bad_page_parameters_are_400(self, populated):
        for query in ({"limit": "-1"}, {"offset": "-2"}, {"limit": "many"}):
            status, payload = populated.handle("GET", "/results", query)
            assert status == 400, payload

    def test_unfiltered_pages_read_only_their_page(self, populated):
        # Unfiltered pagination goes through the index's LIMIT/OFFSET:
        # the bytes-read counter must grow by one artifact, not four.
        store = populated.store
        full_bytes = store.stats()["bytes_read"]
        ok(populated.handle("GET", "/results", {}))
        full_cost = store.stats()["bytes_read"] - full_bytes

        page_bytes = store.stats()["bytes_read"]
        page = ok(populated.handle("GET", "/results", {"limit": "1", "offset": "2"}))
        page_cost = store.stats()["bytes_read"] - page_bytes
        assert page["count"] == 1 and page["total"] == 4
        assert 0 < page_cost < full_cost

    def test_store_level_pagination_matches_slicing(self, populated):
        store = populated.store
        everything = store.load_results()
        assert store.count_results() == len(everything) == 4
        paged = store.load_results(limit=2, offset=1)
        assert [run.mechanism for run in paged] == [
            run.mechanism for run in everything[1:3]
        ]
        assert len(store.load_results(offset=3)) == 1
        assert len(store.load_results(limit=0)) == 0


class TestClientRetries:
    def _client(self, monkeypatch, outcomes):
        """A client whose urlopen pops scripted outcomes (exc or bytes)."""
        calls = []

        class FakeResponse:
            def __init__(self, data):
                self.data = data

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def read(self):
                return self.data

        def fake_urlopen(request, timeout=None):
            calls.append(request)
            outcome = outcomes.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return FakeResponse(outcome)

        monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
        client = ServiceClient("http://x", max_retries=3, retry_backoff=0.001)
        return client, calls

    def test_transient_failures_on_gets_are_retried(self, monkeypatch):
        client, calls = self._client(
            monkeypatch,
            [
                urllib.error.URLError("refused"),
                ConnectionResetError("reset"),
                b'{"ok": true}',
            ],
        )
        assert client.request("/stats") == {"ok": True}
        assert len(calls) == 3
        assert client.retries == 2

    def test_retries_are_bounded(self, monkeypatch):
        client, calls = self._client(
            monkeypatch, [urllib.error.URLError("refused")] * 4
        )
        with pytest.raises(ServiceError) as exc_info:
            client.request("/stats")
        assert exc_info.value.status == 0
        assert len(calls) == 4  # 1 try + 3 retries
        assert client.retries == 3

    def test_non_idempotent_posts_are_not_retried(self, monkeypatch):
        client, calls = self._client(monkeypatch, [urllib.error.URLError("refused")])
        with pytest.raises(ServiceError):
            client.request("/runs", {"specs": []})
        assert len(calls) == 1
        assert client.retries == 0

    def test_claim_posts_are_retried_when_marked_idempotent(self, monkeypatch):
        client, calls = self._client(
            monkeypatch,
            [ConnectionResetError("reset"), b'{"jobs": []}'],
        )
        assert client.request("/claim", {"worker_id": "w"}, idempotent=True) == {
            "jobs": []
        }
        assert len(calls) == 2
        assert client.retries == 1

    def test_retry_jitter_leaves_global_rng_untouched(self, monkeypatch):
        """Backoff jitter draws from the client's private RNG: a host
        process that seeded ``random`` (the differential harness, the
        hypothesis suites) must see an unperturbed stream."""
        import random

        random.seed(20020525)
        expected_state = random.getstate()
        client, calls = self._client(
            monkeypatch, [urllib.error.URLError("refused")] * 4
        )
        with pytest.raises(ServiceError):
            client.request("/stats")
        assert client.retries == 3  # jitter was actually drawn
        assert random.getstate() == expected_state

    def test_http_errors_are_never_retried(self, monkeypatch):
        error = urllib.error.HTTPError(
            "http://x/stats", 500, "boom", {}, None
        )
        error.read = lambda: b'{"error": "boom"}'
        client, calls = self._client(monkeypatch, [error])
        with pytest.raises(ServiceError) as exc_info:
            client.request("/stats")
        assert exc_info.value.status == 500
        assert len(calls) == 1
        assert client.retries == 0
